//! # mobic — facade crate
//!
//! Reproduction of *"A Mobility Based Metric for Clustering in Mobile Ad
//! Hoc Networks"* (P. Basu, N. Khan, T.D.C. Little, ICDCS 2001), together
//! with the complete MANET simulation substrate it needs.
//!
//! This crate re-exports the workspace members under stable module
//! names; see each member crate for full documentation:
//!
//! * [`geom`] — 2-D geometry and spatial indexing,
//! * [`sim`] — deterministic discrete-event engine,
//! * [`mobility`] — mobility models (random waypoint, RPGM, …),
//! * [`radio`] — propagation models and link budgets,
//! * [`net`] — hello protocol and neighbor tables,
//! * [`core`] — the MOBIC mobility metric and clustering algorithms,
//! * [`metrics`] — cluster-stability metrics and reporting,
//! * [`scenario`] — scenario configs and the end-to-end runner,
//! * [`routing`] — cluster-based routing extension,
//! * [`trace`] — event tracing, phase profiling, and run manifests,
//! * [`viz`] — SVG/terminal visualization of cluster snapshots,
//! * [`sweepd`] — the sweep orchestration service (content-addressed
//!   cell cache + supervised worker pool + HTTP API).
//!
//! # Quickstart
//!
//! ```
//! use mobic::scenario::{ScenarioConfig, run_scenario};
//! use mobic::core::AlgorithmKind;
//!
//! let mut cfg = ScenarioConfig::paper_table1();
//! cfg.n_nodes = 10;
//! cfg.sim_time_s = 30.0;
//! cfg.tx_range_m = 200.0;
//! cfg.algorithm = AlgorithmKind::Mobic;
//! let result = run_scenario(&cfg, 42).expect("valid config");
//! println!("clusterhead changes: {}", result.clusterhead_changes);
//! ```

pub use mobic_core as core;
pub use mobic_geom as geom;
pub use mobic_metrics as metrics;
pub use mobic_mobility as mobility;
pub use mobic_net as net;
pub use mobic_radio as radio;
pub use mobic_routing as routing;
pub use mobic_scenario as scenario;
pub use mobic_sim as sim;
pub use mobic_sweepd as sweepd;
pub use mobic_trace as trace;
pub use mobic_viz as viz;
