//! Dirty-set incremental reclustering must be invisible: for every
//! `(cfg, seed)`, `recluster: incremental` and `recluster: full` yield
//! byte-identical serialized `RunResult`s *and* byte-identical JSONL
//! trace streams — across mobility models, algorithms, loss models,
//! and the MAC collision path.

use mobic::core::AlgorithmKind;
use mobic::scenario::{
    run_scenario, run_scenario_traced, LossKind, MobilityKind, Recluster, ScenarioConfig,
};
use mobic::trace::JsonlSink;

/// Every mobility model the runner supports.
fn all_mobility_kinds() -> [MobilityKind; 8] {
    [
        MobilityKind::RandomWaypoint,
        MobilityKind::RandomWalk { epoch_s: 10.0 },
        MobilityKind::GaussMarkov { alpha: 0.8 },
        MobilityKind::Rpgm {
            groups: 4,
            member_radius_m: 40.0,
        },
        MobilityKind::Highway {
            lanes: 4,
            bidirectional: true,
        },
        MobilityKind::ConferenceHall { booths: 5 },
        MobilityKind::Manhattan {
            block_m: 100.0,
            p_turn: 0.5,
        },
        MobilityKind::Stationary,
    ]
}

/// A shortened `paper_table1` so the cross products stay fast.
fn paper_short() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.sim_time_s = 120.0;
    cfg
}

/// Serialized result under the given recluster mode. JSON bytes catch
/// everything serde sees — any float, count, or map divergence.
fn result_bytes(cfg: &ScenarioConfig, seed: u64, mode: Recluster) -> String {
    let mut c = *cfg;
    c.recluster = mode;
    serde_json::to_string(&run_scenario(&c, seed).unwrap()).unwrap()
}

/// Full JSONL trace under the given recluster mode.
fn trace_bytes(cfg: &ScenarioConfig, seed: u64, mode: Recluster) -> Vec<u8> {
    let mut c = *cfg;
    c.recluster = mode;
    let mut sink = JsonlSink::new(Vec::new());
    run_scenario_traced(&c, seed, &mut sink).unwrap();
    sink.finish().unwrap()
}

#[test]
fn incremental_is_bit_identical_across_mobility_and_seeds() {
    for mobility in all_mobility_kinds() {
        for seed in 0..3 {
            let mut cfg = paper_short();
            cfg.mobility = mobility;
            assert_eq!(
                result_bytes(&cfg, seed, Recluster::Full),
                result_bytes(&cfg, seed, Recluster::Incremental),
                "{mobility:?} seed {seed}"
            );
        }
    }
}

#[test]
fn incremental_is_bit_identical_across_algorithms() {
    // Each algorithm family has its own stability proof (plain
    // algorithms are table-pure; LCC-style ones depend on role and
    // contention) — exercise all of them.
    for alg in AlgorithmKind::ALL {
        let mut cfg = paper_short();
        cfg.algorithm = alg;
        assert_eq!(
            result_bytes(&cfg, 11, Recluster::Full),
            result_bytes(&cfg, 11, Recluster::Incremental),
            "{alg}"
        );
    }
}

#[test]
fn incremental_matches_with_stateful_loss_and_collisions() {
    // Stateful loss models consume RNG per queried link and the MAC
    // window defers receptions: both paths must see identical record
    // sequences whether or not elections were skipped.
    for loss in [LossKind::Bernoulli { p: 0.2 }, LossKind::BurstyPreset] {
        let mut cfg = paper_short();
        cfg.loss = loss;
        cfg.packet_time_s = 0.01;
        assert_eq!(
            result_bytes(&cfg, 7, Recluster::Full),
            result_bytes(&cfg, 7, Recluster::Incremental),
            "{loss:?}"
        );
    }
}

#[test]
fn incremental_trace_streams_are_byte_identical() {
    // The trace sees every hello, reception, election, and merge — a
    // skipped election that should have fired would desync it.
    for mobility in [MobilityKind::RandomWaypoint, MobilityKind::Stationary] {
        let mut cfg = paper_short();
        cfg.mobility = mobility;
        cfg.loss = LossKind::Bernoulli { p: 0.1 };
        let full = trace_bytes(&cfg, 13, Recluster::Full);
        let incr = trace_bytes(&cfg, 13, Recluster::Incremental);
        assert!(!full.is_empty());
        assert_eq!(full, incr, "{mobility:?}");
    }
}

#[test]
fn incremental_actually_skips_where_it_can() {
    // Not a correctness property, but the optimization must engage:
    // a static network converges, after which nearly every election
    // is provably skippable.
    let mut cfg = paper_short();
    cfg.mobility = MobilityKind::Stationary;
    let r = run_scenario(&cfg, 5).unwrap();
    assert!(
        r.perf.phase_ms.elections_skipped > 0,
        "stationary run skipped nothing"
    );
    cfg.recluster = Recluster::Full;
    let full = run_scenario(&cfg, 5).unwrap();
    assert_eq!(full.perf.phase_ms.elections_skipped, 0);
}
