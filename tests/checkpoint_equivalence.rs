//! Property-based kill/resume equivalence: killing a run at a random
//! event index and resuming from the snapshot must reproduce the
//! uninterrupted run **byte for byte** — the serialized `RunResult`
//! and the JSONL trace — across the engine × scheduler execution cube
//! and all five clustering algorithms.
//!
//! This is the randomized companion of the deterministic suites in
//! `crates/scenario/src/runner.rs`: those pin known-interesting kill
//! points; this one lets proptest roam the space and shrink any
//! divergence to a minimal `(algorithm, engine, scheduler, seed,
//! kill index)` witness.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use mobic::core::AlgorithmKind;
use mobic::scenario::{
    run_scenario_resumed, run_scenario_traced, run_scenario_until, Engine, RunOutcome,
    ScenarioConfig, Scheduler,
};
use mobic::trace::JsonlSink;
use proptest::prelude::*;

const ALGORITHMS: [AlgorithmKind; 5] = [
    AlgorithmKind::LowestId,
    AlgorithmKind::Lcc,
    AlgorithmKind::HighestDegree,
    AlgorithmKind::Mobic,
    AlgorithmKind::Wca,
];

/// (engine, shards, scheduler): the execution cube a snapshot must be
/// portable across.
const CUBE: [(Engine, u32, Scheduler); 4] = [
    (Engine::Sequential, 0, Scheduler::Heap),
    (Engine::Sequential, 0, Scheduler::Calendar),
    (Engine::Sharded, 2, Scheduler::Heap),
    (Engine::Sharded, 3, Scheduler::Calendar),
];

fn trace_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mobic_ckpt_prop_{tag}_{}_{n}.jsonl",
        std::process::id()
    ))
}

fn small(alg: AlgorithmKind, engine: Engine, shards: u32, scheduler: Scheduler) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = 10;
    cfg.sim_time_s = 20.0;
    cfg.tx_range_m = 180.0;
    cfg.algorithm = alg;
    cfg.engine = engine;
    cfg.shards = shards;
    cfg.scheduler = scheduler;
    cfg
}

proptest! {
    // Each case runs the scenario three times (reference, killed,
    // resumed); keep the case count modest — the cube and algorithm
    // axes are sampled, not enumerated, and any failure shrinks.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn kill_and_resume_reproduces_result_and_trace_bytes(
        alg_i in 0usize..5,
        cube_i in 0usize..4,
        seed in 0u64..512,
        kill in 1u64..120,
    ) {
        let (engine, shards, scheduler) = CUBE[cube_i];
        let cfg = small(ALGORITHMS[alg_i], engine, shards, scheduler);

        // Uninterrupted reference: result JSON + trace bytes.
        let ref_path = trace_path("ref");
        let mut ref_sink = JsonlSink::create(&ref_path).expect("ref sink");
        let reference = run_scenario_traced(&cfg, seed, &mut ref_sink).expect("reference run");
        drop(ref_sink);
        let ref_json = serde_json::to_string(&reference).expect("serialize");
        let ref_trace = std::fs::read(&ref_path).expect("ref trace bytes");

        // Kill between events `kill` and `kill + 1`, then resume the
        // snapshot — same config, trace appended at the cursor.
        let cut_path = trace_path("cut");
        let mut cut_sink = JsonlSink::create(&cut_path).expect("cut sink");
        let outcome = run_scenario_until(&cfg, seed, kill, &mut cut_sink).expect("killable run");
        drop(cut_sink);
        let result = match outcome {
            RunOutcome::Suspended(snapshot) => {
                prop_assert_eq!(snapshot.events_processed(), kill);
                let cursor = snapshot.trace_cursor().expect("traced runs carry a cursor");
                let mut tail = JsonlSink::resume(&cut_path, cursor).expect("resume sink");
                let r = run_scenario_resumed(&cfg, seed, *snapshot, &mut tail)
                    .expect("resumed run");
                drop(tail);
                r
            }
            // The whole run took fewer than `kill` events (cannot
            // happen at these sizes, but the contract allows it).
            RunOutcome::Done(result) => *result,
        };
        let resumed_json = serde_json::to_string(&result).expect("serialize");
        let cut_trace = std::fs::read(&cut_path).expect("cut trace bytes");

        prop_assert_eq!(resumed_json, ref_json, "RunResult bytes diverged");
        prop_assert_eq!(cut_trace, ref_trace, "trace bytes diverged");
        let _ = std::fs::remove_file(&ref_path);
        let _ = std::fs::remove_file(&cut_path);
    }
}
