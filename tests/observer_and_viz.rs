//! Cross-checks between the three views of a run: the observer hook,
//! the recorded metrics, and the visualization layer.

use mobic::core::AlgorithmKind;
use mobic::geom::Rect;
use mobic::scenario::{run_scenario, run_scenario_observed, ScenarioConfig};
use mobic::viz::{ClusterScene, SvgStyle};

fn cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = 15;
    cfg.sim_time_s = 60.0;
    cfg.tx_range_m = 200.0;
    cfg.algorithm = AlgorithmKind::Mobic;
    cfg
}

#[test]
fn observer_sees_exactly_the_recorded_cluster_series() {
    let cfg = cfg();
    let field = Rect::new(cfg.field_w_m, cfg.field_h_m);
    let mut observed: Vec<(f64, f64)> = Vec::new();
    let result = run_scenario_observed(&cfg, 5, |view| {
        let scene = ClusterScene::from_view(&view, field, cfg.tx_range_m);
        observed.push((view.now.as_secs_f64(), scene.clusterheads().len() as f64));
    })
    .expect("valid config");
    let (times, values) = result.cluster_series.samples();
    assert_eq!(observed.len(), times.len(), "one observation per sample");
    for ((ot, ov), (rt, rv)) in observed.iter().zip(times.iter().zip(values)) {
        assert_eq!(*ot, rt.as_secs_f64());
        assert_eq!(*ov, *rv, "scene and series disagree at t={ot}");
    }
}

#[test]
fn observer_does_not_perturb_the_run() {
    let cfg = cfg();
    let plain = run_scenario(&cfg, 9).unwrap();
    let mut count = 0usize;
    let observed = run_scenario_observed(&cfg, 9, |_| count += 1).unwrap();
    assert!(count > 0);
    assert_eq!(plain.final_roles, observed.final_roles);
    assert_eq!(plain.clusterhead_changes, observed.clusterhead_changes);
    assert_eq!(plain.deliveries, observed.deliveries);
}

#[test]
fn final_scene_renders_and_matches_final_roles() {
    let cfg = cfg();
    let field = Rect::new(cfg.field_w_m, cfg.field_h_m);
    let mut last: Option<ClusterScene> = None;
    let result = run_scenario_observed(&cfg, 3, |view| {
        last = Some(ClusterScene::from_view(&view, field, cfg.tx_range_m));
    })
    .expect("valid config");
    let scene = last.expect("at least one sample");
    // The last sample precedes any post-sample evaluations only if no
    // hello lands after it at the same... — the runner samples on the
    // BI grid and hellos are offset within BI, so roles can change
    // after the final sample; compare clusterhead *counts* loosely.
    let scene_heads = scene.clusterheads().len();
    let final_heads = result
        .final_roles
        .iter()
        .filter(|r| r.is_clusterhead())
        .count();
    assert!(
        (scene_heads as i64 - final_heads as i64).abs() <= 2,
        "scene {scene_heads} vs final {final_heads}"
    );
    // And it renders to structurally valid SVG + ASCII.
    let svg = scene.to_svg(&SvgStyle::default());
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>\n"));
    assert!(svg.matches("<rect").count() >= 1);
    let ascii = scene.to_ascii(40, 20);
    assert!(ascii.contains('#'), "no clusterhead marker:\n{ascii}");
}
