//! The spatial-index fast path must be bit-identical to the
//! brute-force event loop: same `(cfg, seed)` ⇒ same `RunResult`
//! (deliveries, transitions, series, roles — everything but the perf
//! block), for every mobility model and for stateful loss models.

use mobic::scenario::{
    run_scenario, FastPath, LossKind, MobilityKind, PropagationKind, RunResult, ScenarioConfig,
};

/// Every mobility model the runner supports.
fn all_mobility_kinds() -> [MobilityKind; 8] {
    [
        MobilityKind::RandomWaypoint,
        MobilityKind::RandomWalk { epoch_s: 10.0 },
        MobilityKind::GaussMarkov { alpha: 0.8 },
        MobilityKind::Rpgm {
            groups: 4,
            member_radius_m: 40.0,
        },
        MobilityKind::Highway {
            lanes: 4,
            bidirectional: true,
        },
        MobilityKind::ConferenceHall { booths: 5 },
        MobilityKind::Manhattan {
            block_m: 100.0,
            p_turn: 0.5,
        },
        MobilityKind::Stationary,
    ]
}

/// Asserts every measurement matches; `perf` is deliberately excluded
/// (it records *how* the run executed, which legitimately differs).
fn assert_identical(a: &RunResult, b: &RunResult, ctx: &str) {
    assert_eq!(a.deliveries, b.deliveries, "deliveries {ctx}");
    assert_eq!(a.hello_broadcasts, b.hello_broadcasts, "hellos {ctx}");
    assert_eq!(a.mac_collisions, b.mac_collisions, "collisions {ctx}");
    assert_eq!(
        a.clusterhead_changes_total, b.clusterhead_changes_total,
        "CS total {ctx}"
    );
    assert_eq!(a.clusterhead_changes, b.clusterhead_changes, "CS {ctx}");
    assert_eq!(
        a.affiliation_changes, b.affiliation_changes,
        "affiliation {ctx}"
    );
    assert_eq!(a.avg_clusters, b.avg_clusters, "avg clusters {ctx}");
    assert_eq!(a.gateway_fraction, b.gateway_fraction, "gateways {ctx}");
    assert_eq!(
        a.mean_aggregate_metric, b.mean_aggregate_metric,
        "metric {ctx}"
    );
    assert_eq!(a.cluster_series, b.cluster_series, "series {ctx}");
    assert_eq!(a.final_roles, b.final_roles, "roles {ctx}");
    assert_eq!(a.transitions_by_kind, b.transitions_by_kind, "kinds {ctx}");
    assert_eq!(a.ch_time_gini, b.ch_time_gini, "gini {ctx}");
    assert_eq!(
        a.distinct_clusterheads, b.distinct_clusterheads,
        "distinct CHs {ctx}"
    );
    assert_eq!(a.role_transitions, b.role_transitions, "transitions {ctx}");
}

/// A shortened `paper_table1` so the full cross product stays fast.
fn paper_short() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.sim_time_s = 120.0;
    cfg
}

#[test]
fn indexed_loop_is_bit_identical_across_mobility_and_seeds() {
    for mobility in all_mobility_kinds() {
        for seed in 0..5 {
            let mut cfg = paper_short();
            cfg.mobility = mobility;
            cfg.fast_path = FastPath::Off;
            let brute = run_scenario(&cfg, seed).unwrap();
            cfg.fast_path = FastPath::On;
            let fast = run_scenario(&cfg, seed).unwrap();
            assert!(fast.perf.indexed, "{mobility:?} seed {seed}");
            assert!(!brute.perf.indexed);
            assert_identical(&fast, &brute, &format!("{mobility:?} seed {seed}"));
        }
    }
}

#[test]
fn indexed_loop_matches_with_stateful_loss_models() {
    // Bernoulli and Gilbert–Elliott consume RNG per queried link, so
    // any divergence in candidate order or membership shows up here.
    for loss in [LossKind::Bernoulli { p: 0.2 }, LossKind::BurstyPreset] {
        for seed in [0, 7] {
            let mut cfg = paper_short();
            cfg.loss = loss;
            cfg.fast_path = FastPath::Off;
            let brute = run_scenario(&cfg, seed).unwrap();
            cfg.fast_path = FastPath::On;
            let fast = run_scenario(&cfg, seed).unwrap();
            assert_identical(&fast, &brute, &format!("{loss:?} seed {seed}"));
        }
    }
}

#[test]
fn indexed_loop_matches_with_mac_collisions_and_adaptive_bi() {
    let mut cfg = paper_short();
    cfg.packet_time_s = 0.01;
    cfg.adaptive_bi_min_s = 0.5;
    cfg.fast_path = FastPath::Off;
    let brute = run_scenario(&cfg, 3).unwrap();
    cfg.fast_path = FastPath::On;
    let fast = run_scenario(&cfg, 3).unwrap();
    assert!(brute.mac_collisions > 0, "collision model not exercised");
    assert_identical(&fast, &brute, "collisions + adaptive BI");
}

#[test]
fn auto_falls_back_to_brute_force_for_stochastic_propagation() {
    for propagation in [
        PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 },
        PropagationKind::NakagamiFreeSpace { m: 3.0 },
    ] {
        let mut cfg = paper_short();
        cfg.sim_time_s = 60.0;
        cfg.propagation = propagation;
        cfg.fast_path = FastPath::Auto;
        let auto = run_scenario(&cfg, 2).unwrap();
        assert!(!auto.perf.indexed, "{propagation:?} must fall back");
        cfg.fast_path = FastPath::Off;
        let off = run_scenario(&cfg, 2).unwrap();
        assert_identical(&auto, &off, &format!("{propagation:?} fallback"));
    }
}

#[test]
fn deterministic_propagation_variants_all_take_the_fast_path() {
    for propagation in [
        PropagationKind::FreeSpace,
        PropagationKind::TwoRayGround,
        PropagationKind::LogDistance { exponent: 3.0 },
        PropagationKind::ShadowedFreeSpace { sigma_db: 0.0 },
    ] {
        let mut cfg = paper_short();
        cfg.sim_time_s = 60.0;
        cfg.propagation = propagation;
        cfg.fast_path = FastPath::Off;
        let brute = run_scenario(&cfg, 4).unwrap();
        cfg.fast_path = FastPath::Auto;
        let fast = run_scenario(&cfg, 4).unwrap();
        assert!(fast.perf.indexed, "{propagation:?} should be indexed");
        assert_identical(&fast, &brute, &format!("{propagation:?}"));
    }
}
