//! Failure injection: pile every adverse channel effect on at once —
//! log-normal shadowing, bursty loss, MAC collisions, high speed —
//! and verify the whole stack stays sane (no panics, invariants hold,
//! metrics remain finite, determinism survives). The second half adds
//! node-lifecycle faults (crashes, recoveries, impairments) and the
//! supervised batch executor on top of the hostile channel.

use std::time::Duration;

use mobic::core::AlgorithmKind;
use mobic::scenario::{
    run_batch_supervised, run_batch_supervised_stats, run_scenario, run_scenario_traced, FaultPlan,
    FaultTarget, LossKind, MobilityKind, PropagationKind, RunError, ScenarioConfig, Supervision,
};
use mobic::trace::JsonlSink;
use proptest::prelude::*;

fn hostile() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = 25;
    cfg.sim_time_s = 120.0;
    cfg.tx_range_m = 200.0;
    cfg.max_speed_mps = 30.0;
    cfg.propagation = PropagationKind::ShadowedFreeSpace { sigma_db: 6.0 };
    cfg.loss = LossKind::BurstyPreset;
    cfg.packet_time_s = 0.005;
    cfg
}

#[test]
fn hostile_channel_keeps_everything_finite() {
    for alg in AlgorithmKind::ALL {
        let r = run_scenario(&hostile().with_algorithm(alg), 17).expect("valid config");
        assert!(r.mean_aggregate_metric.is_finite(), "{alg}");
        assert!(r.mean_aggregate_metric >= 0.0, "{alg}");
        assert!(r.avg_clusters >= 1.0 && r.avg_clusters <= 25.0, "{alg}");
        assert!((0.0..=1.0).contains(&r.gateway_fraction), "{alg}");
        assert!(r.deliveries > 0, "{alg}: channel completely dead");
        assert!(r.mac_collisions > 0, "{alg}: collision model inert");
        // The cluster-count series never leaves [0, n].
        let (_, values) = r.cluster_series.samples();
        assert!(
            values.iter().all(|&v| (0.0..=25.0).contains(&v)),
            "{alg}: cluster count out of range"
        );
    }
}

#[test]
fn hostile_channel_is_still_deterministic() {
    let cfg = hostile();
    let a = run_scenario(&cfg, 23).unwrap();
    let b = run_scenario(&cfg, 23).unwrap();
    assert_eq!(a.final_roles, b.final_roles);
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.mac_collisions, b.mac_collisions);
    assert_eq!(a.clusterhead_changes, b.clusterhead_changes);
}

#[test]
fn hostile_channel_increases_churn_over_clean_channel() {
    let clean = {
        let mut cfg = hostile();
        cfg.propagation = PropagationKind::FreeSpace;
        cfg.loss = LossKind::None;
        cfg.packet_time_s = 0.0;
        cfg
    };
    let mut clean_cs = 0.0;
    let mut hostile_cs = 0.0;
    for seed in 0..3u64 {
        clean_cs += run_scenario(&clean, seed).unwrap().clusterhead_changes as f64;
        hostile_cs += run_scenario(&hostile(), seed).unwrap().clusterhead_changes as f64;
    }
    assert!(
        hostile_cs > clean_cs,
        "adversity must hurt: hostile {hostile_cs} vs clean {clean_cs}"
    );
}

#[test]
fn group_mobility_under_hostile_channel_runs() {
    let mut cfg = hostile();
    cfg.mobility = MobilityKind::Rpgm {
        groups: 4,
        member_radius_m: 40.0,
    };
    let r = run_scenario(&cfg, 3).expect("valid config");
    assert!(r.hello_broadcasts > 0);
}

#[test]
fn clusterhead_crashes_heal_in_finite_time_for_every_algorithm() {
    for alg in AlgorithmKind::ALL {
        let mut cfg = hostile().with_algorithm(alg);
        cfg.faults.crashes = 3;
        cfg.faults.from_s = 40.0;
        cfg.faults.until_s = 80.0; // leave 40 s of run for re-affiliation
        cfg.faults.target = FaultTarget::Clusterhead;
        let r = run_scenario(&cfg, 11).expect("valid config");
        assert_eq!(r.faults.crashes, 3, "{alg}");
        // Targeting the most-populated clusterhead guarantees orphans,
        // so every crash opens a healing probe.
        let h = r.healing.expect("clusterhead crashes must open probes");
        assert!(h.probes >= 1 && h.probes <= 3, "{alg}: {h:?}");
        assert_eq!(h.healed + h.unhealed, h.probes, "{alg}");
        assert!(h.healed >= 1, "{alg}: nothing ever re-affiliated");
        assert!(
            h.mean_latency_s.is_finite() && h.mean_latency_s >= 0.0,
            "{alg}"
        );
        assert!(h.max_latency_s.is_finite(), "{alg}");
        assert!(h.max_latency_s + 1e-12 >= h.mean_latency_s, "{alg}");
        // The survivors re-elected: the network still has structure.
        assert!(r.avg_clusters >= 1.0, "{alg}");
    }
}

#[test]
fn killing_the_whole_population_degrades_gracefully() {
    let mut cfg = hostile();
    cfg.n_nodes = 6;
    cfg.faults.crashes = 6;
    cfg.faults.from_s = 30.0;
    cfg.faults.until_s = 60.0;
    let r = run_scenario(&cfg, 7).expect("valid config");
    // Every crash finds a victim until nobody is left; the run still
    // completes with finite metrics and the pre-crash traffic intact.
    assert_eq!(r.faults.crashes, 6);
    assert!(r.deliveries > 0);
    assert!(r.mean_aggregate_metric.is_finite());
    let (_, values) = r.cluster_series.samples();
    assert!(values.iter().all(|v| v.is_finite()));
}

#[test]
fn empty_fault_plan_is_byte_identical_to_an_unconfigured_run() {
    for seed in [2u64, 13] {
        let baseline = hostile();
        let mut explicit = hostile();
        explicit.faults = FaultPlan::default();
        let run = |cfg: &ScenarioConfig| {
            let mut sink = JsonlSink::new(Vec::new());
            let r = run_scenario_traced(cfg, seed, &mut sink).expect("valid config");
            let json = serde_json::to_string(&r).expect("serializes");
            (json, sink.finish().expect("in-memory sink"))
        };
        let (base_json, base_trace) = run(&baseline);
        let (explicit_json, explicit_trace) = run(&explicit);
        assert_eq!(base_json, explicit_json, "seed {seed}");
        assert_eq!(base_trace, explicit_trace, "seed {seed}");
        // Fault-free results carry no fault keys at all.
        assert!(!base_json.contains("\"faults\""), "seed {seed}");
        assert!(!base_json.contains("\"healing\""), "seed {seed}");
        assert!(!base_json.contains("\"audit\""), "seed {seed}");
    }
}

#[test]
fn supervised_batch_isolates_panicking_and_stuck_jobs() {
    let mut cfg = hostile();
    cfg.n_nodes = 8;
    cfg.sim_time_s = 30.0;
    let jobs: Vec<(ScenarioConfig, u64)> = (0..4).map(|s| (cfg, s)).collect();
    let sup = Supervision {
        soft_deadline: Some(Duration::from_secs(5)),
        join_grace: Duration::from_millis(50),
        panic_on: Some(0),
        delay_on: Some((2, Duration::from_secs(60))),
    };
    let (results, stats) = run_batch_supervised_stats(&jobs, &sup);
    assert_eq!(results.len(), 4);
    let e0 = results[0].as_ref().unwrap_err();
    assert_eq!(e0.index, 0);
    assert!(matches!(e0.error, RunError::Panicked { .. }), "{e0}");
    let e2 = results[2].as_ref().unwrap_err();
    assert_eq!(e2.index, 2);
    assert!(matches!(e2.error, RunError::TimedOut { .. }), "{e2}");
    for i in [1usize, 3] {
        let r = results[i].as_ref().expect("healthy jobs must finish");
        assert!(r.deliveries > 0, "job {i}");
    }
    // The 60-second sleeper was abandoned by the watchdog and cannot
    // wind down inside the 50 ms grace: it must be reported, not
    // silently left behind.
    assert_eq!(stats.leaked_workers, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Wherever the panic lands, supervision converts exactly that job
    // into `RunError::Panicked` and every other job completes.
    #[test]
    fn any_panicking_job_is_isolated(panic_at in 0usize..3) {
        let mut cfg = ScenarioConfig::paper_table1();
        cfg.n_nodes = 6;
        cfg.sim_time_s = 20.0;
        cfg.tx_range_m = 200.0;
        let jobs: Vec<(ScenarioConfig, u64)> = (0..3).map(|s| (cfg, s)).collect();
        let sup = Supervision {
            panic_on: Some(panic_at),
            ..Supervision::default()
        };
        let results = run_batch_supervised(&jobs, &sup);
        for (i, r) in results.iter().enumerate() {
            if i == panic_at {
                let e = r.as_ref().unwrap_err();
                prop_assert_eq!(e.index, panic_at);
                prop_assert!(matches!(e.error, RunError::Panicked { .. }));
            } else {
                prop_assert!(r.is_ok(), "job {} must survive", i);
            }
        }
    }
}
