//! Failure injection: pile every adverse channel effect on at once —
//! log-normal shadowing, bursty loss, MAC collisions, high speed —
//! and verify the whole stack stays sane (no panics, invariants hold,
//! metrics remain finite, determinism survives).

use mobic::core::AlgorithmKind;
use mobic::scenario::{run_scenario, LossKind, MobilityKind, PropagationKind, ScenarioConfig};

fn hostile() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = 25;
    cfg.sim_time_s = 120.0;
    cfg.tx_range_m = 200.0;
    cfg.max_speed_mps = 30.0;
    cfg.propagation = PropagationKind::ShadowedFreeSpace { sigma_db: 6.0 };
    cfg.loss = LossKind::BurstyPreset;
    cfg.packet_time_s = 0.005;
    cfg
}

#[test]
fn hostile_channel_keeps_everything_finite() {
    for alg in AlgorithmKind::ALL {
        let r = run_scenario(&hostile().with_algorithm(alg), 17).expect("valid config");
        assert!(r.mean_aggregate_metric.is_finite(), "{alg}");
        assert!(r.mean_aggregate_metric >= 0.0, "{alg}");
        assert!(r.avg_clusters >= 1.0 && r.avg_clusters <= 25.0, "{alg}");
        assert!((0.0..=1.0).contains(&r.gateway_fraction), "{alg}");
        assert!(r.deliveries > 0, "{alg}: channel completely dead");
        assert!(r.mac_collisions > 0, "{alg}: collision model inert");
        // The cluster-count series never leaves [0, n].
        let (_, values) = r.cluster_series.samples();
        assert!(
            values.iter().all(|&v| (0.0..=25.0).contains(&v)),
            "{alg}: cluster count out of range"
        );
    }
}

#[test]
fn hostile_channel_is_still_deterministic() {
    let cfg = hostile();
    let a = run_scenario(&cfg, 23).unwrap();
    let b = run_scenario(&cfg, 23).unwrap();
    assert_eq!(a.final_roles, b.final_roles);
    assert_eq!(a.deliveries, b.deliveries);
    assert_eq!(a.mac_collisions, b.mac_collisions);
    assert_eq!(a.clusterhead_changes, b.clusterhead_changes);
}

#[test]
fn hostile_channel_increases_churn_over_clean_channel() {
    let clean = {
        let mut cfg = hostile();
        cfg.propagation = PropagationKind::FreeSpace;
        cfg.loss = LossKind::None;
        cfg.packet_time_s = 0.0;
        cfg
    };
    let mut clean_cs = 0.0;
    let mut hostile_cs = 0.0;
    for seed in 0..3u64 {
        clean_cs += run_scenario(&clean, seed).unwrap().clusterhead_changes as f64;
        hostile_cs += run_scenario(&hostile(), seed).unwrap().clusterhead_changes as f64;
    }
    assert!(
        hostile_cs > clean_cs,
        "adversity must hurt: hostile {hostile_cs} vs clean {clean_cs}"
    );
}

#[test]
fn group_mobility_under_hostile_channel_runs() {
    let mut cfg = hostile();
    cfg.mobility = MobilityKind::Rpgm {
        groups: 4,
        member_radius_m: 40.0,
    };
    let r = run_scenario(&cfg, 3).expect("valid config");
    assert!(r.hello_broadcasts > 0);
}
