//! The distributed clustering engine, run over the real hello
//! protocol on a static topology, must converge to the centralized
//! reference clustering (the unique fixed point of lowest-weight
//! election) and satisfy the paper's Theorem-1 invariants.

use mobic::core::centralized::{lowest_id_clustering, Adjacency};
use mobic::core::invariants::{check_theorem1, cluster_count, max_cluster_diameter};
use mobic::core::{AlgorithmKind, Role};
use mobic::net::NodeId;
use mobic::scenario::{run_scenario, MobilityKind, ScenarioConfig};
use mobic::sim::rng::SeedSplitter;
use rand::Rng;

/// Rebuilds the static placement the scenario runner uses for
/// `MobilityKind::Stationary` with a given master seed, so tests can
/// compute the expected clustering.
fn stationary_positions(cfg: &ScenarioConfig, seed: u64) -> Vec<mobic::geom::Vec2> {
    let splitter = SeedSplitter::new(seed);
    let mut rng = splitter.stream("placement", 0);
    let field = mobic::geom::Rect::new(cfg.field_w_m, cfg.field_h_m);
    (0..cfg.n_nodes)
        .map(|_| field.point_at(rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

fn static_cfg(alg: AlgorithmKind, seed_nodes: u32) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = seed_nodes;
    cfg.mobility = MobilityKind::Stationary;
    cfg.sim_time_s = 120.0;
    // Static convergence can chain several patience windows; measure
    // only the settled regime.
    cfg.warmup_s = 60.0;
    cfg.tx_range_m = 200.0;
    cfg.algorithm = alg;
    cfg
}

#[test]
fn distributed_lcc_reaches_a_valid_fixed_point_near_the_centralized_one() {
    // The asynchronous protocol (random hello offsets, patience
    // windows) may settle into any *stable* LCC configuration, not
    // necessarily the sequential fixed point; but it must (a) satisfy
    // the same structural invariants — checked in the theorem-1 test —
    // and (b) land close to the centralized solution: similar cluster
    // count, and every centralized clusterhead that is a *strict local
    // minimum two hops out* (no alternative stable state can demote
    // those without violating stability... they can still be absorbed
    // as members of an adjacent-to-neighbor cluster, so we assert the
    // count bound only).
    for seed in 0..5u64 {
        let cfg = static_cfg(AlgorithmKind::Lcc, 30);
        let result = run_scenario(&cfg, seed).expect("valid config");
        let positions = stationary_positions(&cfg, seed);
        let adj = Adjacency::unit_disk(&positions, cfg.tx_range_m);
        let ids: Vec<NodeId> = (0..cfg.n_nodes).map(NodeId::new).collect();
        let expected = lowest_id_clustering(&ids, &adj);
        let expected_count = expected.iter().filter(|r| r.is_clusterhead()).count() as f64;
        let got_count = result
            .final_roles
            .iter()
            .filter(|r| r.is_clusterhead())
            .count() as f64;
        assert!(
            (got_count - expected_count).abs() <= (expected_count * 0.5).max(2.0),
            "seed {seed}: distributed found {got_count} clusters, centralized {expected_count}"
        );
        // The globally lowest id in each connected component can never
        // be stably demoted: any clusterhead it could be member of
        // would have a higher id and lose the CH-CH contention...
        // unless they are never in contention (LCC members persist).
        // The truly invariant claim: node 0 is either a clusterhead or
        // a member of a *live neighboring* clusterhead.
        match result.final_roles[0] {
            mobic::core::Role::Clusterhead => {}
            mobic::core::Role::Member { ch } => {
                let ch_idx = ch.index();
                assert!(
                    adj.are_neighbors(0, ch_idx),
                    "seed {seed}: node 0 affiliated with unreachable {ch}"
                );
                assert!(result.final_roles[ch_idx].is_clusterhead());
            }
            mobic::core::Role::Undecided => panic!("seed {seed}: node 0 undecided"),
        }
    }
}

#[test]
fn distributed_mobic_on_static_nodes_equals_lowest_id() {
    // With no motion every aggregate metric stays 0, so MOBIC's weight
    // degenerates to (0, id) — the Lowest-ID order.
    for seed in [3, 17] {
        let a = run_scenario(&static_cfg(AlgorithmKind::Mobic, 25), seed).unwrap();
        let b = run_scenario(&static_cfg(AlgorithmKind::Lcc, 25), seed).unwrap();
        assert_eq!(a.final_roles, b.final_roles, "seed {seed}");
        assert_eq!(
            a.mean_aggregate_metric, 0.0,
            "static nodes measure zero mobility"
        );
    }
}

#[test]
fn theorem1_invariants_hold_after_convergence() {
    for alg in [AlgorithmKind::Lcc, AlgorithmKind::Mobic] {
        for seed in 0..4u64 {
            let cfg = static_cfg(alg, 30);
            let result = run_scenario(&cfg, seed).expect("valid config");
            let positions = stationary_positions(&cfg, seed);
            let adj = Adjacency::unit_disk(&positions, cfg.tx_range_m);
            let ids: Vec<NodeId> = (0..cfg.n_nodes).map(NodeId::new).collect();
            let violations = check_theorem1(&result.final_roles, &ids, &adj);
            assert!(violations.is_empty(), "{alg}, seed {seed}: {violations:?}");
            if let Some(d) = max_cluster_diameter(&result.final_roles, &ids, &adj) {
                assert!(d <= 2, "{alg}, seed {seed}: cluster diameter {d} > 2");
            }
        }
    }
}

#[test]
fn every_node_decides_on_static_topologies() {
    for seed in 0..4u64 {
        let result = run_scenario(&static_cfg(AlgorithmKind::Mobic, 40), seed).unwrap();
        assert!(
            result.final_roles.iter().all(|r| *r != Role::Undecided),
            "seed {seed}: someone stayed undecided"
        );
        assert_eq!(
            cluster_count(&result.final_roles) as f64,
            result.avg_clusters,
            "seed {seed}: static cluster count must be constant after convergence"
        );
    }
}
