//! The hot-path microarchitecture knobs must be invisible: for every
//! `(cfg, seed)`, `scheduler: calendar` (the bucketed calendar-queue
//! future-event list) and `delivery: auto` (the vectorized propagation
//! kernel with batched loss draws) yield byte-identical serialized
//! `RunResult`s *and* byte-identical JSONL trace streams vs the
//! default heap scheduler and the pinned scalar delivery path —
//! across mobility models, algorithms, loss models, the MAC collision
//! path, fault plans, and both engines.

use mobic::core::AlgorithmKind;
use mobic::scenario::{
    run_scenario, run_scenario_traced, DeliveryPath, Engine, FaultPlan, LossKind, MobilityKind,
    PropagationKind, ScenarioConfig, Scheduler,
};
use mobic::trace::JsonlSink;

/// Every mobility model the runner supports.
fn all_mobility_kinds() -> [MobilityKind; 8] {
    [
        MobilityKind::RandomWaypoint,
        MobilityKind::RandomWalk { epoch_s: 10.0 },
        MobilityKind::GaussMarkov { alpha: 0.8 },
        MobilityKind::Rpgm {
            groups: 4,
            member_radius_m: 40.0,
        },
        MobilityKind::Highway {
            lanes: 4,
            bidirectional: true,
        },
        MobilityKind::ConferenceHall { booths: 5 },
        MobilityKind::Manhattan {
            block_m: 100.0,
            p_turn: 0.5,
        },
        MobilityKind::Stationary,
    ]
}

/// A shortened `paper_table1` so the cross products stay fast.
fn paper_short() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.sim_time_s = 120.0;
    cfg
}

/// Serialized result under the given scheduler/delivery pair. JSON
/// bytes catch everything serde sees — any float, count, or map
/// divergence.
fn result_bytes(
    cfg: &ScenarioConfig,
    seed: u64,
    scheduler: Scheduler,
    delivery: DeliveryPath,
) -> String {
    let mut c = *cfg;
    c.scheduler = scheduler;
    c.delivery = delivery;
    serde_json::to_string(&run_scenario(&c, seed).unwrap()).unwrap()
}

/// Full JSONL trace under the given scheduler/delivery pair.
fn trace_bytes(
    cfg: &ScenarioConfig,
    seed: u64,
    scheduler: Scheduler,
    delivery: DeliveryPath,
) -> Vec<u8> {
    let mut c = *cfg;
    c.scheduler = scheduler;
    c.delivery = delivery;
    let mut sink = JsonlSink::new(Vec::new());
    run_scenario_traced(&c, seed, &mut sink).unwrap();
    sink.finish().unwrap()
}

/// The full 2×2 of (scheduler, delivery) against the baseline
/// (heap, scalar): every cell must serialize identically.
fn assert_all_variants_identical(cfg: &ScenarioConfig, seed: u64, label: &str) {
    let want = result_bytes(cfg, seed, Scheduler::Heap, DeliveryPath::Scalar);
    for scheduler in [Scheduler::Heap, Scheduler::Calendar] {
        for delivery in [DeliveryPath::Scalar, DeliveryPath::Auto] {
            assert_eq!(
                want,
                result_bytes(cfg, seed, scheduler, delivery),
                "{label}: {scheduler:?}/{delivery:?}"
            );
        }
    }
}

#[test]
fn calendar_is_byte_identical_across_mobility_and_seeds() {
    for mobility in all_mobility_kinds() {
        for seed in 0..3 {
            let mut cfg = paper_short();
            cfg.mobility = mobility;
            assert_eq!(
                result_bytes(&cfg, seed, Scheduler::Heap, DeliveryPath::Auto),
                result_bytes(&cfg, seed, Scheduler::Calendar, DeliveryPath::Auto),
                "{mobility:?} seed {seed}"
            );
        }
    }
}

#[test]
fn kernel_is_byte_identical_across_mobility() {
    // The delivery knob isolated from the scheduler knob: scalar vs
    // vectorized kernel, heap queue on both sides.
    for mobility in all_mobility_kinds() {
        let mut cfg = paper_short();
        cfg.mobility = mobility;
        assert_eq!(
            result_bytes(&cfg, 5, Scheduler::Heap, DeliveryPath::Scalar),
            result_bytes(&cfg, 5, Scheduler::Heap, DeliveryPath::Auto),
            "{mobility:?}"
        );
    }
}

#[test]
fn all_variants_agree_across_algorithms() {
    // Each algorithm family stresses a different slice of the event
    // loop — all must be scheduler- and kernel-independent.
    for alg in AlgorithmKind::ALL {
        let mut cfg = paper_short();
        cfg.algorithm = alg;
        assert_all_variants_identical(&cfg, 11, &alg.to_string());
    }
}

#[test]
fn calendar_matches_with_stateful_loss_and_collisions() {
    // Stateful loss models consume RNG per queried link (the batched
    // draw path must stay in lockstep with the scalar one), and the
    // MAC window defers receptions across events — any pop reordering
    // between queue shapes would desync both.
    for loss in [LossKind::Bernoulli { p: 0.2 }, LossKind::BurstyPreset] {
        let mut cfg = paper_short();
        cfg.loss = loss;
        cfg.packet_time_s = 0.01;
        assert_all_variants_identical(&cfg, 7, &format!("{loss:?}"));
    }
}

#[test]
fn stochastic_propagation_stays_scalar_and_identical() {
    // Shadowing draws per-packet RNG inside `path_loss`: the kernel
    // must bow out (delivery: auto falls back to scalar), so auto and
    // scalar agree even here.
    let mut cfg = paper_short();
    cfg.propagation = PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 };
    assert_all_variants_identical(&cfg, 17, "shadowed");
}

#[test]
fn calendar_matches_with_fault_plan_and_adaptive_pacing() {
    // Fault injections interleave global events with hellos at seeded
    // fire times, and adaptive pacing makes hello re-arm latencies
    // non-uniform — reschedules land at awkward offsets within (and
    // occasionally beyond) a calendar year, the hardest case for
    // bucket rotation.
    let mut cfg = paper_short();
    cfg.faults = FaultPlan {
        crashes: 3,
        recoveries: 2,
        late_joins: 2,
        deaf_spells: 1,
        mute_spells: 1,
        ..FaultPlan::default()
    };
    cfg.adaptive_bi_min_s = 0.5;
    cfg.packet_time_s = 0.005;
    for seed in [1, 19] {
        assert_all_variants_identical(&cfg, seed, &format!("seed {seed}"));
    }
}

#[test]
fn calendar_composes_with_the_sharded_engine() {
    // scheduler × engine: per-shard calendar stores behind the sharded
    // merge must still pop in the sequential order.
    let mut cfg = paper_short();
    cfg.loss = LossKind::Bernoulli { p: 0.1 };
    let want = result_bytes(&cfg, 29, Scheduler::Heap, DeliveryPath::Auto);
    for engine in [Engine::Sequential, Engine::Sharded] {
        let mut c = cfg;
        c.engine = engine;
        c.shards = 2;
        assert_eq!(
            want,
            result_bytes(&c, 29, Scheduler::Calendar, DeliveryPath::Auto),
            "{engine:?}"
        );
    }
}

#[test]
fn calendar_trace_streams_are_byte_identical() {
    // The trace sees every hello, reception, loss drop, election, and
    // index refresh in emission order — the strictest observable of
    // event ordering the runner has.
    for mobility in [MobilityKind::RandomWaypoint, MobilityKind::Stationary] {
        let mut cfg = paper_short();
        cfg.mobility = mobility;
        cfg.loss = LossKind::Bernoulli { p: 0.1 };
        let heap = trace_bytes(&cfg, 13, Scheduler::Heap, DeliveryPath::Scalar);
        let cal = trace_bytes(&cfg, 13, Scheduler::Calendar, DeliveryPath::Auto);
        assert!(!heap.is_empty());
        assert_eq!(heap, cal, "{mobility:?}");
    }
}

#[test]
fn smoke_calendar_byte_identical() {
    // The CI smoke: one small cell, calendar scheduler + vectorized
    // kernel vs the all-default path, results and traces.
    let mut cfg = paper_short();
    cfg.n_nodes = 16;
    cfg.sim_time_s = 60.0;
    assert_eq!(
        result_bytes(&cfg, 3, Scheduler::Heap, DeliveryPath::Scalar),
        result_bytes(&cfg, 3, Scheduler::Calendar, DeliveryPath::Auto),
    );
    assert_eq!(
        trace_bytes(&cfg, 3, Scheduler::Heap, DeliveryPath::Scalar),
        trace_bytes(&cfg, 3, Scheduler::Calendar, DeliveryPath::Auto),
    );
}
