//! Reduced-scale checks that the paper's *qualitative* results hold —
//! the same comparisons EXPERIMENTS.md reports at full scale, shrunk
//! to stay test-suite friendly. Each uses several seeds and asserts on
//! the seed-mean, not individual runs.

use mobic::core::AlgorithmKind;
use mobic::scenario::{run_batch, ScenarioConfig};

/// Mean steady-state clusterhead changes across seeds.
fn mean_cs(cfg: &ScenarioConfig, alg: AlgorithmKind, seeds: std::ops::Range<u64>) -> f64 {
    let jobs: Vec<_> = seeds
        .clone()
        .map(|s| (cfg.with_algorithm(alg), s))
        .collect();
    let runs = run_batch(&jobs).expect("valid config");
    runs.iter()
        .map(|r| r.clusterhead_changes as f64)
        .sum::<f64>()
        / runs.len() as f64
}

fn paper_cfg(tx: f64, sim_time_s: f64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.sim_time_s = sim_time_s;
    cfg.tx_range_m = tx;
    cfg
}

#[test]
fn mobic_beats_lcc_at_large_range() {
    // Figure 3's headline comparison at Tx = 250 m (shortened run).
    let cfg = paper_cfg(250.0, 400.0);
    let lcc = mean_cs(&cfg, AlgorithmKind::Lcc, 0..4);
    let mobic = mean_cs(&cfg, AlgorithmKind::Mobic, 0..4);
    assert!(
        mobic < lcc,
        "MOBIC ({mobic:.1}) must beat LCC ({lcc:.1}) at Tx=250 m"
    );
}

#[test]
fn robust_median_aggregate_widens_the_gain() {
    // EXPERIMENTS.md X17: median-of-squares aggregation beats the raw
    // Eq.-2 mean of squares (which single close passes dominate).
    let cfg = paper_cfg(250.0, 400.0);
    let lcc = mean_cs(&cfg, AlgorithmKind::Lcc, 0..4);
    let mut med_cfg = cfg.with_algorithm(AlgorithmKind::Mobic);
    med_cfg.metric_aggregation = mobic::core::metric::MetricAggregation::MedianSq;
    let jobs: Vec<_> = (0..4u64).map(|s| (med_cfg, s)).collect();
    let runs = run_batch(&jobs).expect("valid config");
    let median = runs
        .iter()
        .map(|r| r.clusterhead_changes as f64)
        .sum::<f64>()
        / 4.0;
    assert!(
        median < lcc * 0.9,
        "median-aggregate MOBIC ({median:.1}) should clearly beat LCC ({lcc:.1})"
    );
}

#[test]
fn churn_peaks_at_small_ranges_then_falls() {
    // Figure 3's rise-and-fall shape: CS(50) > CS(250) and
    // CS(50) > CS(10) for LCC.
    let at = |tx: f64| mean_cs(&paper_cfg(tx, 300.0), AlgorithmKind::Lcc, 0..3);
    let low = at(10.0);
    let peak = at(50.0);
    let high = at(250.0);
    assert!(
        peak > high,
        "peak ({peak:.1}) must exceed large-range churn ({high:.1})"
    );
    assert!(
        peak > low,
        "peak ({peak:.1}) must exceed tiny-range churn ({low:.1})"
    );
}

#[test]
fn cluster_count_decreases_with_range() {
    // Figure 4's monotone shape, and near-equality of the algorithms.
    let cfg = paper_cfg(0.0, 300.0);
    let counts: Vec<(f64, f64)> = [50.0, 100.0, 200.0]
        .into_iter()
        .map(|tx| {
            let jobs: Vec<_> = (0..3u64)
                .map(|s| (cfg.with_tx_range(tx).with_algorithm(AlgorithmKind::Lcc), s))
                .collect();
            let lcc = run_batch(&jobs).unwrap();
            let jobs: Vec<_> = (0..3u64)
                .map(|s| {
                    (
                        cfg.with_tx_range(tx).with_algorithm(AlgorithmKind::Mobic),
                        s,
                    )
                })
                .collect();
            let mobic = run_batch(&jobs).unwrap();
            (
                lcc.iter().map(|r| r.avg_clusters).sum::<f64>() / 3.0,
                mobic.iter().map(|r| r.avg_clusters).sum::<f64>() / 3.0,
            )
        })
        .collect();
    assert!(
        counts[0].0 > counts[1].0 && counts[1].0 > counts[2].0,
        "{counts:?}"
    );
    for (lcc, mobic) in &counts {
        let rel = (lcc - mobic).abs() / lcc;
        assert!(
            rel < 0.35,
            "algorithms should form similar cluster counts: {counts:?}"
        );
    }
}

#[test]
fn highest_degree_is_least_stable() {
    // The [3]/[5] claim the paper builds on: max-connectivity churns
    // far more than id-based clustering.
    let cfg = paper_cfg(200.0, 300.0);
    let hd = mean_cs(&cfg, AlgorithmKind::HighestDegree, 0..3);
    let lcc = mean_cs(&cfg, AlgorithmKind::Lcc, 0..3);
    assert!(
        hd > lcc,
        "highest-degree ({hd:.1}) must churn more than LCC ({lcc:.1})"
    );
}

#[test]
fn plain_lowest_id_churns_more_than_lcc() {
    let cfg = paper_cfg(200.0, 300.0);
    let plain = mean_cs(&cfg, AlgorithmKind::LowestId, 0..3);
    let lcc = mean_cs(&cfg, AlgorithmKind::Lcc, 0..3);
    assert!(
        plain > lcc,
        "plain lowest-id ({plain:.1}) must churn more than LCC ({lcc:.1})"
    );
}

#[test]
fn sparser_field_churns_more_at_same_range() {
    // §4.3: the 1000×1000 field has more clusterhead changes at the
    // same moderate range.
    let dense = mean_cs(&paper_cfg(150.0, 300.0), AlgorithmKind::Lcc, 0..3);
    let mut sparse_cfg = ScenarioConfig::paper_sparse();
    sparse_cfg.sim_time_s = 300.0;
    sparse_cfg.tx_range_m = 150.0;
    let sparse = mean_cs(&sparse_cfg, AlgorithmKind::Lcc, 0..3);
    assert!(
        sparse > dense,
        "sparse ({sparse:.1}) must exceed dense ({dense:.1})"
    );
}

#[test]
fn slower_nodes_mean_fewer_changes() {
    // Figure 6's mobility-degree axis: MaxSpeed 1 m/s vs 20 m/s.
    let mut slow_cfg = paper_cfg(250.0, 300.0);
    slow_cfg.max_speed_mps = 1.0;
    let slow = mean_cs(&slow_cfg, AlgorithmKind::Mobic, 0..3);
    let fast = mean_cs(&paper_cfg(250.0, 300.0), AlgorithmKind::Mobic, 0..3);
    assert!(
        slow < fast,
        "slow ({slow:.1}) must be below fast ({fast:.1})"
    );
}

#[test]
fn pauses_reduce_churn() {
    // Figure 6(b): PT = 30 s is gentler than PT = 0 at equal speed.
    let mut paused_cfg = paper_cfg(250.0, 300.0);
    paused_cfg.pause_s = 30.0;
    let paused = mean_cs(&paused_cfg, AlgorithmKind::Lcc, 0..3);
    let moving = mean_cs(&paper_cfg(250.0, 300.0), AlgorithmKind::Lcc, 0..3);
    assert!(
        paused < moving,
        "paused ({paused:.1}) must be below always-moving ({moving:.1})"
    );
}
