//! Cache-correctness coverage for the sweepd service (ISSUE 7):
//! cold vs warm byte-identity, corruption detection, PR-4 `--out`
//! directories as warm caches, and key uniqueness over the paper's
//! fig-4 matrix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use mobic::core::AlgorithmKind;
use mobic::scenario::{run_cell, ScenarioConfig, Supervision, SweepOutcome, SweepSpec};
use mobic::sweepd::CellCache;
use mobic::trace::write_atomic;

/// A fresh per-test scratch directory (unique per process + call).
fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mobic_sweepd_cache_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_spec() -> SweepSpec {
    let mut base = ScenarioConfig::paper_table1();
    base.n_nodes = 8;
    base.sim_time_s = 30.0;
    SweepSpec {
        base,
        tx_values: vec![150.0, 200.0],
        algorithms: vec![AlgorithmKind::Mobic],
        seeds: 2,
        fault_panic_attempts: 0,
    }
}

#[test]
fn cold_and_warm_cells_are_byte_identical() {
    let dir = tmp_dir("warm");
    let cell = tiny_spec().cells().remove(0);
    let key = cell.key();

    // Cold: compute and store.
    let outcome = run_cell(&cell, &Supervision::default()).expect("cell runs");
    let json = outcome.to_json_pretty();
    {
        let mut cache = CellCache::open(&dir).expect("cache opens");
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&cell), None, "cold cache must miss");
        cache.put(&key, &json).expect("cell stores");
        assert_eq!(cache.get(&key), Some(json.as_str()));
    }

    // Warm: a fresh process (modeled by reopening) serves the exact
    // bytes, which equal a fresh direct computation's bytes.
    let mut cache = CellCache::open(&dir).expect("cache reopens");
    assert_eq!(cache.len(), 1);
    assert_eq!(cache.lookup(&cell).as_deref(), Some(json.as_str()));
    let recomputed = run_cell(&cell, &Supervision::default()).expect("cell reruns");
    assert_eq!(
        recomputed.to_json_pretty(),
        json,
        "direct computation and cached cell must agree byte-for-byte"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_and_truncated_cells_are_never_served() {
    let dir = tmp_dir("corrupt");
    let cell = tiny_spec().cells().remove(0);
    let key = cell.key();
    let json = run_cell(&cell, &Supervision::default())
        .expect("cell runs")
        .to_json_pretty();

    {
        let mut cache = CellCache::open(&dir).expect("cache opens");
        cache.put(&key, &json).expect("cell stores");
    }
    // Truncate the stored cell file in place (what a pre-atomic tool
    // or a disk-full event would leave behind).
    let file = dir.join(format!("{}.json", key.replace(':', "-")));
    let stored = std::fs::read_to_string(&file).expect("cell file exists");
    write_atomic(&file, &stored[..stored.len() / 2]).expect("truncate");

    let mut cache = CellCache::open(&dir).expect("cache reopens");
    assert_eq!(cache.get(&key), None, "truncated cell must not index");
    assert_eq!(cache.lookup(&cell), None, "truncated cell must not serve");

    // Outright garbage behaves the same.
    write_atomic(&file, "{\"x\": not json").expect("corrupt");
    let cache = CellCache::open(&dir).expect("cache reopens again");
    assert_eq!(cache.get(&key), None, "corrupted cell must not index");

    // And the parse gate itself: a truncated outcome never parses.
    assert!(SweepOutcome::from_json(&stored[..stored.len() / 2]).is_none());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_sweep_out_directory_is_a_warm_cache() {
    let dir = tmp_dir("legacy");
    let cell = tiny_spec().cells().remove(0);
    let json = run_cell(&cell, &Supervision::default())
        .expect("cell runs")
        .to_json_pretty();
    // What `mobic-cli sweep --out` writes: legacy name, same bytes.
    write_atomic(dir.join(cell.legacy_file_name()), &json).expect("legacy cell");

    let mut cache = CellCache::open(&dir).expect("cache opens over --out dir");
    assert!(cache.is_empty(), "legacy files index lazily");
    assert_eq!(
        cache.lookup(&cell).as_deref(),
        Some(json.as_str()),
        "legacy cell must hit with identical bytes"
    );
    // The hit re-indexed the cell under its content address.
    assert_eq!(cache.get(&cell.key()), Some(json.as_str()));

    // A cell with a different seed count must NOT match the legacy
    // file (its filename ignores seeds; the shape check catches it).
    let mut wider = cell.clone();
    wider.seeds.push(2);
    assert_eq!(cache.lookup(&wider), None);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig4_matrix_keys_are_exhaustively_distinct() {
    // The paper's fig-4 style matrix: Tx 10..=235 by 25, all five
    // algorithms — every cell must get a unique content address.
    let tx_values: Vec<f64> = (0..10).map(|i| 10.0 + 25.0 * f64::from(i)).collect();
    let spec = SweepSpec {
        base: ScenarioConfig::paper_table1(),
        tx_values,
        algorithms: vec![
            AlgorithmKind::LowestId,
            AlgorithmKind::Lcc,
            AlgorithmKind::HighestDegree,
            AlgorithmKind::Mobic,
            AlgorithmKind::Wca,
        ],
        seeds: 5,
        fault_panic_attempts: 0,
    };
    spec.validate().expect("fig-4 spec is valid");
    let cells = spec.cells();
    assert_eq!(cells.len(), 50);
    let keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
    for (i, a) in keys.iter().enumerate() {
        for (j, b) in keys.iter().enumerate().skip(i + 1) {
            assert_ne!(
                a,
                b,
                "cells {i} ({}@{}) and {j} ({}@{}) collide",
                cells[i].config.algorithm.name(),
                cells[i].x,
                cells[j].config.algorithm.name(),
                cells[j].x
            );
        }
    }
    // Seeds are part of the address too: the same grid at a different
    // seed count shares no key with the original.
    let mut more_seeds = spec.clone();
    more_seeds.seeds = 6;
    for k in more_seeds.cells().iter().map(|c| c.key()) {
        assert!(!keys.contains(&k), "seed count must be part of the key");
    }
}
