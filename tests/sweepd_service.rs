//! In-process end-to-end exercise of the sweepd service loop
//! (ISSUE 7): ephemeral-port startup, spec submission, status
//! polling, worker kill + retry via the fault hooks, byte-identity
//! against direct computation, and graceful drain.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use mobic::core::AlgorithmKind;
use mobic::scenario::{run_cell, ScenarioConfig, Supervision, SweepSpec};
use mobic::sweepd::http::request;
use mobic::sweepd::{Server, ServerConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("mobic_sweepd_e2e_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Binds a server on an ephemeral port and serves it from a thread,
/// applying `tweak` to the config first.
fn start_with(
    tag: &str,
    workers: usize,
    tweak: impl FnOnce(&mut ServerConfig),
) -> (String, PathBuf, std::thread::JoinHandle<()>) {
    let cache_dir = tmp_dir(tag);
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: cache_dir.clone(),
        workers,
        retry_budget: 2,
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    let server = Server::bind(&cfg).expect("server binds");
    let addr = server.addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, cache_dir, handle)
}

/// Binds a default-configured server on an ephemeral port.
fn start(tag: &str, workers: usize) -> (String, PathBuf, std::thread::JoinHandle<()>) {
    start_with(tag, workers, |_| {})
}

fn tiny_base() -> ScenarioConfig {
    let mut base = ScenarioConfig::paper_table1();
    base.n_nodes = 8;
    base.sim_time_s = 30.0;
    base
}

fn status_json(addr: &str) -> serde_json::Value {
    let (code, body) = request(addr, "GET", "/status", "").expect("status reachable");
    assert_eq!(code, 200, "{body}");
    serde_json::from_str(&body).expect("status is JSON")
}

/// Polls `/cell/<key>` for every key until all land (or fails the
/// test after `limit`), returning the raw cell bodies.
fn wait_for_cells(addr: &str, keys: &[String], limit: Duration) -> Vec<String> {
    let started = Instant::now();
    let mut bodies: Vec<Option<String>> = vec![None; keys.len()];
    while bodies.iter().any(Option::is_none) {
        assert!(
            started.elapsed() < limit,
            "cells did not land in {limit:?}; status: {}",
            status_json(addr)
        );
        for (i, key) in keys.iter().enumerate() {
            if bodies[i].is_some() {
                continue;
            }
            let (code, body) = request(addr, "GET", &format!("/cell/{key}"), "").expect("poll");
            match code {
                200 => bodies[i] = Some(body),
                404 => {} // pending
                other => panic!("cell {key} failed: {other} {body}"),
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    bodies.into_iter().flatten().collect()
}

fn submit(addr: &str, spec: &SweepSpec) -> serde_json::Value {
    let (code, body) = request(addr, "POST", "/sweep", &spec.to_json()).expect("submit");
    assert_eq!(code, 200, "{body}");
    serde_json::from_str(&body).expect("submit response is JSON")
}

#[test]
fn service_computes_caches_and_drains() {
    let (addr, cache_dir, handle) = start("full", 2);
    let spec = SweepSpec {
        base: tiny_base(),
        tx_values: vec![150.0, 200.0],
        algorithms: vec![AlgorithmKind::Mobic],
        seeds: 2,
        fault_panic_attempts: 0,
    };

    // Cold submit: everything queues.
    let response = submit(&addr, &spec);
    let keys: Vec<String> = response["cells"]
        .as_array()
        .expect("cells array")
        .iter()
        .map(|v| v.as_str().expect("key string").to_string())
        .collect();
    assert_eq!(keys.len(), 2);
    assert_eq!(response["cached"], 0);
    assert_eq!(response["queued"], 2);
    // The response keys are exactly the spec's own cell keys, in
    // expansion order.
    let expected: Vec<String> = spec.cells().iter().map(|c| c.key()).collect();
    assert_eq!(keys, expected);

    // Every cell lands and is byte-identical to direct computation.
    let bodies = wait_for_cells(&addr, &keys, Duration::from_secs(120));
    for (cell, body) in spec.cells().iter().zip(&bodies) {
        let direct = run_cell(cell, &Supervision::default()).expect("direct run");
        assert_eq!(
            &direct.to_json_pretty(),
            body,
            "service cell {} must match direct computation byte-for-byte",
            cell.key()
        );
    }

    // The acceptance criterion: resubmitting the identical spec
    // performs ZERO scenario runs — all cells answer from the cache
    // and the runs_executed counter does not move.
    let status = status_json(&addr);
    let runs_before = status["runs_executed"].as_u64().expect("runs_executed");
    assert_eq!(runs_before, 4, "2 cells x 2 seeds, no retries: {status}");
    assert_eq!(status["cached"], 2, "{status}");
    assert_eq!(status["failed"], 0, "{status}");
    let resubmit = submit(&addr, &spec);
    assert_eq!(resubmit["cached"], 2, "{resubmit}");
    assert_eq!(resubmit["queued"], 0, "{resubmit}");
    let status = status_json(&addr);
    assert_eq!(
        status["runs_executed"].as_u64(),
        Some(runs_before),
        "a 100% cache hit must not execute a single run: {status}"
    );
    assert!(status["cache_hits"].as_u64() >= Some(2), "{status}");

    // API edges while the service is still up.
    let (code, _) = request(&addr, "POST", "/sweep", "{not json").expect("bad spec");
    assert_eq!(code, 400);
    let (code, _) = request(&addr, "GET", "/cell/fnv1a64:0000000000000000", "").expect("miss");
    assert_eq!(code, 404);
    let (code, _) = request(&addr, "GET", "/nope", "").expect("bad route");
    assert_eq!(code, 404);

    // Drain: the server acknowledges, finishes (nothing in flight),
    // and exits; its thread joins cleanly.
    let (code, body) = request(&addr, "POST", "/drain", "").expect("drain");
    assert_eq!(code, 200, "{body}");
    handle.join().expect("server thread exits cleanly");
    assert!(
        request(&addr, "GET", "/status", "").is_err(),
        "a drained server must stop answering"
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn killed_worker_cell_is_retried_and_stays_byte_identical() {
    let (addr, cache_dir, handle) = start("fault", 1);
    // The fault hook kills the worker's cell mid-flight (a deliberate
    // panic inside the supervised batch) on the first attempt; the
    // retry then runs clean.
    let spec = SweepSpec {
        base: tiny_base(),
        tx_values: vec![175.0],
        algorithms: vec![AlgorithmKind::Mobic],
        seeds: 2,
        fault_panic_attempts: 1,
    };
    let response = submit(&addr, &spec);
    assert_eq!(response["queued"], 1, "{response}");
    let keys: Vec<String> = response["cells"]
        .as_array()
        .expect("cells")
        .iter()
        .map(|v| v.as_str().expect("key").to_string())
        .collect();

    let bodies = wait_for_cells(&addr, &keys, Duration::from_secs(120));
    let status = status_json(&addr);
    assert!(
        status["retries"].as_u64() >= Some(1),
        "the killed attempt must be retried: {status}"
    );
    // Despite the mid-cell kill, the final cell matches an unfaulted
    // direct computation byte-for-byte (the panicked attempt left no
    // partial outcome).
    let cells = spec.cells();
    let direct = run_cell(&cells[0], &Supervision::default()).expect("direct run");
    assert_eq!(direct.to_json_pretty(), bodies[0]);

    // The fault hook is not part of the content address: the same
    // cell without faults is a pure cache hit.
    let mut clean = spec.clone();
    clean.fault_panic_attempts = 0;
    let resubmit = submit(&addr, &clean);
    assert_eq!(resubmit["cached"], 1, "{resubmit}");

    let (code, _) = request(&addr, "POST", "/drain", "").expect("drain");
    assert_eq!(code, 200);
    handle.join().expect("server thread exits cleanly");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// The crash-recovery story end to end: a previous sweepd (or one of
/// its workers) died mid-cell leaving snapshots on disk; a fresh
/// server picking the cell up resumes from them — counted in
/// `/status` — and still serves bytes identical to a cold
/// computation. A corrupt snapshot for another seed degrades to a
/// cold start instead of poisoning the cell.
#[test]
fn checkpointing_server_resumes_from_prior_snapshots() {
    use mobic::scenario::{run_scenario_until, write_rotated, RunOutcome};
    use mobic::trace::NullSink;

    let spec = SweepSpec {
        base: tiny_base(),
        tx_values: vec![190.0],
        algorithms: vec![AlgorithmKind::Mobic],
        seeds: 2,
        fault_panic_attempts: 0,
    };
    let cells = spec.cells();
    let cell = &cells[0];

    // Simulate the killed predecessor: suspend seed 0 mid-run and
    // leave the rotated snapshot exactly where a checkpointing worker
    // would have put it (`<cache>/ckpt/<key with : mapped to ->/seed-0/`),
    // plus a corrupt snapshot for seed 1.
    let cache_dir = tmp_dir("ckpt_pre");
    let cell_dir = cache_dir.join("ckpt").join(cell.key().replace(':', "-"));
    let outcome = run_scenario_until(&cell.config, 0, 40, &mut NullSink).expect("suspendable run");
    let RunOutcome::Suspended(snapshot) = outcome else {
        panic!("the run must suspend at event 40");
    };
    write_rotated(&snapshot, &cell_dir.join("seed-0"), 2).expect("snapshot lands");
    let seed1 = cell_dir.join("seed-1");
    std::fs::create_dir_all(&seed1).expect("seed-1 dir");
    std::fs::write(seed1.join("ckpt-00000000000000000050.ckpt"), b"garbage").expect("corrupt");

    // A fresh checkpointing server over the same cache directory.
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: cache_dir.clone(),
        workers: 1,
        checkpoint_every: Some(1e-9),
        ..ServerConfig::default()
    };
    let server = Server::bind(&cfg).expect("server binds");
    let addr = server.addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    let response = submit(&addr, &spec);
    assert_eq!(response["queued"], 1, "{response}");
    let keys: Vec<String> = response["cells"]
        .as_array()
        .expect("cells")
        .iter()
        .map(|v| v.as_str().expect("key").to_string())
        .collect();
    let bodies = wait_for_cells(&addr, &keys, Duration::from_secs(120));

    // Byte identity despite the mixed resume/corrupt/cold starts.
    let direct = run_cell(cell, &Supervision::default()).expect("direct run");
    assert_eq!(direct.to_json_pretty(), bodies[0]);

    // The recovery is visible: seed 0 resumed, seed 1's garbage was
    // rejected, and both tallies are attributed to worker 0.
    let status = status_json(&addr);
    assert!(
        status["resumed_runs"].as_u64() >= Some(1),
        "seed 0 must resume from the snapshot: {status}"
    );
    assert!(
        status["snapshot_fallbacks"].as_u64() >= Some(1),
        "seed 1's corrupt snapshot must be counted: {status}"
    );
    assert_eq!(
        status["recovery"][0]["resumed"], status["resumed_runs"],
        "one worker owns every resume: {status}"
    );

    // The finished cell's snapshots were cleaned up.
    assert!(
        !cell_dir.exists(),
        "a completed cell must remove its snapshot directory"
    );

    let (code, _) = request(&addr, "POST", "/drain", "").expect("drain");
    assert_eq!(code, 200);
    handle.join().expect("server thread exits cleanly");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// HTTP hardening edges: an oversized request is answered with a
/// protocol-level `413` (not a silent connection drop), and a client
/// that stalls without sending a request is cut off by the socket
/// timeout without wedging the service.
#[test]
fn oversized_and_stalled_clients_cannot_wedge_the_service() {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    use mobic::sweepd::http::MAX_REQUEST_BYTES;

    let (addr, cache_dir, handle) = start_with("harden", 1, |cfg| {
        cfg.io_timeout = Duration::from_millis(300);
    });

    // Oversized: the declared body exceeds the cap, so the verdict
    // arrives from the headers alone — no body bytes are ever sent.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write!(
        stream,
        "POST /sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_REQUEST_BYTES + 1
    )
    .expect("send head");
    stream.flush().expect("flush");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read 413 response");
    assert!(
        response.starts_with("HTTP/1.1 413 Payload Too Large"),
        "{response}"
    );
    drop(stream);

    // Stalled: connect and send nothing. The read timeout must close
    // the connection rather than parking the accept loop forever.
    let mut stalled = TcpStream::connect(&addr).expect("connect stalled");
    let mut buf = [0u8; 64];
    let n = stalled.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "a stalled connection must be cut off, not served");
    drop(stalled);

    // The service is still healthy after both abuses.
    let status = status_json(&addr);
    assert_eq!(status["draining"], false, "{status}");

    let (code, _) = request(&addr, "POST", "/drain", "").expect("drain");
    assert_eq!(code, 200);
    handle.join().expect("server thread exits cleanly");
    let _ = std::fs::remove_dir_all(&cache_dir);
}
