//! The observability layer's two contracts, checked end to end:
//!
//! 1. **Determinism** — a JSONL trace and a manifest are pure
//!    functions of `(config, seed)`: re-running yields byte-identical
//!    bytes, across mobility models, loss models, and the MAC
//!    collision window.
//! 2. **Non-interference** — tracing never perturbs the simulation:
//!    the `RunResult` of a traced run (null or real sink) serializes
//!    byte-identically to an untraced run.

use mobic::scenario::{
    manifest_for, run_scenario, run_scenario_traced, LossKind, MobilityKind, ScenarioConfig,
};
use mobic::sim::SimTime;
use mobic::trace::{JsonlSink, NullSink, TraceEvent, TraceSink};

fn base() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = 15;
    cfg.sim_time_s = 60.0;
    cfg.tx_range_m = 200.0;
    cfg
}

/// The three observability-relevant regimes: clean channel, lossy
/// channel, and lossy channel with a MAC vulnerable window.
fn regimes() -> Vec<ScenarioConfig> {
    let clean = base();
    let mut lossy = base();
    lossy.loss = LossKind::Bernoulli { p: 0.2 };
    let mut mac = base();
    mac.loss = LossKind::Bernoulli { p: 0.1 };
    mac.packet_time_s = 0.005;
    vec![clean, lossy, mac]
}

fn capture_trace(cfg: &ScenarioConfig, seed: u64) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    run_scenario_traced(cfg, seed, &mut sink).expect("valid config");
    sink.finish().expect("in-memory sink cannot fail")
}

#[test]
fn traces_are_byte_identical_for_identical_runs() {
    for cfg in regimes() {
        let a = capture_trace(&cfg, 99);
        let b = capture_trace(&cfg, 99);
        assert!(!a.is_empty(), "{:?}", cfg.loss);
        assert_eq!(a, b, "trace must be a pure function of (cfg, seed)");
    }
}

#[test]
fn traces_differ_across_seeds() {
    let cfg = base();
    assert_ne!(capture_trace(&cfg, 1), capture_trace(&cfg, 2));
}

#[test]
fn every_trace_line_is_valid_json_with_monotone_potential() {
    // Lines parse, carry a kind tag, and timestamps never exceed the
    // simulation horizon. (Timestamps are *per event description*, so
    // deferred hello_rx lines may be stamped earlier than a neighbor
    // line — monotonicity is not promised, validity is.)
    let mut cfg = base();
    cfg.loss = LossKind::Bernoulli { p: 0.1 };
    cfg.packet_time_s = 0.005;
    let bytes = capture_trace(&cfg, 5);
    let text = String::from_utf8(bytes).unwrap();
    let horizon_us = (cfg.sim_time_s * 1e6) as u64;
    let mut lines = 0u64;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
        let t = v["t_us"].as_u64().expect("t_us present");
        assert!(t <= horizon_us, "timestamp {t} past horizon");
        assert!(v["kind"].is_string(), "kind tag present");
        lines += 1;
    }
    assert!(lines > 0);
}

#[test]
fn null_sink_and_real_sink_leave_the_result_bit_identical() {
    for mobility in [
        MobilityKind::RandomWaypoint,
        MobilityKind::GaussMarkov { alpha: 0.8 },
        MobilityKind::Rpgm {
            groups: 3,
            member_radius_m: 30.0,
        },
        MobilityKind::Stationary,
    ] {
        let mut cfg = base();
        cfg.mobility = mobility;
        let plain = serde_json::to_string(&run_scenario(&cfg, 31).unwrap()).unwrap();
        let nulled =
            serde_json::to_string(&run_scenario_traced(&cfg, 31, &mut NullSink).unwrap()).unwrap();
        let mut sink = JsonlSink::new(Vec::new());
        let traced =
            serde_json::to_string(&run_scenario_traced(&cfg, 31, &mut sink).unwrap()).unwrap();
        assert_eq!(plain, nulled, "{mobility:?}");
        assert_eq!(plain, traced, "{mobility:?}");
    }
}

/// Counts events by kind without retaining them.
#[derive(Default)]
struct Counter {
    tx: u64,
    rx: u64,
    collisions: u64,
    head_changes: u64,
    refreshes: u64,
}

impl TraceSink for Counter {
    fn record(&mut self, _at: SimTime, event: &TraceEvent) {
        match event {
            TraceEvent::HelloTx { .. } => self.tx += 1,
            TraceEvent::HelloRx { .. } => self.rx += 1,
            TraceEvent::MacCollision { .. } => self.collisions += 1,
            TraceEvent::HeadElected { .. }
            | TraceEvent::HeadResigned { .. }
            | TraceEvent::ClusterMerge { .. } => self.head_changes += 1,
            TraceEvent::IndexRefresh { .. } => self.refreshes += 1,
            TraceEvent::HelloLost { .. } => {}
        }
    }
}

#[test]
fn trace_event_counts_reconcile_with_result_counters() {
    for cfg in regimes() {
        let mut counter = Counter::default();
        let r = run_scenario_traced(&cfg, 17, &mut counter).unwrap();
        assert_eq!(counter.tx, r.hello_broadcasts, "{:?}", cfg.loss);
        assert_eq!(counter.rx, r.deliveries, "{:?}", cfg.loss);
        assert_eq!(counter.collisions, r.mac_collisions, "{:?}", cfg.loss);
        assert_eq!(counter.refreshes, r.perf.index_refreshes, "{:?}", cfg.loss);
        assert_eq!(
            counter.head_changes, r.clusterhead_changes_total,
            "{:?}",
            cfg.loss
        );
    }
}

#[test]
fn manifests_are_byte_identical_for_identical_runs() {
    let cfg = base();
    let capture = || {
        let r = run_scenario(&cfg, 12).unwrap();
        serde_json::to_string_pretty(&manifest_for(&cfg, 12, &r)).unwrap()
    };
    let a = capture();
    let b = capture();
    assert_eq!(a, b);
    // And the echoed config actually round-trips back to the input.
    let m: mobic::trace::RunManifest = serde_json::from_str(&a).unwrap();
    let back: ScenarioConfig = serde_json::from_value(m.config).unwrap();
    assert_eq!(back, cfg);
}
