//! Whole-stack determinism: a run is a pure function of
//! `(config, seed)` regardless of algorithm, mobility model, channel,
//! and parallel batching.

use mobic::core::AlgorithmKind;
use mobic::scenario::{
    run_batch, run_scenario, LossKind, MobilityKind, PropagationKind, ScenarioConfig,
};

fn base() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.n_nodes = 15;
    cfg.sim_time_s = 60.0;
    cfg.tx_range_m = 200.0;
    cfg
}

#[test]
fn identical_runs_are_bitwise_identical() {
    let combos = [
        (
            MobilityKind::RandomWaypoint,
            PropagationKind::FreeSpace,
            LossKind::None,
        ),
        (
            MobilityKind::Rpgm {
                groups: 3,
                member_radius_m: 30.0,
            },
            PropagationKind::TwoRayGround,
            LossKind::Bernoulli { p: 0.1 },
        ),
        (
            MobilityKind::GaussMarkov { alpha: 0.8 },
            PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 },
            LossKind::BurstyPreset,
        ),
        (
            MobilityKind::Highway {
                lanes: 3,
                bidirectional: true,
            },
            PropagationKind::LogDistance { exponent: 3.0 },
            LossKind::None,
        ),
    ];
    for (mobility, propagation, loss) in combos {
        for alg in AlgorithmKind::ALL {
            let mut cfg = base();
            cfg.mobility = mobility;
            cfg.propagation = propagation;
            cfg.loss = loss;
            cfg.algorithm = alg;
            let a = run_scenario(&cfg, 99).expect("valid");
            let b = run_scenario(&cfg, 99).expect("valid");
            assert_eq!(a.final_roles, b.final_roles, "{mobility:?} {alg}");
            assert_eq!(a.deliveries, b.deliveries, "{mobility:?} {alg}");
            assert_eq!(
                a.clusterhead_changes_total, b.clusterhead_changes_total,
                "{mobility:?} {alg}"
            );
            assert_eq!(a.cluster_series, b.cluster_series, "{mobility:?} {alg}");
        }
    }
}

#[test]
fn parallel_batch_equals_sequential_execution() {
    let jobs: Vec<(ScenarioConfig, u64)> = (0..8u64)
        .map(|s| {
            let mut cfg = base();
            cfg.tx_range_m = 100.0 + 20.0 * s as f64;
            (cfg, s)
        })
        .collect();
    let parallel = run_batch(&jobs).expect("valid");
    for ((cfg, seed), got) in jobs.iter().zip(&parallel) {
        let solo = run_scenario(cfg, *seed).expect("valid");
        assert_eq!(got.final_roles, solo.final_roles);
        assert_eq!(got.clusterhead_changes, solo.clusterhead_changes);
        assert_eq!(got.deliveries, solo.deliveries);
    }
}

#[test]
fn seed_changes_everything_config_changes_only_what_it_should() {
    let cfg = base();
    let a = run_scenario(&cfg, 1).unwrap();
    let b = run_scenario(&cfg, 2).unwrap();
    assert_ne!(
        a.deliveries, b.deliveries,
        "different seeds, different worlds"
    );

    // Changing only the algorithm keeps the physical world identical:
    // same mobility + channel streams ⇒ same delivery count.
    let lcc = run_scenario(&cfg.with_algorithm(AlgorithmKind::Lcc), 7).unwrap();
    let mobic = run_scenario(&cfg.with_algorithm(AlgorithmKind::Mobic), 7).unwrap();
    assert_eq!(
        lcc.deliveries, mobic.deliveries,
        "algorithm choice must not perturb the physical world"
    );
    assert_eq!(lcc.hello_broadcasts, mobic.hello_broadcasts);
}
