//! End-to-end check of the mobility metric's physics: drive the real
//! protocol stack (scripted mobility → Friis radio → hello delivery →
//! neighbor table → metric) and compare against the closed-form
//! values the paper's equations predict.

use mobic::core::{AlgorithmKind, ClusterConfig, ClusterNode, ClusterTable};
use mobic::geom::Vec2;
use mobic::mobility::{Mobility, Stationary, Waypoints};
use mobic::net::{loss::NoLoss, DeliveryEngine, NodeId};
use mobic::radio::{FreeSpace, Radio};
use mobic::sim::SimTime;

const BI: u64 = 2;

/// Runs `rounds` hello rounds between the given mobile nodes and
/// returns node 0's metric after the last round.
fn run_metric_probe(mut models: Vec<Box<dyn Mobility>>, rounds: u64) -> (f64, usize) {
    let n = models.len();
    let cfg = ClusterConfig::paper_default(AlgorithmKind::Mobic);
    let mut nodes: Vec<ClusterNode> = (0..n)
        .map(|i| ClusterNode::new(NodeId::new(i as u32), cfg))
        .collect();
    let mut tables: Vec<ClusterTable> = (0..n)
        .map(|_| ClusterTable::new(SimTime::from_secs(3)))
        .collect();
    let mut engine = DeliveryEngine::new(
        Radio::with_range(FreeSpace::at_frequency(914.0e6), 250.0),
        NoLoss,
    );
    let mut metric = (0.0, 0);
    for k in 0..rounds {
        let now = SimTime::from_secs(k * BI);
        let positions: Vec<Vec2> = models.iter_mut().map(|m| m.position_at(now)).collect();
        for i in 0..n {
            let hello = nodes[i].prepare_broadcast(now, &mut tables[i]);
            if i == 0 {
                metric = (nodes[0].metric(), nodes[0].metric_samples());
            }
            for d in engine.broadcast(NodeId::new(i as u32), &positions, now) {
                tables[d.receiver.index()].record(now, d.rx_power, &hello);
            }
        }
    }
    metric
}

#[test]
fn approaching_neighbor_yields_friis_square_law_metric() {
    // Node 1 approaches node 0 from 100 m to 60 m over one broadcast
    // interval (20 m/s): under Friis, M_rel = 20·log10(100/60) and
    // M = M_rel² (single neighbor).
    //
    // Timeline: hellos at t=0 (d=100) and t=2 (d=60); node 0 first
    // *prepares* before node 1's round-k hello arrives, so the pair
    // completes in node 0's metric at the t=4 broadcast (probe after
    // 3 rounds).
    let mk = || -> Vec<Box<dyn Mobility>> {
        vec![
            Box::new(Stationary::new(Vec2::ZERO)),
            Box::new(Waypoints::new(
                Vec2::new(100.0, 0.0),
                vec![(SimTime::from_secs(BI), Vec2::new(60.0, 0.0))],
            )),
        ]
    };
    let expected_rel = 20.0 * (100.0f64 / 60.0).log10();
    let (m, samples) = run_metric_probe(mk(), 3);
    assert_eq!(samples, 1);
    assert!(
        (m - expected_rel * expected_rel).abs() < 1e-9,
        "M = {m}, expected {}",
        expected_rel * expected_rel
    );
    // One round later the neighbor has held still (t=2 → t=4 window),
    // so the metric collapses back to zero.
    let (m2, s2) = run_metric_probe(mk(), 4);
    assert_eq!(s2, 1);
    assert!(m2.abs() < 1e-9, "after stopping, M = {m2}");
}

#[test]
fn receding_and_approaching_average_like_var0() {
    // Neighbor 1 approaches 100→80 m; neighbor 2 recedes 50→70 m.
    let models: Vec<Box<dyn Mobility>> = vec![
        Box::new(Stationary::new(Vec2::ZERO)),
        Box::new(Waypoints::new(
            Vec2::new(100.0, 0.0),
            vec![(SimTime::from_secs(BI), Vec2::new(80.0, 0.0))],
        )),
        Box::new(Waypoints::new(
            Vec2::new(0.0, 50.0),
            vec![(SimTime::from_secs(BI), Vec2::new(0.0, 70.0))],
        )),
    ];
    let (m, samples) = run_metric_probe(models, 3);
    let r1 = 20.0 * (100.0f64 / 80.0).log10(); // positive (approach)
    let r2 = 20.0 * (50.0f64 / 70.0).log10(); // negative (recede)
    assert_eq!(samples, 2);
    let expected = (r1 * r1 + r2 * r2) / 2.0;
    assert!((m - expected).abs() < 1e-9, "M = {m}, expected {expected}");
}

#[test]
fn stationary_neighborhood_measures_zero() {
    let models: Vec<Box<dyn Mobility>> = vec![
        Box::new(Stationary::new(Vec2::ZERO)),
        Box::new(Stationary::new(Vec2::new(80.0, 0.0))),
        Box::new(Stationary::new(Vec2::new(0.0, 120.0))),
    ];
    let (m, samples) = run_metric_probe(models, 4);
    assert_eq!(samples, 2);
    assert_eq!(m, 0.0);
}

#[test]
fn out_of_range_neighbor_contributes_nothing() {
    let models: Vec<Box<dyn Mobility>> = vec![
        Box::new(Stationary::new(Vec2::ZERO)),
        Box::new(Stationary::new(Vec2::new(500.0, 0.0))), // beyond 250 m
    ];
    let (m, samples) = run_metric_probe(models, 4);
    assert_eq!(samples, 0);
    assert_eq!(m, 0.0);
}

#[test]
fn metric_is_symmetric_for_a_symmetric_pair() {
    // Two nodes approaching each other symmetrically: both must
    // compute the same M (same power ratio in both directions).
    let mk = || -> Vec<Box<dyn Mobility>> {
        vec![
            Box::new(Waypoints::new(
                Vec2::new(0.0, 0.0),
                vec![(SimTime::from_secs(BI), Vec2::new(10.0, 0.0))],
            )),
            Box::new(Waypoints::new(
                Vec2::new(100.0, 0.0),
                vec![(SimTime::from_secs(BI), Vec2::new(90.0, 0.0))],
            )),
        ]
    };
    let (m0, _) = run_metric_probe(mk(), 3);
    // Swap roles: probe reports node 0's metric, so reverse the pair.
    let models_rev: Vec<Box<dyn Mobility>> = {
        let mut v = mk();
        v.reverse();
        v
    };
    let (m1, _) = run_metric_probe(models_rev, 3);
    assert!((m0 - m1).abs() < 1e-9, "{m0} vs {m1}");
    let expected_rel = 20.0 * (100.0f64 / 80.0).log10();
    assert!((m0 - expected_rel * expected_rel).abs() < 1e-9);
}
