//! Routing-over-clusters integration: the CBRP-style discovery must
//! be cheaper than flooding on live simulations, and the whole pipeline
//! must stay deterministic.

use mobic::core::AlgorithmKind;
use mobic::routing::{experiment::RoutingExperiment, ClusterRouting, Flooding};
use mobic::scenario::{MobilityKind, ScenarioConfig};

fn experiment(alg: AlgorithmKind) -> RoutingExperiment {
    let mut scenario = ScenarioConfig::paper_table1();
    scenario.n_nodes = 25;
    scenario.sim_time_s = 120.0;
    scenario.tx_range_m = 250.0;
    scenario.algorithm = alg;
    RoutingExperiment { scenario, flows: 6 }
}

#[test]
fn cluster_discovery_is_cheaper_than_flooding() {
    let f = experiment(AlgorithmKind::Mobic).run(&Flooding, 2).unwrap();
    let c = experiment(AlgorithmKind::Mobic)
        .run(&ClusterRouting, 2)
        .unwrap();
    let f_per = f.total_discovery_cost as f64 / f.discoveries.max(1) as f64;
    let c_per = c.total_discovery_cost as f64 / c.discoveries.max(1) as f64;
    assert!(
        c_per < f_per,
        "cluster discovery {c_per:.1} forwarders/req must beat flooding {f_per:.1}"
    );
}

#[test]
fn flooding_routes_are_never_longer_than_cluster_routes() {
    // Flooding finds true shortest paths; backbone restriction can
    // only lengthen them.
    let f = experiment(AlgorithmKind::Lcc).run(&Flooding, 4).unwrap();
    let c = experiment(AlgorithmKind::Lcc)
        .run(&ClusterRouting, 4)
        .unwrap();
    if f.mean_hops > 0.0 && c.mean_hops > 0.0 {
        assert!(
            f.mean_hops <= c.mean_hops + 1e-9,
            "flooding {:.2} hops vs cluster {:.2}",
            f.mean_hops,
            c.mean_hops
        );
    }
}

#[test]
fn availability_is_high_in_dense_static_network() {
    let mut exp = experiment(AlgorithmKind::Lcc);
    exp.scenario.mobility = MobilityKind::Stationary;
    let stats = exp.run(&Flooding, 3).unwrap();
    // Static and dense (Tx 250 m on 670 m field): essentially every
    // pair is connected, so availability ≈ 1 and routes never break.
    assert!(
        stats.availability > 0.95,
        "availability {}",
        stats.availability
    );
    assert!(stats.route_lifetimes_s.is_empty());
    assert_eq!(stats.failed_discoveries, 0);
}

#[test]
fn routing_stats_are_deterministic_and_serializable() {
    let a = experiment(AlgorithmKind::Mobic)
        .run(&ClusterRouting, 8)
        .unwrap();
    let b = experiment(AlgorithmKind::Mobic)
        .run(&ClusterRouting, 8)
        .unwrap();
    assert_eq!(a, b);
    let json = serde_json::to_string(&a).unwrap();
    assert!(json.contains("\"protocol\":\"cluster\""));
}
