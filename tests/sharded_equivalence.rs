//! The sharded parallel engine must be invisible: for every
//! `(cfg, seed)`, `engine: sharded` yields byte-identical serialized
//! `RunResult`s *and* byte-identical JSONL trace streams vs the
//! sequential engine — across mobility models, algorithms, loss
//! models, the MAC collision path, fault plans, and every shard
//! count (including the degenerate 1-shard case and the host's core
//! count).

use mobic::core::AlgorithmKind;
use mobic::scenario::{
    run_scenario, run_scenario_traced, Engine, FaultPlan, LossKind, MobilityKind, ScenarioConfig,
};
use mobic::trace::JsonlSink;

/// Every mobility model the runner supports.
fn all_mobility_kinds() -> [MobilityKind; 8] {
    [
        MobilityKind::RandomWaypoint,
        MobilityKind::RandomWalk { epoch_s: 10.0 },
        MobilityKind::GaussMarkov { alpha: 0.8 },
        MobilityKind::Rpgm {
            groups: 4,
            member_radius_m: 40.0,
        },
        MobilityKind::Highway {
            lanes: 4,
            bidirectional: true,
        },
        MobilityKind::ConferenceHall { booths: 5 },
        MobilityKind::Manhattan {
            block_m: 100.0,
            p_turn: 0.5,
        },
        MobilityKind::Stationary,
    ]
}

/// A shortened `paper_table1` so the cross products stay fast.
fn paper_short() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::paper_table1();
    cfg.sim_time_s = 120.0;
    cfg
}

/// Serialized result under the given engine. JSON bytes catch
/// everything serde sees — any float, count, or map divergence.
fn result_bytes(cfg: &ScenarioConfig, seed: u64, engine: Engine, shards: u32) -> String {
    let mut c = *cfg;
    c.engine = engine;
    c.shards = shards;
    serde_json::to_string(&run_scenario(&c, seed).unwrap()).unwrap()
}

/// Full JSONL trace under the given engine.
fn trace_bytes(cfg: &ScenarioConfig, seed: u64, engine: Engine, shards: u32) -> Vec<u8> {
    let mut c = *cfg;
    c.engine = engine;
    c.shards = shards;
    let mut sink = JsonlSink::new(Vec::new());
    run_scenario_traced(&c, seed, &mut sink).unwrap();
    sink.finish().unwrap()
}

#[test]
fn sharded_is_byte_identical_across_mobility_and_seeds() {
    for mobility in all_mobility_kinds() {
        for seed in 0..3 {
            let mut cfg = paper_short();
            cfg.mobility = mobility;
            assert_eq!(
                result_bytes(&cfg, seed, Engine::Sequential, 0),
                result_bytes(&cfg, seed, Engine::Sharded, 0),
                "{mobility:?} seed {seed}"
            );
        }
    }
}

#[test]
fn sharded_is_byte_identical_across_algorithms() {
    // Each algorithm family stresses a different slice of the event
    // loop (table-pure elections vs role/contention state) — all of
    // them must be engine-independent.
    for alg in AlgorithmKind::ALL {
        let mut cfg = paper_short();
        cfg.algorithm = alg;
        assert_eq!(
            result_bytes(&cfg, 11, Engine::Sequential, 0),
            result_bytes(&cfg, 11, Engine::Sharded, 0),
            "{alg}"
        );
    }
}

#[test]
fn sharded_matches_with_stateful_loss_and_collisions() {
    // Stateful loss models consume RNG per queried link and the MAC
    // window defers receptions across events: any reordering of
    // same-instant events between engines would desync both.
    for loss in [LossKind::Bernoulli { p: 0.2 }, LossKind::BurstyPreset] {
        let mut cfg = paper_short();
        cfg.loss = loss;
        cfg.packet_time_s = 0.01;
        assert_eq!(
            result_bytes(&cfg, 7, Engine::Sequential, 0),
            result_bytes(&cfg, 7, Engine::Sharded, 0),
            "{loss:?}"
        );
    }
}

#[test]
fn sharded_matches_with_fault_plan_and_adaptive_pacing() {
    // Fault injections are global events interleaved with hellos at
    // seeded fire times, and adaptive pacing makes hello re-arm
    // latencies non-uniform — together the hardest case for any
    // tie-break scheme that is not exactly the sequential one.
    let mut cfg = paper_short();
    cfg.faults = FaultPlan {
        crashes: 3,
        recoveries: 2,
        late_joins: 2,
        deaf_spells: 1,
        mute_spells: 1,
        ..FaultPlan::default()
    };
    cfg.adaptive_bi_min_s = 0.5;
    cfg.packet_time_s = 0.005;
    for seed in [1, 19] {
        assert_eq!(
            result_bytes(&cfg, seed, Engine::Sequential, 0),
            result_bytes(&cfg, seed, Engine::Sharded, 0),
            "seed {seed}"
        );
    }
}

#[test]
fn sharded_trace_streams_are_byte_identical() {
    // The trace sees every hello, reception, loss drop, election, and
    // index refresh in emission order — the strictest observable of
    // event ordering the runner has.
    for mobility in [MobilityKind::RandomWaypoint, MobilityKind::Stationary] {
        let mut cfg = paper_short();
        cfg.mobility = mobility;
        cfg.loss = LossKind::Bernoulli { p: 0.1 };
        let seq = trace_bytes(&cfg, 13, Engine::Sequential, 0);
        let sh = trace_bytes(&cfg, 13, Engine::Sharded, 0);
        assert!(!seq.is_empty());
        assert_eq!(seq, sh, "{mobility:?}");
    }
}

#[test]
fn shard_count_sweep_all_agree() {
    // 1 shard (degenerate: sharded bookkeeping, sequential layout),
    // 2, 4, and the host's core count — placement must be invisible.
    let ncpu = std::thread::available_parallelism().map_or(2, |c| c.get() as u32);
    let cfg = paper_short();
    let want = result_bytes(&cfg, 23, Engine::Sequential, 0);
    for shards in [1, 2, 4, ncpu] {
        assert_eq!(
            want,
            result_bytes(&cfg, 23, Engine::Sharded, shards),
            "shards={shards}"
        );
    }
}

#[test]
fn smoke_two_shards_byte_identical() {
    // The CI smoke: one small cell, 2 shards, results and traces.
    let mut cfg = paper_short();
    cfg.n_nodes = 16;
    cfg.sim_time_s = 60.0;
    assert_eq!(
        result_bytes(&cfg, 3, Engine::Sequential, 0),
        result_bytes(&cfg, 3, Engine::Sharded, 2),
    );
    assert_eq!(
        trace_bytes(&cfg, 3, Engine::Sequential, 0),
        trace_bytes(&cfg, 3, Engine::Sharded, 2),
    );
}
