//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use mobic::core::centralized::{lowest_weight_clustering, Adjacency};
use mobic::core::invariants::check_theorem1;
use mobic::core::metric::aggregate_mobility;
use mobic::core::Weight;
use mobic::geom::{GridIndex, Rect, Vec2};
use mobic::mobility::{Mobility, RandomWaypoint, RandomWaypointParams};
use mobic::net::NodeId;
use mobic::radio::{FreeSpace, Propagation, Radio, TwoRayGround};
use mobic::sim::{rng::SeedSplitter, SimTime};
use proptest::prelude::*;

proptest! {
    #[test]
    fn centralized_clustering_always_satisfies_theorem1(
        n in 2usize..40,
        edge_seed in any::<u64>(),
        weight_seed in any::<u64>(),
        density in 1u64..6,
    ) {
        let mut x = edge_seed | 1;
        let mut adj = Adjacency::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 33) % 6 < density {
                    adj.connect(i, j);
                }
            }
        }
        let mut w = weight_seed | 1;
        let ids: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
        let weights: Vec<Weight> = ids.iter().map(|&id| {
            w = w.wrapping_mul(6364136223846793005).wrapping_add(1);
            Weight::new(((w >> 40) % 1000) as f64 / 100.0, id)
        }).collect();
        let roles = lowest_weight_clustering(&weights, &adj);
        let violations = check_theorem1(&roles, &ids, &adj);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn grid_index_matches_bruteforce(
        pts in prop::collection::vec((0.0..500.0f64, 0.0..500.0f64), 0..60),
        qx in 0.0..500.0f64,
        qy in 0.0..500.0f64,
        radius in 0.0..300.0f64,
        cell in 1.0..200.0f64,
    ) {
        let positions: Vec<Vec2> = pts.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let idx = GridIndex::build(Rect::square(500.0), cell, &positions);
        let q = Vec2::new(qx, qy);
        let mut fast = idx.query_within(q, radius);
        fast.sort_unstable();
        let slow: Vec<usize> = positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(q) <= radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn grid_index_exact_on_cell_and_field_boundaries(
        // Points snapped onto multiples of the cell size — including
        // the field edges and corners — exercise the bucket-boundary
        // arithmetic (which cell owns x == k·cell?) where off-by-one
        // errors in `cell_coords` would hide at generic coordinates.
        cols in prop::collection::vec((0u32..=10, 0u32..=10), 1..50),
        qcx in 0u32..=10,
        qcy in 0u32..=10,
        radius_cells in 0u32..=4,
        cell in 10.0..100.0f64,
    ) {
        let field = Rect::square(10.0 * cell);
        let positions: Vec<Vec2> = cols
            .iter()
            .map(|&(cx, cy)| Vec2::new(f64::from(cx) * cell, f64::from(cy) * cell))
            .collect();
        let idx = GridIndex::build(field, cell, &positions);
        let q = Vec2::new(f64::from(qcx) * cell, f64::from(qcy) * cell);
        // Snapped geometry makes every inter-point distance an exact
        // multiple structure: the boundary case `distance == radius`
        // occurs constantly instead of almost never.
        let radius = f64::from(radius_cells) * cell;
        let mut fast = idx.query_within(q, radius);
        fast.sort_unstable();
        let slow: Vec<usize> = positions
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance(q) <= radius)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn grid_index_update_all_preserves_query_equivalence(
        pts in prop::collection::vec((0.0..400.0f64, 0.0..400.0f64), 1..40),
        moved in prop::collection::vec((-50.0..450.0f64, -50.0..450.0f64), 1..40),
        cell in 5.0..150.0f64,
        radius in 0.0..250.0f64,
    ) {
        // Incremental maintenance (the runner's fast path) must agree
        // with a fresh build, including points moved out of the field.
        let n = pts.len().min(moved.len());
        let before: Vec<Vec2> = pts[..n].iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let after: Vec<Vec2> = moved[..n].iter().map(|&(x, y)| Vec2::new(x, y)).collect();
        let mut idx = GridIndex::build(Rect::square(400.0), cell, &before);
        idx.update_all(&after);
        let rebuilt = GridIndex::build(Rect::square(400.0), cell, &after);
        for (i, q) in after.iter().enumerate() {
            let mut a = idx.query_within(*q, radius);
            let mut b = rebuilt.query_within(*q, radius);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "query around moved point {}", i);
        }
    }

    #[test]
    fn random_waypoint_never_escapes_field(
        seed in any::<u64>(),
        w in 10.0..800.0f64,
        h in 10.0..800.0f64,
        max_speed in 0.1..40.0f64,
        pause in 0.0..60.0f64,
        probe in 0u64..900,
    ) {
        let params = RandomWaypointParams {
            field: Rect::new(w, h),
            min_speed_mps: 0.0,
            max_speed_mps: max_speed,
            pause: SimTime::from_secs_f64(pause),
        };
        let mut m = RandomWaypoint::new(params, SeedSplitter::new(seed).stream("p", 0));
        let pos = m.position_at(SimTime::from_secs(probe));
        prop_assert!(params.field.contains(pos), "escaped: {pos}");
    }

    #[test]
    fn rect_reflect_always_lands_inside(
        w in 0.1..1000.0f64,
        h in 0.1..1000.0f64,
        px in -5000.0..5000.0f64,
        py in -5000.0..5000.0f64,
    ) {
        let field = Rect::new(w, h);
        let (p, _, _) = field.reflect(Vec2::new(px, py));
        prop_assert!(
            p.x >= -1e-9 && p.x <= w + 1e-9 && p.y >= -1e-9 && p.y <= h + 1e-9,
            "reflected point {p} outside {w}x{h}"
        );
    }

    #[test]
    fn weights_are_totally_ordered(
        primaries in prop::collection::vec(-1e6..1e6f64, 2..50),
    ) {
        let weights: Vec<Weight> = primaries
            .iter()
            .enumerate()
            .map(|(i, &p)| Weight::new(p, NodeId::new(i as u32)))
            .collect();
        // Distinct ids ⇒ no two weights compare equal, and sorting is
        // a strict total order (antisymmetric + transitive via Ord).
        for (i, a) in weights.iter().enumerate() {
            for (j, b) in weights.iter().enumerate() {
                if i != j {
                    prop_assert_ne!(a.cmp(b), std::cmp::Ordering::Equal);
                    prop_assert_eq!(a.cmp(b), b.cmp(a).reverse());
                }
            }
        }
    }

    #[test]
    fn aggregate_mobility_is_nonnegative_and_bounded(
        samples in prop::collection::vec(-60.0..60.0f64, 0..64),
    ) {
        let m = aggregate_mobility(samples.iter().copied());
        prop_assert!(m >= 0.0);
        let max_sq = samples.iter().map(|s| s * s).fold(0.0f64, f64::max);
        prop_assert!(m <= max_sq + 1e-12, "mean of squares exceeds max square");
    }

    #[test]
    fn radio_range_solver_inverts_path_loss(
        target in 1.0..500.0f64,
    ) {
        let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), target);
        let solved = radio.nominal_range_m();
        prop_assert!((solved - target).abs() <= target * 1e-3,
            "target {target}, solved {solved}");
    }

    #[test]
    fn propagation_models_are_monotone(
        d1 in 0.1..1000.0f64,
        delta in 0.0..1000.0f64,
    ) {
        let d2 = d1 + delta;
        let fs = FreeSpace::at_frequency(914.0e6);
        let tr = TwoRayGround::ns2_default();
        prop_assert!(fs.mean_path_loss(d2) >= fs.mean_path_loss(d1));
        prop_assert!(tr.mean_path_loss(d2) >= tr.mean_path_loss(d1));
    }

    #[test]
    fn simtime_roundtrip_and_ordering(
        a in 0.0..1_000_000.0f64,
        b in 0.0..1_000_000.0f64,
    ) {
        let ta = SimTime::from_secs_f64(a);
        let tb = SimTime::from_secs_f64(b);
        prop_assert!((ta.as_secs_f64() - a).abs() < 1e-6);
        if a + 1e-5 < b {
            prop_assert!(ta < tb);
        }
    }
}
