//! Broadcast delivery: who receives a hello, and at what power.

use mobic_geom::{GridIndex, Vec2};
use mobic_radio::{Dbm, Propagation, Radio};
use mobic_sim::SimTime;

use crate::{loss::LossModel, scratch::KernelScratch, NodeId};

/// One successful reception of a broadcast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// The receiving node.
    pub receiver: NodeId,
    /// Measured received power at the receiver (`RxPr`).
    pub rx_power: Dbm,
}

/// Computes the receiver set of each hello broadcast.
///
/// Given current node positions, a [`Radio`] (budget + propagation)
/// and a [`LossModel`], `broadcast` returns every node that receives
/// the packet above the MAC threshold, together with the power it
/// measured — the quantity the MOBIC metric is built from.
///
/// Node positions are indexed by [`NodeId::index`], i.e. ids must be
/// dense `0..n`.
///
/// # Examples
///
/// ```
/// use mobic_geom::Vec2;
/// use mobic_net::{loss::NoLoss, DeliveryEngine, NodeId};
/// use mobic_radio::{FreeSpace, Radio};
/// use mobic_sim::SimTime;
///
/// let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
/// let mut engine = DeliveryEngine::new(radio, NoLoss);
/// let positions = vec![
///     Vec2::new(0.0, 0.0),   // n0 (transmitter)
///     Vec2::new(50.0, 0.0),  // n1: in range
///     Vec2::new(150.0, 0.0), // n2: out of range
/// ];
/// let rx = engine.broadcast(NodeId::new(0), &positions, SimTime::ZERO);
/// assert_eq!(rx.len(), 1);
/// assert_eq!(rx[0].receiver, NodeId::new(1));
/// ```
#[derive(Debug)]
pub struct DeliveryEngine<P, L> {
    radio: Radio<P>,
    loss: L,
    kernel: KernelScratch,
    force_scalar: bool,
}

impl<P: Propagation, L: LossModel> DeliveryEngine<P, L> {
    /// Creates an engine from a radio and a loss model.
    #[must_use]
    pub fn new(radio: Radio<P>, loss: L) -> Self {
        DeliveryEngine {
            radio,
            loss,
            kernel: KernelScratch::default(),
            force_scalar: false,
        }
    }

    /// The radio.
    #[must_use]
    pub fn radio(&self) -> &Radio<P> {
        &self.radio
    }

    /// Mutable access to the radio, for checkpoint capture/restore of
    /// stochastic propagation state (see
    /// [`Propagation::save_state`](mobic_radio::Propagation::save_state)).
    /// Propagation parameters themselves are rebuild-from-config; only
    /// the live RNG position flows through here.
    pub fn radio_mut(&mut self) -> &mut Radio<P> {
        &mut self.radio
    }

    /// The loss model.
    #[must_use]
    pub fn loss(&self) -> &L {
        &self.loss
    }

    /// Mutable access to the loss model, for checkpoint
    /// capture/restore of its live state (see
    /// [`LossModel::save_state`]).
    pub fn loss_mut(&mut self) -> &mut L {
        &mut self.loss
    }

    /// Forces the scalar per-candidate delivery path even when the
    /// propagation model would permit the vectorized kernel.
    ///
    /// The two paths are byte-identical by contract (same receiver
    /// sets, same powers, same loss-stream consumption) — this switch
    /// exists so equivalence tests and benchmarks can pin one side.
    pub fn set_force_scalar(&mut self, force_scalar: bool) {
        self.force_scalar = force_scalar;
    }

    /// Whether broadcasts will take the vectorized kernel: requires a
    /// deterministic propagation model (stochastic shadowing draws
    /// per-packet RNG inside `path_loss`, which only the scalar path
    /// consumes in the documented order) and no
    /// [`set_force_scalar`](Self::set_force_scalar) override.
    #[must_use]
    pub fn uses_kernel(&self) -> bool {
        !self.force_scalar && self.radio.propagation().is_deterministic()
    }

    /// The one true delivery decision, shared by every broadcast
    /// variant: skip the transmitter, ask the radio whether `rx`
    /// hears anything, then ask the loss model whether the packet
    /// survives. Exactly one loss-model query per in-range candidate,
    /// in call order — stateful loss models depend on this.
    // lint:hot-path — one call per (tx, candidate) pair per hello; the
    // zero-alloc steady-state guarantee (PR 3) starts here.
    #[inline]
    fn consider(
        &mut self,
        tx: NodeId,
        tx_pos: Vec2,
        rx: NodeId,
        rx_pos: Vec2,
        at: SimTime,
        out: &mut Vec<Delivery>,
        lost: &mut Vec<NodeId>,
    ) {
        if rx == tx {
            return;
        }
        if let Some(power) = self.radio.receive(tx_pos.distance(rx_pos)) {
            if self.loss.delivered(tx, rx, at) {
                out.push(Delivery {
                    receiver: rx,
                    rx_power: power,
                });
            } else {
                lost.push(rx);
            }
        }
    }
    // lint:end-hot-path

    /// The vectorized kernel over a dense position table: fills the
    /// distance lanes in node order, runs the batched
    /// path-loss/threshold pass, compacts the in-range candidates
    /// (skipping the transmitter, like [`consider`](Self::consider)
    /// does), then hands off to [`kernel_commit`](Self::kernel_commit).
    // lint:hot-path — vectorized delivery kernel (dense variant); lane
    // fills reuse grown buffers, steady state allocates nothing.
    fn kernel_broadcast(
        &mut self,
        tx: NodeId,
        tx_pos: Vec2,
        positions: &[Vec2],
        at: SimTime,
        out: &mut Vec<Delivery>,
        lost: &mut Vec<NodeId>,
    ) {
        let DeliveryEngine { radio, kernel, .. } = self;
        kernel.dist.clear();
        kernel.dist.reserve(positions.len());
        for &pos in positions {
            kernel.dist.push(tx_pos.distance(pos));
        }
        radio.receive_batch(&kernel.dist, &mut kernel.power, &mut kernel.mask);
        kernel.in_range.clear();
        kernel.in_power.clear();
        for i in 0..positions.len() {
            let hit = kernel.mask[i / 64] >> (i % 64) & 1 == 1;
            if hit && i != tx.index() {
                kernel.in_range.push(NodeId::new(i as u32));
                kernel.in_power.push(kernel.power[i]);
            }
        }
        self.kernel_commit(tx, at, out, lost);
    }

    /// The vectorized kernel over a pre-filtered candidate list — the
    /// `broadcast_among` counterpart of
    /// [`kernel_broadcast`](Self::kernel_broadcast). Lane `i` is
    /// `candidates[i]`, so candidate order (and with it the loss-stream
    /// order) is exactly the scalar scan's.
    fn kernel_among(
        &mut self,
        tx: NodeId,
        tx_pos: Vec2,
        candidates: &[(NodeId, Vec2)],
        at: SimTime,
        out: &mut Vec<Delivery>,
        lost: &mut Vec<NodeId>,
    ) {
        let DeliveryEngine { radio, kernel, .. } = self;
        kernel.dist.clear();
        kernel.dist.reserve(candidates.len());
        for &(_, pos) in candidates {
            kernel.dist.push(tx_pos.distance(pos));
        }
        radio.receive_batch(&kernel.dist, &mut kernel.power, &mut kernel.mask);
        kernel.in_range.clear();
        kernel.in_power.clear();
        for (i, &(rx, _)) in candidates.iter().enumerate() {
            let hit = kernel.mask[i / 64] >> (i % 64) & 1 == 1;
            if hit && rx != tx {
                kernel.in_range.push(rx);
                kernel.in_power.push(kernel.power[i]);
            }
        }
        self.kernel_commit(tx, at, out, lost);
    }

    /// Kernel tail shared by both variants: one batched loss query
    /// over the compacted in-range set (consuming the loss model's RNG
    /// in exactly the scalar order — see
    /// [`LossModel::delivered_batch`]), then commit deliveries and
    /// drops in candidate order.
    fn kernel_commit(
        &mut self,
        tx: NodeId,
        at: SimTime,
        out: &mut Vec<Delivery>,
        lost: &mut Vec<NodeId>,
    ) {
        let DeliveryEngine { loss, kernel, .. } = self;
        loss.delivered_batch(tx, &kernel.in_range, at, &mut kernel.verdicts);
        for ((&rx, &p), &ok) in kernel
            .in_range
            .iter()
            .zip(&kernel.in_power)
            .zip(&kernel.verdicts)
        {
            if ok {
                out.push(Delivery {
                    receiver: rx,
                    rx_power: Dbm::new(p),
                });
            } else {
                lost.push(rx);
            }
        }
    }
    // lint:end-hot-path

    /// Delivers a broadcast from `tx` to every node in `positions`
    /// that (a) measures power at or above the receive threshold and
    /// (b) survives the loss model. The transmitter itself never
    /// receives its own broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `tx` indexes outside `positions`.
    pub fn broadcast(&mut self, tx: NodeId, positions: &[Vec2], at: SimTime) -> Vec<Delivery> {
        let mut lost = Vec::new();
        self.broadcast_observed(tx, positions, at, &mut lost)
    }

    /// Like [`broadcast`](Self::broadcast), but also reports into
    /// `lost` every receiver that was inside radio range yet dropped
    /// the packet at the loss model — the signal the observability
    /// layer's `hello_lost` trace event carries. `lost` is cleared
    /// first; with a lossless model it stays empty and costs nothing.
    ///
    /// # Panics
    ///
    /// Panics if `tx` indexes outside `positions`.
    pub fn broadcast_observed(
        &mut self,
        tx: NodeId,
        positions: &[Vec2],
        at: SimTime,
        lost: &mut Vec<NodeId>,
    ) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.broadcast_into(tx, positions, at, &mut out, lost);
        out
    }

    /// Allocation-free [`broadcast`](Self::broadcast): writes
    /// deliveries into `out` and loss-model drops into `lost`, both
    /// caller-owned scratch buffers that are cleared first (stale
    /// content never leaks into the result). Once the buffers have
    /// grown to the network's high-water mark, repeated calls allocate
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `tx` indexes outside `positions`.
    // lint:hot-path — the brute-force steady-state delivery path.
    pub fn broadcast_into(
        &mut self,
        tx: NodeId,
        positions: &[Vec2],
        at: SimTime,
        out: &mut Vec<Delivery>,
        lost: &mut Vec<NodeId>,
    ) {
        out.clear();
        lost.clear();
        let tx_pos = positions[tx.index()];
        if self.uses_kernel() {
            self.kernel_broadcast(tx, tx_pos, positions, at, out, lost);
        } else {
            for (i, &pos) in positions.iter().enumerate() {
                self.consider(tx, tx_pos, NodeId::new(i as u32), pos, at, out, lost);
            }
        }
    }
    // lint:end-hot-path

    /// Like [`broadcast`](Self::broadcast), but pre-filters candidate
    /// receivers through a spatial index. The filter radius is the
    /// radio's nominal range, so with a **deterministic** propagation
    /// model the result is identical to the brute-force path while
    /// touching only nearby nodes; with a shadowed model receivers
    /// beyond the nominal range would be missed, so this path asserts
    /// (in debug builds) that the propagation model declares itself
    /// deterministic via [`Propagation::is_deterministic`].
    pub fn broadcast_indexed(
        &mut self,
        tx: NodeId,
        index: &GridIndex,
        at: SimTime,
    ) -> Vec<Delivery> {
        debug_assert!(
            self.radio.propagation().is_deterministic(),
            "broadcast_indexed requires a deterministic propagation model: \
             stochastic models can receive beyond the nominal range"
        );
        let tx_pos = index.position(tx.index());
        let range = self.radio.nominal_range_m();
        let mut candidates = index.query_within(tx_pos, range);
        // Id order matches the brute-force scan so stateful loss models
        // see the exact same query sequence.
        candidates.sort_unstable();
        let mut out = Vec::new();
        let mut lost = Vec::new();
        for i in candidates {
            self.consider(
                tx,
                tx_pos,
                NodeId::new(i as u32),
                index.position(i),
                at,
                &mut out,
                &mut lost,
            );
        }
        out
    }

    /// Delivers a broadcast from `tx` (located at `tx_pos`) to a
    /// pre-filtered candidate set with exact per-candidate positions —
    /// the workhorse of the scenario runner's spatial-index fast path,
    /// where candidate positions are evaluated lazily from trajectories
    /// instead of being stored in the index.
    ///
    /// Correctness contract (checked in debug builds):
    ///
    /// * the propagation model is deterministic
    ///   ([`Propagation::is_deterministic`]), so the true receiver set
    ///   is the nominal-range disk and a conservative candidate set can
    ///   never miss a receiver;
    /// * `candidates` are sorted by id in strictly ascending order, so
    ///   stateful loss models see queries in the same order as the
    ///   brute-force [`broadcast`](Self::broadcast) scan.
    ///
    /// The transmitter is skipped if present in `candidates`.
    pub fn broadcast_among(
        &mut self,
        tx: NodeId,
        tx_pos: Vec2,
        candidates: &[(NodeId, Vec2)],
        at: SimTime,
    ) -> Vec<Delivery> {
        let mut lost = Vec::new();
        self.broadcast_among_observed(tx, tx_pos, candidates, at, &mut lost)
    }

    /// Like [`broadcast_among`](Self::broadcast_among), but also
    /// reports loss-model drops into `lost` (cleared first) — see
    /// [`broadcast_observed`](Self::broadcast_observed). Same
    /// correctness contract and debug assertions as
    /// [`broadcast_among`](Self::broadcast_among).
    pub fn broadcast_among_observed(
        &mut self,
        tx: NodeId,
        tx_pos: Vec2,
        candidates: &[(NodeId, Vec2)],
        at: SimTime,
        lost: &mut Vec<NodeId>,
    ) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.broadcast_among_into(tx, tx_pos, candidates, at, &mut out, lost);
        out
    }

    /// Allocation-free [`broadcast_among`](Self::broadcast_among):
    /// writes deliveries into `out` and loss-model drops into `lost`,
    /// both cleared first. Same correctness contract and debug
    /// assertions as [`broadcast_among`](Self::broadcast_among); once
    /// the buffers have grown to the neighborhood's high-water mark,
    /// repeated calls allocate nothing.
    // lint:hot-path — the indexed steady-state delivery path.
    pub fn broadcast_among_into(
        &mut self,
        tx: NodeId,
        tx_pos: Vec2,
        candidates: &[(NodeId, Vec2)],
        at: SimTime,
        out: &mut Vec<Delivery>,
        lost: &mut Vec<NodeId>,
    ) {
        debug_assert!(
            self.radio.propagation().is_deterministic(),
            "broadcast_among requires a deterministic propagation model: \
             stochastic models can receive beyond the nominal range"
        );
        debug_assert!(
            candidates.windows(2).all(|w| w[0].0 < w[1].0),
            "candidates must be sorted by ascending id"
        );
        out.clear();
        lost.clear();
        if self.uses_kernel() {
            self.kernel_among(tx, tx_pos, candidates, at, out, lost);
        } else {
            for &(rx, pos) in candidates {
                self.consider(tx, tx_pos, rx, pos, at, out, lost);
            }
        }
    }
    // lint:end-hot-path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Bernoulli, NoLoss};
    use mobic_geom::Rect;
    use mobic_radio::FreeSpace;
    use mobic_sim::rng::SeedSplitter;

    fn engine() -> DeliveryEngine<FreeSpace, NoLoss> {
        DeliveryEngine::new(
            Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0),
            NoLoss,
        )
    }

    #[test]
    fn in_range_nodes_receive_with_distance_ordered_power() {
        let mut e = engine();
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(90.0, 0.0),
        ];
        let rx = e.broadcast(NodeId::new(0), &positions, SimTime::ZERO);
        assert_eq!(rx.len(), 2);
        let near = rx.iter().find(|d| d.receiver == NodeId::new(1)).unwrap();
        let far = rx.iter().find(|d| d.receiver == NodeId::new(2)).unwrap();
        assert!(near.rx_power > far.rx_power);
    }

    #[test]
    fn transmitter_does_not_hear_itself() {
        let mut e = engine();
        let positions = vec![Vec2::ZERO, Vec2::ZERO];
        let rx = e.broadcast(NodeId::new(0), &positions, SimTime::ZERO);
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].receiver, NodeId::new(1));
    }

    #[test]
    fn out_of_range_receives_nothing() {
        let mut e = engine();
        let positions = vec![Vec2::ZERO, Vec2::new(500.0, 0.0)];
        assert!(e
            .broadcast(NodeId::new(0), &positions, SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn symmetric_links_under_identical_radios() {
        let mut e = engine();
        let positions = vec![Vec2::ZERO, Vec2::new(60.0, 40.0)];
        let a = e.broadcast(NodeId::new(0), &positions, SimTime::ZERO);
        let b = e.broadcast(NodeId::new(1), &positions, SimTime::ZERO);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].rx_power, b[0].rx_power);
    }

    #[test]
    fn loss_model_filters_deliveries() {
        let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
        let loss = Bernoulli::new(1.0, SeedSplitter::new(1).stream("l", 0));
        let mut e = DeliveryEngine::new(radio, loss);
        let positions = vec![Vec2::ZERO, Vec2::new(10.0, 0.0)];
        assert!(e
            .broadcast(NodeId::new(0), &positions, SimTime::ZERO)
            .is_empty());
    }

    #[test]
    fn indexed_matches_bruteforce_for_deterministic_model() {
        let positions: Vec<Vec2> = (0..40)
            .map(|i| {
                let t = i as f64;
                Vec2::new((t * 137.0) % 600.0, (t * 71.0) % 600.0)
            })
            .collect();
        let index = GridIndex::build(Rect::square(600.0), 100.0, &positions);
        let mut e = engine();
        for tx in 0..40u32 {
            let brute = e.broadcast(NodeId::new(tx), &positions, SimTime::ZERO);
            let mut fast = e.broadcast_indexed(NodeId::new(tx), &index, SimTime::ZERO);
            fast.sort_by_key(|d| d.receiver);
            let mut brute_sorted = brute.clone();
            brute_sorted.sort_by_key(|d| d.receiver);
            assert_eq!(fast, brute_sorted, "tx={tx}");
        }
    }

    #[test]
    fn among_matches_bruteforce_when_candidates_cover_receivers() {
        let positions: Vec<Vec2> = (0..40)
            .map(|i| {
                let t = i as f64;
                Vec2::new((t * 137.0) % 600.0, (t * 71.0) % 600.0)
            })
            .collect();
        let mut e = engine();
        for tx in 0..40u32 {
            let brute = e.broadcast(NodeId::new(tx), &positions, SimTime::ZERO);
            // A superset of the true receiver set (here: everyone, in
            // id order) must yield the identical delivery list.
            let candidates: Vec<(NodeId, Vec2)> = positions
                .iter()
                .enumerate()
                .map(|(i, &p)| (NodeId::new(i as u32), p))
                .collect();
            let among = e.broadcast_among(
                NodeId::new(tx),
                positions[tx as usize],
                &candidates,
                SimTime::ZERO,
            );
            assert_eq!(among, brute, "tx={tx}");
        }
    }

    #[test]
    fn among_respects_stateful_loss_order() {
        // Same loss stream consumed by both paths must produce the
        // same survivors when candidate order matches the brute scan.
        let positions = vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(20.0, 0.0)];
        let mk = || {
            let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
            let loss = Bernoulli::new(0.5, SeedSplitter::new(7).stream("l", 0));
            DeliveryEngine::new(radio, loss)
        };
        let mut brute_engine = mk();
        let mut among_engine = mk();
        let candidates: Vec<(NodeId, Vec2)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (NodeId::new(i as u32), p))
            .collect();
        for step in 0..20u64 {
            let at = SimTime::from_secs_f64(step as f64);
            let brute = brute_engine.broadcast(NodeId::new(0), &positions, at);
            let among = among_engine.broadcast_among(NodeId::new(0), positions[0], &candidates, at);
            assert_eq!(among, brute, "step={step}");
        }
    }

    #[test]
    fn observed_broadcast_reports_in_range_losses_only() {
        let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
        let loss = Bernoulli::new(1.0, SeedSplitter::new(1).stream("l", 0));
        let mut e = DeliveryEngine::new(radio, loss);
        let positions = vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(500.0, 0.0)];
        let mut lost = vec![NodeId::new(99)]; // stale content must be cleared
        let rx = e.broadcast_observed(NodeId::new(0), &positions, SimTime::ZERO, &mut lost);
        assert!(rx.is_empty());
        // n1 was in range and dropped; out-of-range n2 is not a "loss".
        assert_eq!(lost, vec![NodeId::new(1)]);
    }

    #[test]
    fn observed_among_matches_plain_among_deliveries() {
        let positions = vec![Vec2::ZERO, Vec2::new(10.0, 0.0), Vec2::new(20.0, 0.0)];
        let candidates: Vec<(NodeId, Vec2)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (NodeId::new(i as u32), p))
            .collect();
        let mk = || {
            let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
            let loss = Bernoulli::new(0.5, SeedSplitter::new(7).stream("l", 0));
            DeliveryEngine::new(radio, loss)
        };
        let (mut a, mut b) = (mk(), mk());
        let mut lost = Vec::new();
        for step in 0..20u64 {
            let at = SimTime::from_secs_f64(step as f64);
            let plain = a.broadcast_among(NodeId::new(0), positions[0], &candidates, at);
            let observed = b.broadcast_among_observed(
                NodeId::new(0),
                positions[0],
                &candidates,
                at,
                &mut lost,
            );
            assert_eq!(plain, observed, "step={step}");
            // Every in-range candidate either delivered or was lost.
            assert_eq!(observed.len() + lost.len(), 2, "step={step}");
        }
    }

    #[test]
    fn into_variants_clear_dirty_scratch_and_match_allocating_paths() {
        // Deterministic sweep: a deliberately filthy scratch pair must
        // never leak stale entries, across both _into variants.
        let positions = vec![
            Vec2::ZERO,
            Vec2::new(10.0, 0.0),
            Vec2::new(95.0, 0.0),
            Vec2::new(400.0, 0.0),
        ];
        let candidates: Vec<(NodeId, Vec2)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (NodeId::new(i as u32), p))
            .collect();
        let mk = || {
            let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
            let loss = Bernoulli::new(0.5, SeedSplitter::new(11).stream("l", 0));
            DeliveryEngine::new(radio, loss)
        };
        let (mut alloc_e, mut into_e, mut among_e) = (mk(), mk(), mk());
        let mut out = vec![
            Delivery {
                receiver: NodeId::new(77),
                rx_power: Dbm::new(0.0),
            };
            13
        ];
        let mut lost = vec![NodeId::new(88); 9];
        for step in 0..30u64 {
            let at = SimTime::from_secs_f64(step as f64);
            let mut expected_lost = vec![NodeId::new(55)];
            let expected =
                alloc_e.broadcast_observed(NodeId::new(0), &positions, at, &mut expected_lost);
            into_e.broadcast_into(NodeId::new(0), &positions, at, &mut out, &mut lost);
            assert_eq!(out, expected, "step={step}");
            assert_eq!(lost, expected_lost, "step={step}");
            // Leave the scratch dirty for the next iteration on purpose:
            // the next call must clear it.
            out.push(Delivery {
                receiver: NodeId::new(66),
                rx_power: Dbm::new(-1.0),
            });
            lost.push(NodeId::new(66));
            // The among variant consumes the same loss stream in the
            // same order, so it must agree delivery-for-delivery.
            among_e.broadcast_among_into(
                NodeId::new(0),
                positions[0],
                &candidates,
                at,
                &mut out,
                &mut lost,
            );
            assert_eq!(out, expected, "among step={step}");
            assert_eq!(lost, expected_lost, "among step={step}");
        }
    }

    proptest::proptest! {
        /// `broadcast_into` with an arbitrarily dirty, pre-populated
        /// scratch matches the allocating `broadcast_observed` exactly:
        /// same deliveries in the same order, same losses, and the same
        /// loss-model call sequence (checked by running a stateful
        /// Bernoulli stream through both paths).
        #[test]
        fn prop_broadcast_into_matches_allocating(
            xs in proptest::collection::vec(0.0f64..700.0, 2..24),
            ys in proptest::collection::vec(0.0f64..700.0, 2..24),
            stale_out in 0usize..8,
            stale_lost in 0usize..8,
            seed in 0u64..1000,
            tx in 0usize..24,
        ) {
            let n = xs.len().min(ys.len());
            let tx = tx % n;
            let positions: Vec<Vec2> = xs
                .iter()
                .zip(&ys)
                .take(n)
                .map(|(&x, &y)| Vec2::new(x, y))
                .collect();
            let mk = || {
                let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
                let loss = Bernoulli::new(0.5, SeedSplitter::new(seed).stream("l", 0));
                DeliveryEngine::new(radio, loss)
            };
            let (mut reference, mut scratch_e) = (mk(), mk());
            let mut out = vec![
                Delivery { receiver: NodeId::new(200), rx_power: Dbm::new(3.0) };
                stale_out
            ];
            let mut lost = vec![NodeId::new(201); stale_lost];
            for step in 0..4u64 {
                let at = SimTime::from_secs_f64(step as f64);
                let mut expected_lost = Vec::new();
                let expected = reference.broadcast_observed(
                    NodeId::new(tx as u32),
                    &positions,
                    at,
                    &mut expected_lost,
                );
                scratch_e.broadcast_into(
                    NodeId::new(tx as u32),
                    &positions,
                    at,
                    &mut out,
                    &mut lost,
                );
                proptest::prop_assert_eq!(&out, &expected, "step={}", step);
                proptest::prop_assert_eq!(&lost, &expected_lost, "step={}", step);
            }
        }
    }

    #[test]
    fn measured_power_matches_radio_prediction() {
        let mut e = engine();
        let positions = vec![Vec2::ZERO, Vec2::new(30.0, 40.0)]; // d = 50
        let rx = e.broadcast(NodeId::new(0), &positions, SimTime::ZERO);
        assert_eq!(rx[0].rx_power, e.radio().rx_power(50.0));
    }

    #[test]
    fn kernel_selects_exactly_the_scalar_candidate_set_at_range_boundaries() {
        // Positions packed around the nominal 100 m range boundary
        // (just inside, exactly at, just outside) plus co-located and
        // far nodes: the kernel's bitmask pass must select exactly the
        // candidates the scalar path would, with bit-identical powers.
        let positions: Vec<Vec2> = vec![
            Vec2::ZERO, // transmitter
            Vec2::new(99.999_999, 0.0),
            Vec2::new(100.0, 0.0),
            Vec2::new(100.000_001, 0.0),
            Vec2::new(0.0, 100.0),
            Vec2::ZERO,            // co-located with tx
            Vec2::new(60.0, 80.0), // d = 100 via both axes
            Vec2::new(400.0, 0.0),
            Vec2::new(0.0, 99.999_999),
        ];
        let mk = |force_scalar: bool| {
            let mut e = engine();
            e.set_force_scalar(force_scalar);
            e
        };
        let (mut scalar, mut kernel) = (mk(true), mk(false));
        assert!(!scalar.uses_kernel());
        assert!(kernel.uses_kernel());
        for tx in 0..positions.len() as u32 {
            let expected = scalar.broadcast(NodeId::new(tx), &positions, SimTime::ZERO);
            let got = kernel.broadcast(NodeId::new(tx), &positions, SimTime::ZERO);
            assert_eq!(got, expected, "tx={tx}");
        }
    }

    #[test]
    fn kernel_among_matches_scalar_with_stateful_loss() {
        // Same loss stream, kernel vs forced-scalar, across repeated
        // broadcasts on both _into variants: deliveries, drops, and
        // RNG consumption must stay in lockstep.
        let positions: Vec<Vec2> = (0..24)
            .map(|i| {
                let t = i as f64;
                Vec2::new((t * 137.0) % 300.0, (t * 71.0) % 300.0)
            })
            .collect();
        let candidates: Vec<(NodeId, Vec2)> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (NodeId::new(i as u32), p))
            .collect();
        let mk = |force_scalar: bool| {
            let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
            let loss = Bernoulli::new(0.4, SeedSplitter::new(13).stream("l", 0));
            let mut e = DeliveryEngine::new(radio, loss);
            e.set_force_scalar(force_scalar);
            e
        };
        let (mut scalar, mut kernel) = (mk(true), mk(false));
        let (mut s_out, mut s_lost) = (Vec::new(), Vec::new());
        let (mut k_out, mut k_lost) = (Vec::new(), Vec::new());
        for step in 0..40u64 {
            let at = SimTime::from_secs_f64(step as f64);
            let tx = NodeId::new((step % 24) as u32);
            if step % 2 == 0 {
                scalar.broadcast_into(tx, &positions, at, &mut s_out, &mut s_lost);
                kernel.broadcast_into(tx, &positions, at, &mut k_out, &mut k_lost);
            } else {
                let tx_pos = positions[tx.index()];
                scalar.broadcast_among_into(tx, tx_pos, &candidates, at, &mut s_out, &mut s_lost);
                kernel.broadcast_among_into(tx, tx_pos, &candidates, at, &mut k_out, &mut k_lost);
            }
            assert_eq!(k_out, s_out, "step={step}");
            assert_eq!(k_lost, s_lost, "step={step}");
        }
    }

    proptest::proptest! {
        /// The vectorized kernel matches the forced-scalar path exactly
        /// — same deliveries in the same order, same losses, same loss
        /// stream — over arbitrary geometries and loss seeds.
        #[test]
        fn prop_kernel_matches_scalar(
            xs in proptest::collection::vec(0.0f64..700.0, 2..24),
            ys in proptest::collection::vec(0.0f64..700.0, 2..24),
            seed in 0u64..1000,
            p_loss in 0.0f64..1.0,
            tx in 0usize..24,
        ) {
            let n = xs.len().min(ys.len());
            let tx = tx % n;
            let positions: Vec<Vec2> = xs
                .iter()
                .zip(&ys)
                .take(n)
                .map(|(&x, &y)| Vec2::new(x, y))
                .collect();
            let mk = |force_scalar: bool| {
                let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
                let loss = Bernoulli::new(p_loss, SeedSplitter::new(seed).stream("l", 0));
                let mut e = DeliveryEngine::new(radio, loss);
                e.set_force_scalar(force_scalar);
                e
            };
            let (mut scalar, mut kernel) = (mk(true), mk(false));
            let (mut s_out, mut s_lost) = (Vec::new(), Vec::new());
            let (mut k_out, mut k_lost) = (Vec::new(), Vec::new());
            for step in 0..4u64 {
                let at = SimTime::from_secs_f64(step as f64);
                scalar.broadcast_into(NodeId::new(tx as u32), &positions, at, &mut s_out, &mut s_lost);
                kernel.broadcast_into(NodeId::new(tx as u32), &positions, at, &mut k_out, &mut k_lost);
                proptest::prop_assert_eq!(&k_out, &s_out, "step={}", step);
                proptest::prop_assert_eq!(&k_lost, &s_lost, "step={}", step);
            }
        }
    }
}
