//! Hello packets.

use serde::{Deserialize, Serialize};

use crate::NodeId;

/// A periodic "Hello" / "I'm Alive" broadcast.
///
/// Per the paper (§3.2 and §4.1), each hello carries the sender's
/// aggregate mobility value "stamped onto each hello broadcast packet"
/// — modeled here as a generic `payload` so the clustering layer can
/// define exactly what it advertises (MOBIC stamps the 8-byte `M`
/// value; Lowest-ID needs nothing beyond the sender id; the degree
/// baseline stamps the node degree).
///
/// The `seq` number lets receivers detect that two measurements really
/// came from *successive* transmissions — the paper's rule that "nodes
/// which do not participate in two successive transmissions … are
/// excluded from the calculation".
///
/// # Examples
///
/// ```
/// use mobic_net::{Hello, NodeId};
///
/// let h = Hello { sender: NodeId::new(4), seq: 17, payload: 0.25_f64 };
/// assert_eq!(h.sender, NodeId::new(4));
/// assert_eq!(h.wire_overhead_bytes(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hello<P> {
    /// The broadcasting node.
    pub sender: NodeId,
    /// Per-sender sequence number, incremented each broadcast.
    pub seq: u64,
    /// Application payload (the clustering advert).
    pub payload: P,
}

impl<P> Hello<P> {
    /// The extra bytes this hello adds on the wire beyond a plain
    /// neighbor-discovery beacon — the paper notes MOBIC costs exactly
    /// 8 bytes ("size of a double precision number").
    #[must_use]
    pub fn wire_overhead_bytes(&self) -> usize {
        std::mem::size_of::<P>()
    }

    /// Maps the payload, keeping addressing intact.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Hello<Q> {
        Hello {
            sender: self.sender,
            seq: self.seq,
            payload: f(self.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper_for_f64_payload() {
        let h = Hello {
            sender: NodeId::new(0),
            seq: 0,
            payload: 1.5_f64,
        };
        assert_eq!(h.wire_overhead_bytes(), 8);
    }

    #[test]
    fn zero_payload_hello_is_free() {
        let h = Hello {
            sender: NodeId::new(0),
            seq: 0,
            payload: (),
        };
        assert_eq!(h.wire_overhead_bytes(), 0);
    }

    #[test]
    fn map_preserves_addressing() {
        let h = Hello {
            sender: NodeId::new(9),
            seq: 3,
            payload: 2.0_f64,
        };
        let mapped = h.map(|p| p as f32);
        assert_eq!(mapped.sender, NodeId::new(9));
        assert_eq!(mapped.seq, 3);
        assert_eq!(mapped.payload, 2.0_f32);
    }
}
