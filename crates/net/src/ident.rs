//! Node identity.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A unique node identifier.
///
/// IDs are the tie-breaker of every clustering algorithm in this
/// workspace and the *primary* weight of Lowest-ID clustering, so
/// their total order matters: `NodeId` derives `Ord` on the underlying
/// integer.
///
/// # Examples
///
/// ```
/// use mobic_net::NodeId;
///
/// let a = NodeId::new(1);
/// let b = NodeId::new(2);
/// assert!(a < b);
/// assert_eq!(a.to_string(), "n1");
/// assert_eq!(a.index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id.
    #[must_use]
    pub const fn new(id: u32) -> Self {
        NodeId(id)
    }

    /// The raw integer id, usable as a dense vector index when ids
    /// are assigned `0..n`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw integer value.
    #[must_use]
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_equality() {
        assert!(NodeId::new(0) < NodeId::new(1));
        assert_eq!(NodeId::new(7), NodeId::from(7));
        assert_eq!(u32::from(NodeId::new(9)), 9);
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(NodeId::new(42).index(), 42);
        assert_eq!(NodeId::new(42).value(), 42);
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
    }

    #[test]
    fn usable_in_collections() {
        use std::collections::{BTreeSet, HashSet};
        let b: BTreeSet<NodeId> = [2, 1, 3].map(NodeId::new).into_iter().collect();
        assert_eq!(b.iter().next(), Some(&NodeId::new(1)));
        let h: HashSet<NodeId> = [1, 1, 2].map(NodeId::new).into_iter().collect();
        assert_eq!(h.len(), 2);
    }
}
