//! Neighbor tables with received-power history.

use std::collections::BTreeMap;

use mobic_radio::Dbm;
use mobic_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::{Hello, NodeId};

/// One timestamped received-power measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// When the hello was received.
    pub at: SimTime,
    /// Received power (`RxPr`).
    pub power: Dbm,
    /// The sender's sequence number of that hello.
    pub seq: u64,
}

/// Everything a node knows about one neighbor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborEntry<P> {
    /// Most recent measurement.
    pub last: PowerSample,
    /// The measurement before that, if any.
    pub prev: Option<PowerSample>,
    /// Payload of the most recent hello (the neighbor's advert).
    pub payload: P,
}

impl<P> NeighborEntry<P> {
    /// The last two measurements, **only if** they came from
    /// consecutive sequence numbers — the paper's "two successive
    /// transmissions" requirement. A lost hello in between makes the
    /// pair non-successive and the neighbor is excluded from the
    /// mobility-metric calculation until two fresh back-to-back hellos
    /// arrive.
    #[must_use]
    pub fn successive_pair(&self) -> Option<(PowerSample, PowerSample)> {
        let prev = self.prev?;
        (self.last.seq == prev.seq + 1).then_some((prev, self.last))
    }
}

/// What a [`NeighborTable::record_outcome`] call did to the table —
/// in particular whether it changed anything a clusterhead election
/// can observe. Elections read only entry *presence* and the attached
/// advert payload, never the power history, so a pure power refresh
/// with an unchanged advert is election-irrelevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOutcome {
    /// A brand-new neighbor appeared.
    New,
    /// An existing neighbor was refreshed.
    Updated {
        /// `true` if the hello's payload differs from the stored one.
        advert_changed: bool,
    },
    /// Out-of-order or duplicate hello; the table is untouched.
    Ignored,
}

impl RecordOutcome {
    /// `true` if the record changed state an election can observe
    /// (a new entry, or an updated advert payload).
    #[must_use]
    pub fn election_relevant(self) -> bool {
        matches!(
            self,
            RecordOutcome::New
                | RecordOutcome::Updated {
                    advert_changed: true
                }
        )
    }
}

/// A node's view of its 1-hop neighborhood.
///
/// Records each successfully received [`Hello`] together with its
/// measured received power, keeps the last two power samples per
/// neighbor, and expires entries that miss hellos for longer than the
/// timeout period (`TP` in Table 1).
///
/// Iteration order is by [`NodeId`] (a `BTreeMap`), which keeps every
/// downstream computation deterministic.
///
/// # Examples
///
/// ```
/// use mobic_net::{Hello, NeighborTable, NodeId};
/// use mobic_radio::Dbm;
/// use mobic_sim::SimTime;
///
/// let mut table: NeighborTable<f64> = NeighborTable::new(SimTime::from_secs(3));
/// let t0 = SimTime::from_secs(10);
/// table.record(t0, Dbm::new(-60.0), &Hello { sender: NodeId::new(2), seq: 5, payload: 0.1 });
/// table.record(t0 + SimTime::from_secs(2), Dbm::new(-58.0),
///              &Hello { sender: NodeId::new(2), seq: 6, payload: 0.2 });
/// let entry = table.get(NodeId::new(2)).unwrap();
/// let (old, new) = entry.successive_pair().unwrap();
/// assert!(new.power > old.power); // neighbor approaching
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeighborTable<P> {
    timeout: SimTime,
    entries: BTreeMap<NodeId, NeighborEntry<P>>,
}

impl<P> NeighborTable<P> {
    /// Creates an empty table with the given entry timeout (`TP`).
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    #[must_use]
    pub fn new(timeout: SimTime) -> Self {
        assert!(!timeout.is_zero(), "neighbor timeout must be positive");
        NeighborTable {
            timeout,
            entries: BTreeMap::new(),
        }
    }

    /// The configured timeout period.
    #[must_use]
    pub fn timeout(&self) -> SimTime {
        self.timeout
    }

    /// Records a successfully received hello with its measured power.
    /// Out-of-order or duplicate receptions (sequence number not
    /// greater than the last recorded one) are ignored.
    pub fn record(&mut self, at: SimTime, power: Dbm, hello: &Hello<P>)
    where
        P: Clone,
    {
        let sample = PowerSample {
            at,
            power,
            seq: hello.seq,
        };
        match self.entries.get_mut(&hello.sender) {
            Some(e) => {
                if hello.seq <= e.last.seq {
                    return;
                }
                e.prev = Some(e.last);
                e.last = sample;
                e.payload = hello.payload.clone();
            }
            None => {
                self.entries.insert(
                    hello.sender,
                    NeighborEntry {
                        last: sample,
                        prev: None,
                        payload: hello.payload.clone(),
                    },
                );
            }
        }
    }

    /// Like [`record`](Self::record), but reports what the call did —
    /// the signal incremental reclustering uses to decide whether a
    /// node's election inputs changed. Identical table mutations to
    /// `record` for every input.
    pub fn record_outcome(&mut self, at: SimTime, power: Dbm, hello: &Hello<P>) -> RecordOutcome
    where
        P: Clone + PartialEq,
    {
        let sample = PowerSample {
            at,
            power,
            seq: hello.seq,
        };
        match self.entries.get_mut(&hello.sender) {
            Some(e) => {
                if hello.seq <= e.last.seq {
                    return RecordOutcome::Ignored;
                }
                e.prev = Some(e.last);
                e.last = sample;
                let advert_changed = e.payload != hello.payload;
                if advert_changed {
                    e.payload = hello.payload.clone();
                }
                RecordOutcome::Updated { advert_changed }
            }
            None => {
                self.entries.insert(
                    hello.sender,
                    NeighborEntry {
                        last: sample,
                        prev: None,
                        payload: hello.payload.clone(),
                    },
                );
                RecordOutcome::New
            }
        }
    }

    /// Removes entries whose last hello is older than the timeout
    /// relative to `now`, returning the expired neighbor ids.
    pub fn expire(&mut self, now: SimTime) -> Vec<NodeId> {
        let timeout = self.timeout;
        let dead: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|(_, e)| now.saturating_sub(e.last.at) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            self.entries.remove(id);
        }
        dead
    }

    /// Allocation-free [`expire`](Self::expire): removes the same
    /// entries for the same `now` but returns only how many died,
    /// never building the id list. The hot loop uses this; `expire`
    /// remains for callers that need to know *who* vanished.
    pub fn expire_count(&mut self, now: SimTime) -> usize {
        let timeout = self.timeout;
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.saturating_sub(e.last.at) <= timeout);
        before - self.entries.len()
    }

    /// The entry for `id`, if present.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&NeighborEntry<P>> {
        self.entries.get(&id)
    }

    /// `true` if `id` is currently a (non-expired) neighbor.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Number of live neighbors — the node's *degree*, the weight of
    /// the max-connectivity baseline algorithm.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table is empty (an isolated node).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(id, entry)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NeighborEntry<P>)> {
        self.entries.iter().map(|(&id, e)| (id, e))
    }

    /// Removes a specific neighbor (used by tests and by explicit
    /// link-failure injection).
    pub fn remove(&mut self, id: NodeId) -> Option<NeighborEntry<P>> {
        self.entries.remove(&id)
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello(sender: u32, seq: u64, payload: f64) -> Hello<f64> {
        Hello {
            sender: NodeId::new(sender),
            seq,
            payload,
        }
    }

    fn table() -> NeighborTable<f64> {
        NeighborTable::new(SimTime::from_secs(3))
    }

    #[test]
    fn record_first_hello() {
        let mut t = table();
        t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(1, 0, 0.5));
        let e = t.get(NodeId::new(1)).unwrap();
        assert_eq!(e.last.power, Dbm::new(-70.0));
        assert_eq!(e.payload, 0.5);
        assert!(e.prev.is_none());
        assert!(e.successive_pair().is_none());
        assert_eq!(t.degree(), 1);
    }

    #[test]
    fn successive_pair_requires_consecutive_seq() {
        let mut t = table();
        t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(1, 0, 0.0));
        t.record(SimTime::from_secs(3), Dbm::new(-68.0), &hello(1, 1, 0.0));
        assert!(t.get(NodeId::new(1)).unwrap().successive_pair().is_some());
        // A gap (lost hello) breaks successiveness.
        t.record(SimTime::from_secs(7), Dbm::new(-66.0), &hello(1, 3, 0.0));
        assert!(t.get(NodeId::new(1)).unwrap().successive_pair().is_none());
        // Recovers after the next back-to-back pair.
        t.record(SimTime::from_secs(9), Dbm::new(-65.0), &hello(1, 4, 0.0));
        let (old, new) = t.get(NodeId::new(1)).unwrap().successive_pair().unwrap();
        assert_eq!(old.seq, 3);
        assert_eq!(new.seq, 4);
    }

    #[test]
    fn duplicate_and_stale_sequences_ignored() {
        let mut t = table();
        t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(1, 5, 1.0));
        t.record(SimTime::from_secs(2), Dbm::new(-60.0), &hello(1, 5, 2.0));
        t.record(SimTime::from_secs(3), Dbm::new(-50.0), &hello(1, 4, 3.0));
        let e = t.get(NodeId::new(1)).unwrap();
        assert_eq!(e.last.seq, 5);
        assert_eq!(e.last.power, Dbm::new(-70.0));
        assert_eq!(e.payload, 1.0);
    }

    #[test]
    fn payload_tracks_latest() {
        let mut t = table();
        t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(1, 0, 0.1));
        t.record(SimTime::from_secs(3), Dbm::new(-70.0), &hello(1, 1, 0.9));
        assert_eq!(t.get(NodeId::new(1)).unwrap().payload, 0.9);
    }

    #[test]
    fn expiry_after_timeout() {
        let mut t = table();
        t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(1, 0, 0.0));
        t.record(SimTime::from_secs(2), Dbm::new(-70.0), &hello(2, 0, 0.0));
        // At t=4.5: n1 last seen 3.5s ago > TP=3 → expires; n2 (2.5s) survives.
        let dead = t.expire(SimTime::from_secs_f64(4.5));
        assert_eq!(dead, vec![NodeId::new(1)]);
        assert!(!t.contains(NodeId::new(1)));
        assert!(t.contains(NodeId::new(2)));
    }

    #[test]
    fn expiry_boundary_is_exclusive() {
        let mut t = table();
        t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(1, 0, 0.0));
        // Exactly TP later: not expired (age must *exceed* TP).
        assert!(t.expire(SimTime::from_secs(4)).is_empty());
        assert!(t.contains(NodeId::new(1)));
        assert_eq!(
            t.expire(SimTime::from_micros(4_000_001)),
            vec![NodeId::new(1)]
        );
    }

    #[test]
    fn iteration_in_id_order() {
        let mut t = table();
        for id in [5, 1, 3] {
            t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(id, 0, 0.0));
        }
        let ids: Vec<u32> = t.iter().map(|(id, _)| id.value()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn remove_and_clear() {
        let mut t = table();
        t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(1, 0, 0.0));
        t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(2, 0, 0.0));
        assert!(t.remove(NodeId::new(1)).is_some());
        assert!(t.remove(NodeId::new(1)).is_none());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_timeout_panics() {
        let _: NeighborTable<()> = NeighborTable::new(SimTime::ZERO);
    }

    #[test]
    fn record_outcome_classifies_every_case_and_mutates_like_record() {
        let mut a = table();
        let mut b = table();
        let steps = [
            (1u64, 1, 0, 0.5), // new neighbor
            (2, 1, 1, 0.5),    // refresh, advert unchanged
            (3, 1, 2, 0.7),    // refresh, advert changed
            (4, 1, 2, 0.9),    // duplicate seq → ignored
            (5, 2, 0, 0.1),    // second neighbor
        ];
        let expected = [
            RecordOutcome::New,
            RecordOutcome::Updated {
                advert_changed: false,
            },
            RecordOutcome::Updated {
                advert_changed: true,
            },
            RecordOutcome::Ignored,
            RecordOutcome::New,
        ];
        for (&(t, id, seq, payload), &want) in steps.iter().zip(&expected) {
            let h = hello(id, seq, payload);
            let at = SimTime::from_secs(t);
            a.record(at, Dbm::new(-70.0), &h);
            let got = b.record_outcome(at, Dbm::new(-70.0), &h);
            assert_eq!(got, want, "t={t}");
            assert_eq!(
                got.election_relevant(),
                !matches!(
                    got,
                    RecordOutcome::Updated {
                        advert_changed: false
                    } | RecordOutcome::Ignored
                )
            );
        }
        // Both tables saw the identical mutations.
        for id in [1u32, 2] {
            assert_eq!(a.get(NodeId::new(id)), b.get(NodeId::new(id)), "id={id}");
        }
    }

    #[test]
    fn expire_count_matches_expire() {
        let mk = || {
            let mut t = table();
            t.record(SimTime::from_secs(1), Dbm::new(-70.0), &hello(1, 0, 0.0));
            t.record(SimTime::from_secs(2), Dbm::new(-70.0), &hello(2, 0, 0.0));
            t.record(SimTime::from_secs(4), Dbm::new(-70.0), &hello(3, 0, 0.0));
            t
        };
        for now_s in [3.0, 4.0, 4.5, 5.5, 100.0] {
            let now = SimTime::from_secs_f64(now_s);
            let (mut a, mut b) = (mk(), mk());
            let dead = a.expire(now);
            assert_eq!(b.expire_count(now), dead.len(), "now={now_s}");
            let left_a: Vec<u32> = a.iter().map(|(id, _)| id.value()).collect();
            let left_b: Vec<u32> = b.iter().map(|(id, _)| id.value()).collect();
            assert_eq!(left_a, left_b, "now={now_s}");
        }
    }
}
