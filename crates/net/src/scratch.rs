//! Reusable delivery scratch buffers.
//!
//! The scenario runner's hot path must not allocate: every broadcast
//! reuses the same buffers for the receiver set, the loss set, the
//! spatial-index candidate ids, and the candidate `(id, position)`
//! pairs. [`Scratch`] bundles those four buffers so the runner can
//! keep one per shard — workers never share a buffer, and the
//! sequential engine is simply the one-shard case.

use mobic_geom::Vec2;

use crate::{Delivery, NodeId};

/// Per-shard scratch space for broadcast delivery.
///
/// The `_into` delivery APIs ([`DeliveryEngine::broadcast_into`]
/// [`DeliveryEngine::broadcast_among_into`](crate::DeliveryEngine::broadcast_among_into))
/// own the clearing of `delivered` and `lost`; `ids` and `candidates`
/// are cleared by the caller per broadcast. Buffers are pre-sized
/// once at setup so steady-state use never allocates (a capacity
/// ceiling keeps huge populations from pre-committing gigabytes — see
/// [`Scratch::with_capacity`]).
///
/// [`DeliveryEngine::broadcast_into`]: crate::DeliveryEngine::broadcast_into
#[derive(Debug, Default)]
pub struct Scratch {
    /// Successful receptions of the current broadcast.
    pub delivered: Vec<Delivery>,
    /// Receivers in radio range that the loss model dropped.
    pub lost: Vec<NodeId>,
    /// Dense point ids returned by the spatial index query.
    pub ids: Vec<usize>,
    /// Candidate receivers as `(id, position)` pairs, in id order.
    pub candidates: Vec<(NodeId, Vec2)>,
}

impl Scratch {
    /// Creates scratch buffers each pre-sized for `cap` entries.
    ///
    /// Callers pick `cap` as the worst-case receiver count (every
    /// node in range). For very large populations, cap the value —
    /// the buffers grow amortized past it, which trades a handful of
    /// one-time reallocations for not pre-committing `O(n)` memory
    /// per shard at n = 1M.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Scratch {
            delivered: Vec::with_capacity(cap),
            lost: Vec::with_capacity(cap),
            ids: Vec::with_capacity(cap),
            candidates: Vec::with_capacity(cap),
        }
    }

    /// One scratch per shard (at least one), each pre-sized for `cap`
    /// entries.
    #[must_use]
    pub fn per_shard(n_shards: usize, cap: usize) -> Vec<Scratch> {
        (0..n_shards.max(1))
            .map(|_| Scratch::with_capacity(cap))
            .collect()
    }
}

/// Scratch lanes for the vectorized delivery kernel (the
/// [`DeliveryEngine`](crate::DeliveryEngine)'s batched path).
///
/// The kernel splits a broadcast into structure-of-arrays passes —
/// distance lanes, a batched path-loss/threshold pass producing an
/// in-range bitmask, a compaction of the surviving candidates, and one
/// batched loss-model query — and every pass writes into these reused
/// buffers. The engine owns one `KernelScratch`; after the first few
/// broadcasts grow the lanes to the neighborhood's high-water mark,
/// steady-state use allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct KernelScratch {
    /// Transmitter→candidate distances, one lane per candidate in
    /// candidate order.
    pub dist: Vec<f64>,
    /// Received power per candidate lane (dBm).
    pub power: Vec<f64>,
    /// In-range bitmask over candidate lanes (bit `i` = lane `i`).
    pub mask: Vec<u64>,
    /// In-range receivers, compacted in candidate order.
    pub in_range: Vec<crate::NodeId>,
    /// Received power per `in_range` entry (compacted with it).
    pub in_power: Vec<f64>,
    /// Loss-model verdicts, one per `in_range` entry.
    pub verdicts: Vec<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_capacity_presizes_all_buffers() {
        let s = Scratch::with_capacity(64);
        assert!(s.delivered.capacity() >= 64);
        assert!(s.lost.capacity() >= 64);
        assert!(s.ids.capacity() >= 64);
        assert!(s.candidates.capacity() >= 64);
        assert!(s.delivered.is_empty() && s.lost.is_empty());
    }

    #[test]
    fn per_shard_always_yields_at_least_one() {
        assert_eq!(Scratch::per_shard(0, 8).len(), 1);
        assert_eq!(Scratch::per_shard(4, 8).len(), 4);
    }
}
