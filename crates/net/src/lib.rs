//! MANET network layer: hello protocol primitives, neighbor tables
//! with received-power tracking, packet-loss models, and the broadcast
//! delivery engine.
//!
//! This crate models exactly the slice of ns-2 the paper relies on:
//!
//! * every node periodically broadcasts a **"Hello" / "I'm Alive"**
//!   message carrying its aggregate mobility metric (8 bytes of extra
//!   payload — see [`Hello`]);
//! * a receiving node measures the **received power** (`RxPr`) of each
//!   successfully received hello and stores the last two measurements
//!   per neighbor in its [`NeighborTable`] — the raw material of the
//!   MOBIC metric;
//! * entries expire after the **Timeout Period** (`TP`, 3 s in
//!   Table 1) without a fresh hello;
//! * optional [`loss`] models (Bernoulli, Gilbert–Elliott burst loss)
//!   let robustness experiments inject MAC-level packet loss. The
//!   paper itself considers only MAC-successful receptions, which is
//!   the default ([`loss::NoLoss`]).
//!
//! The delivery engine has two equivalent evaluation paths — a
//! brute-force scan over all nodes and a grid-spatial-index path that
//! only examines a padded range query (the runner's `fast_path`
//! knob) — and, alongside the allocating convenience methods, an
//! `_into` family (`broadcast_into`, `broadcast_among_into`) that
//! writes deliveries and loss drops into caller-owned scratch buffers
//! so the steady-state hot path allocates nothing. With a
//! deterministic propagation model the `_into` family additionally
//! evaluates through a **vectorized kernel**: contiguous distance
//! lanes, one batched path-loss/threshold pass producing an in-range
//! bitmask, and one batched loss-model query per broadcast
//! ([`loss::LossModel::delivered_batch`]) instead of a query per edge.
//! All of these choices are execution details: receiver sets, measured
//! powers, and loss-stream consumption are byte-identical across them.
//!
//! The crate is deliberately independent of the clustering layer: the
//! hello payload is a type parameter, so `mobic-core` defines its own
//! advert structure without a dependency cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delivery;
mod ident;
pub mod loss;
mod neighbor;
mod packet;
mod scratch;

pub use delivery::{Delivery, DeliveryEngine};
pub use ident::NodeId;
pub use neighbor::{NeighborEntry, NeighborTable, PowerSample, RecordOutcome};
pub use packet::Hello;
pub use scratch::Scratch;
