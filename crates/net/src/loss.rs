//! Packet-loss models.
//!
//! The paper counts only MAC-successful receptions and its hello load
//! is far below channel saturation, so the faithful default is
//! [`NoLoss`]. The stochastic models here drive the robustness
//! ablations: how does the mobility metric — which needs *two
//! successive* receptions per neighbor — degrade when hellos drop?

use std::collections::BTreeMap;

use rand::Rng;
use rand_chacha::ChaCha12Rng;

use mobic_sim::SimTime;

use crate::NodeId;

/// Decides, per transmitted packet and receiver, whether the packet
/// survives the channel/MAC (beyond deterministic range filtering,
/// which the delivery engine already applies).
pub trait LossModel {
    /// Returns `true` if the packet from `tx` is delivered to `rx`
    /// at time `at`.
    fn delivered(&mut self, tx: NodeId, rx: NodeId, at: SimTime) -> bool;

    /// Batched [`delivered`](Self::delivered): one verdict per receiver
    /// in `rxs`, written into `verdicts` (cleared first) in order.
    ///
    /// The default delegates receiver-by-receiver to the scalar method,
    /// so it is byte-identical by construction. An override must
    /// consume the model's RNG in **exactly** the same quantity and
    /// order as that loop — the delivery engine's kernel path and the
    /// scalar path share one loss stream, and whole-run equivalence
    /// rests on the two consuming it identically.
    fn delivered_batch(
        &mut self,
        tx: NodeId,
        rxs: &[NodeId],
        at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        verdicts.clear();
        verdicts.reserve(rxs.len());
        for &rx in rxs {
            verdicts.push(self.delivered(tx, rx, at));
        }
    }
}

impl<L: LossModel + ?Sized> LossModel for Box<L> {
    fn delivered(&mut self, tx: NodeId, rx: NodeId, at: SimTime) -> bool {
        (**self).delivered(tx, rx, at)
    }

    fn delivered_batch(
        &mut self,
        tx: NodeId,
        rxs: &[NodeId],
        at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        (**self).delivered_batch(tx, rxs, at, verdicts);
    }
}

impl<L: LossModel + ?Sized> LossModel for &mut L {
    fn delivered(&mut self, tx: NodeId, rx: NodeId, at: SimTime) -> bool {
        (**self).delivered(tx, rx, at)
    }

    fn delivered_batch(
        &mut self,
        tx: NodeId,
        rxs: &[NodeId],
        at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        (**self).delivered_batch(tx, rxs, at, verdicts);
    }
}

/// Perfect channel — every in-range packet is delivered. The paper's
/// operating assumption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn delivered(&mut self, _tx: NodeId, _rx: NodeId, _at: SimTime) -> bool {
        true
    }

    fn delivered_batch(
        &mut self,
        _tx: NodeId,
        rxs: &[NodeId],
        _at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        // No RNG to keep in step with: the scalar loop draws nothing.
        verdicts.clear();
        verdicts.resize(rxs.len(), true);
    }
}

/// Independent (Bernoulli) loss: each packet is dropped with
/// probability `p`, independently across packets and links.
///
/// # Examples
///
/// ```
/// use mobic_net::{loss::{Bernoulli, LossModel}, NodeId};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let mut m = Bernoulli::new(0.5, SeedSplitter::new(1).stream("loss", 0));
/// let mut delivered = 0;
/// for i in 0..1000 {
///     if m.delivered(NodeId::new(0), NodeId::new(1), SimTime::from_secs(i)) {
///         delivered += 1;
///     }
/// }
/// assert!(delivered > 400 && delivered < 600);
/// ```
#[derive(Debug, Clone)]
pub struct Bernoulli {
    p_loss: f64,
    rng: ChaCha12Rng,
    /// Scratch for the batched path: one uniform per candidate, drawn
    /// in candidate order, then thresholded in a separate branch-free
    /// pass. Reused across broadcasts.
    draws: Vec<f64>,
}

impl Bernoulli {
    /// Creates the model with loss probability `p_loss ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p_loss` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_loss: f64, rng: ChaCha12Rng) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_loss),
            "loss probability must be in [0, 1], got {p_loss}"
        );
        Bernoulli {
            p_loss,
            rng,
            draws: Vec::new(),
        }
    }

    /// The loss probability.
    #[must_use]
    pub fn p_loss(&self) -> f64 {
        self.p_loss
    }
}

impl LossModel for Bernoulli {
    fn delivered(&mut self, _tx: NodeId, _rx: NodeId, _at: SimTime) -> bool {
        self.rng.gen::<f64>() >= self.p_loss
    }

    // lint:hot-path — batched loss draws, one broadcast per call.
    fn delivered_batch(
        &mut self,
        _tx: NodeId,
        rxs: &[NodeId],
        _at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        // One fill pass of `gen::<f64>()` per candidate, in candidate
        // order — the identical RNG consumption to the scalar loop —
        // followed by a branch-free threshold pass.
        self.draws.clear();
        self.draws.reserve(rxs.len());
        for _ in rxs {
            self.draws.push(self.rng.gen::<f64>());
        }
        verdicts.clear();
        verdicts.reserve(rxs.len());
        for &u in &self.draws {
            verdicts.push(u >= self.p_loss);
        }
    }
    // lint:end-hot-path
}

/// Gilbert–Elliott two-state burst-loss model, with independent state
/// per directed link.
///
/// Each link is either *Good* (loss probability `loss_good`) or *Bad*
/// (loss probability `loss_bad`); at every packet the link first
/// transitions Good→Bad with probability `p_gb` or Bad→Good with
/// probability `p_bg`. Bursty loss is the worst case for the
/// "two successive hellos" requirement, making this the stress model
/// for the MOBIC metric.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    p_gb: f64,
    p_bg: f64,
    loss_good: f64,
    loss_bad: f64,
    rng: ChaCha12Rng,
    // Keyed lookup only (never iterated), but a `BTreeMap` keeps the
    // whole crate free of hasher-dependent containers by construction.
    bad: BTreeMap<(NodeId, NodeId), bool>,
}

impl GilbertElliott {
    /// Creates the model. All probabilities must lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64, rng: ChaCha12Rng) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            rng,
            bad: BTreeMap::new(),
        }
    }

    /// A typical mildly bursty configuration: 2% chance of entering a
    /// bad burst, 30% chance of leaving it, lossless when good, 80%
    /// loss when bad.
    #[must_use]
    pub fn mildly_bursty(rng: ChaCha12Rng) -> Self {
        Self::new(0.02, 0.3, 0.0, 0.8, rng)
    }
}

// `delivered_batch` deliberately keeps the default scalar loop: each
// edge draws twice (transition, then loss) and the second draw's
// meaning depends on per-link state updated by the first, so there is
// no independent "fill uniforms, then threshold" split to batch. The
// default loop *is* the canonical consumption order.
impl LossModel for GilbertElliott {
    fn delivered(&mut self, tx: NodeId, rx: NodeId, _at: SimTime) -> bool {
        let state = self.bad.entry((tx, rx)).or_insert(false);
        // Transition first, then sample loss in the new state.
        let flip: f64 = self.rng.gen();
        if *state {
            if flip < self.p_bg {
                *state = false;
            }
        } else if flip < self.p_gb {
            *state = true;
        }
        let loss = if *state {
            self.loss_bad
        } else {
            self.loss_good
        };
        self.rng.gen::<f64>() >= loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn rng(i: u64) -> ChaCha12Rng {
        SeedSplitter::new(31).stream("loss-test", i)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn no_loss_always_delivers() {
        let mut m = NoLoss;
        for i in 0..100 {
            assert!(m.delivered(n(0), n(1), SimTime::from_secs(i)));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut never = Bernoulli::new(1.0, rng(0));
        let mut always = Bernoulli::new(0.0, rng(1));
        for i in 0..100 {
            assert!(!never.delivered(n(0), n(1), SimTime::from_secs(i)));
            assert!(always.delivered(n(0), n(1), SimTime::from_secs(i)));
        }
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let mut m = Bernoulli::new(0.2, rng(2));
        let trials = 20_000;
        let delivered = (0..trials)
            .filter(|&i| m.delivered(n(0), n(1), SimTime::from_secs(i)))
            .count();
        let rate = delivered as f64 / trials as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
        assert_eq!(m.p_loss(), 0.2);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn bernoulli_rejects_bad_probability() {
        let _ = Bernoulli::new(1.5, rng(0));
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut m = GilbertElliott::new(0.05, 0.2, 0.0, 1.0, rng(3));
        // Count the longest loss run; with full loss in bad state and
        // expected bad-state dwell of 5 packets, runs of >= 3 are
        // overwhelmingly likely across 10k packets.
        let mut longest = 0;
        let mut run = 0;
        for i in 0..10_000 {
            if m.delivered(n(0), n(1), SimTime::from_secs(i)) {
                run = 0;
            } else {
                run += 1;
                longest = longest.max(run);
            }
        }
        assert!(longest >= 3, "longest loss burst {longest}");
    }

    #[test]
    fn gilbert_elliott_links_are_independent() {
        let mut m = GilbertElliott::new(0.5, 0.01, 0.0, 1.0, rng(4));
        // Drive link (0,1) into the bad state; link (2,3) should still
        // deliver at its own statistics, not inherit the state.
        let mut link_a = 0;
        let mut link_b = 0;
        for i in 0..2000 {
            if m.delivered(n(0), n(1), SimTime::from_secs(i)) {
                link_a += 1;
            }
            if m.delivered(n(2), n(3), SimTime::from_secs(i)) {
                link_b += 1;
            }
        }
        // Both settle near the stationary rate; equality of fate would
        // show up as perfectly correlated counts. Just check both saw
        // some deliveries and some losses.
        for (name, v) in [("a", link_a), ("b", link_b)] {
            assert!(v > 0 && v < 2000, "link {name}: {v}");
        }
    }

    #[test]
    fn gilbert_elliott_good_state_lossless_config() {
        let mut m = GilbertElliott::new(0.0, 1.0, 0.0, 1.0, rng(5));
        // p_gb = 0: never leaves Good; loss_good = 0: no loss at all.
        for i in 0..500 {
            assert!(m.delivered(n(0), n(1), SimTime::from_secs(i)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Bernoulli::new(0.3, rng(6));
        let mut b = Bernoulli::new(0.3, rng(6));
        for i in 0..200 {
            assert_eq!(
                a.delivered(n(0), n(1), SimTime::from_secs(i)),
                b.delivered(n(0), n(1), SimTime::from_secs(i))
            );
        }
    }

    /// Runs the same broadcast sequence through the scalar loop and
    /// through `delivered_batch` and asserts both the verdicts and the
    /// post-sequence RNG state agree (the latter checked by continuing
    /// each model scalar afterwards).
    fn assert_batch_parity<L: LossModel>(mut scalar: L, mut batched: L) {
        let mut verdicts = vec![true; 3]; // stale content must be cleared
        for round in 0..40u64 {
            let at = SimTime::from_secs(round);
            let tx = n((round % 5) as u32);
            let rxs: Vec<NodeId> = (0..(round % 7)).map(|i| n(10 + i as u32)).collect();
            let expected: Vec<bool> = rxs.iter().map(|&rx| scalar.delivered(tx, rx, at)).collect();
            batched.delivered_batch(tx, &rxs, at, &mut verdicts);
            assert_eq!(verdicts, expected, "round {round}");
        }
        // Identical residual RNG state: the next scalar draws agree.
        for i in 0..50 {
            assert_eq!(
                scalar.delivered(n(0), n(1), SimTime::from_secs(i)),
                batched.delivered(n(0), n(1), SimTime::from_secs(i)),
                "post-batch draw {i}"
            );
        }
    }

    #[test]
    fn bernoulli_batch_consumes_rng_like_scalar() {
        assert_batch_parity(Bernoulli::new(0.5, rng(7)), Bernoulli::new(0.5, rng(7)));
    }

    #[test]
    fn no_loss_batch_is_all_true() {
        assert_batch_parity(NoLoss, NoLoss);
        let mut verdicts = vec![false; 1];
        NoLoss.delivered_batch(n(0), &[n(1), n(2)], SimTime::ZERO, &mut verdicts);
        assert_eq!(verdicts, vec![true, true]);
    }

    #[test]
    fn gilbert_elliott_batch_keeps_default_scalar_order() {
        let mk = || GilbertElliott::mildly_bursty(rng(8));
        assert_batch_parity(mk(), mk());
    }

    #[test]
    fn boxed_dyn_forwards_batch_to_override() {
        // The Box forwarding impl must reach Bernoulli's override (and
        // thus its RNG discipline), not the trait default on the box.
        let scalar: Box<dyn LossModel> = Box::new(Bernoulli::new(0.4, rng(9)));
        let batched: Box<dyn LossModel> = Box::new(Bernoulli::new(0.4, rng(9)));
        assert_batch_parity(scalar, batched);
    }
}
