//! Packet-loss models.
//!
//! The paper counts only MAC-successful receptions and its hello load
//! is far below channel saturation, so the faithful default is
//! [`NoLoss`]. The stochastic models here drive the robustness
//! ablations: how does the mobility metric — which needs *two
//! successive* receptions per neighbor — degrade when hellos drop?

use std::collections::BTreeMap;

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use mobic_sim::SimTime;

use crate::NodeId;

/// Serializable live state of a [`LossModel`], captured for
/// checkpointing and restored on resume.
///
/// Stream *positions* are stored, never seeds: the resuming run
/// rebuilds the model from its config and seed (which fixes the
/// ChaCha key) and then fast-forwards the stream to the saved word
/// position, so post-resume draws continue the uninterrupted run's
/// sequence exactly. The 128-bit word position is split into
/// `(hi, lo)` halves because JSON has no native 128-bit integer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossState {
    /// No live state (e.g. [`NoLoss`]): nothing to restore.
    Stateless,
    /// A single RNG stream position ([`Bernoulli`]).
    Rng {
        /// ChaCha word position as `(hi, lo)` 64-bit halves.
        word_pos: (u64, u64),
    },
    /// RNG stream position plus per-link burst state
    /// ([`GilbertElliott`]). Links are stored as
    /// `(tx, rx, in_bad_state)` in ascending `(tx, rx)` order — the
    /// `BTreeMap` iteration order, so serialization is canonical.
    Burst {
        /// ChaCha word position as `(hi, lo)` 64-bit halves.
        word_pos: (u64, u64),
        /// Per-directed-link Good/Bad state, key-sorted.
        bad: Vec<(u32, u32, bool)>,
    },
}

/// Splits a ChaCha word position into JSON-friendly 64-bit halves.
fn word_pos_parts(rng: &ChaCha12Rng) -> (u64, u64) {
    let pos = rng.get_word_pos();
    ((pos >> 64) as u64, pos as u64)
}

/// Rejoins the halves produced by [`word_pos_parts`].
fn join_word_pos(hi: u64, lo: u64) -> u128 {
    (u128::from(hi) << 64) | u128::from(lo)
}

/// Decides, per transmitted packet and receiver, whether the packet
/// survives the channel/MAC (beyond deterministic range filtering,
/// which the delivery engine already applies).
pub trait LossModel {
    /// Returns `true` if the packet from `tx` is delivered to `rx`
    /// at time `at`.
    fn delivered(&mut self, tx: NodeId, rx: NodeId, at: SimTime) -> bool;

    /// Batched [`delivered`](Self::delivered): one verdict per receiver
    /// in `rxs`, written into `verdicts` (cleared first) in order.
    ///
    /// The default delegates receiver-by-receiver to the scalar method,
    /// so it is byte-identical by construction. An override must
    /// consume the model's RNG in **exactly** the same quantity and
    /// order as that loop — the delivery engine's kernel path and the
    /// scalar path share one loss stream, and whole-run equivalence
    /// rests on the two consuming it identically.
    fn delivered_batch(
        &mut self,
        tx: NodeId,
        rxs: &[NodeId],
        at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        verdicts.clear();
        verdicts.reserve(rxs.len());
        for &rx in rxs {
            verdicts.push(self.delivered(tx, rx, at));
        }
    }

    /// Captures the model's live state for a checkpoint. The default
    /// reports [`LossState::Stateless`], correct for models that draw
    /// no randomness and hold no per-link memory.
    fn save_state(&self) -> LossState {
        LossState::Stateless
    }

    /// Restores state captured by [`save_state`](Self::save_state)
    /// onto a freshly rebuilt model (same config, same seed). A
    /// variant that does not match the model is ignored — the
    /// embedding layer guarantees matching model kinds by rebuilding
    /// from the same config the snapshot was taken under.
    fn restore_state(&mut self, state: &LossState) {
        let _ = state;
    }
}

impl<L: LossModel + ?Sized> LossModel for Box<L> {
    fn delivered(&mut self, tx: NodeId, rx: NodeId, at: SimTime) -> bool {
        (**self).delivered(tx, rx, at)
    }

    fn delivered_batch(
        &mut self,
        tx: NodeId,
        rxs: &[NodeId],
        at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        (**self).delivered_batch(tx, rxs, at, verdicts);
    }

    fn save_state(&self) -> LossState {
        (**self).save_state()
    }

    fn restore_state(&mut self, state: &LossState) {
        (**self).restore_state(state);
    }
}

impl<L: LossModel + ?Sized> LossModel for &mut L {
    fn delivered(&mut self, tx: NodeId, rx: NodeId, at: SimTime) -> bool {
        (**self).delivered(tx, rx, at)
    }

    fn delivered_batch(
        &mut self,
        tx: NodeId,
        rxs: &[NodeId],
        at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        (**self).delivered_batch(tx, rxs, at, verdicts);
    }

    fn save_state(&self) -> LossState {
        (**self).save_state()
    }

    fn restore_state(&mut self, state: &LossState) {
        (**self).restore_state(state);
    }
}

/// Perfect channel — every in-range packet is delivered. The paper's
/// operating assumption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn delivered(&mut self, _tx: NodeId, _rx: NodeId, _at: SimTime) -> bool {
        true
    }

    fn delivered_batch(
        &mut self,
        _tx: NodeId,
        rxs: &[NodeId],
        _at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        // No RNG to keep in step with: the scalar loop draws nothing.
        verdicts.clear();
        verdicts.resize(rxs.len(), true);
    }
}

/// Independent (Bernoulli) loss: each packet is dropped with
/// probability `p`, independently across packets and links.
///
/// # Examples
///
/// ```
/// use mobic_net::{loss::{Bernoulli, LossModel}, NodeId};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let mut m = Bernoulli::new(0.5, SeedSplitter::new(1).stream("loss", 0));
/// let mut delivered = 0;
/// for i in 0..1000 {
///     if m.delivered(NodeId::new(0), NodeId::new(1), SimTime::from_secs(i)) {
///         delivered += 1;
///     }
/// }
/// assert!(delivered > 400 && delivered < 600);
/// ```
#[derive(Debug, Clone)]
pub struct Bernoulli {
    p_loss: f64,
    rng: ChaCha12Rng,
    /// Scratch for the batched path: one uniform per candidate, drawn
    /// in candidate order, then thresholded in a separate branch-free
    /// pass. Reused across broadcasts.
    draws: Vec<f64>,
}

impl Bernoulli {
    /// Creates the model with loss probability `p_loss ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p_loss` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_loss: f64, rng: ChaCha12Rng) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_loss),
            "loss probability must be in [0, 1], got {p_loss}"
        );
        Bernoulli {
            p_loss,
            rng,
            draws: Vec::new(),
        }
    }

    /// The loss probability.
    #[must_use]
    pub fn p_loss(&self) -> f64 {
        self.p_loss
    }
}

impl LossModel for Bernoulli {
    fn delivered(&mut self, _tx: NodeId, _rx: NodeId, _at: SimTime) -> bool {
        self.rng.gen::<f64>() >= self.p_loss
    }

    // lint:hot-path — batched loss draws, one broadcast per call.
    fn delivered_batch(
        &mut self,
        _tx: NodeId,
        rxs: &[NodeId],
        _at: SimTime,
        verdicts: &mut Vec<bool>,
    ) {
        // One fill pass of `gen::<f64>()` per candidate, in candidate
        // order — the identical RNG consumption to the scalar loop —
        // followed by a branch-free threshold pass.
        self.draws.clear();
        self.draws.reserve(rxs.len());
        for _ in rxs {
            self.draws.push(self.rng.gen::<f64>());
        }
        verdicts.clear();
        verdicts.reserve(rxs.len());
        for &u in &self.draws {
            verdicts.push(u >= self.p_loss);
        }
    }
    // lint:end-hot-path

    fn save_state(&self) -> LossState {
        // `draws` is pure scratch (cleared before every use), so the
        // stream position is the model's entire live state.
        LossState::Rng {
            word_pos: word_pos_parts(&self.rng),
        }
    }

    fn restore_state(&mut self, state: &LossState) {
        if let LossState::Rng { word_pos: (hi, lo) } = *state {
            self.rng.set_word_pos(join_word_pos(hi, lo));
        }
    }
}

/// Gilbert–Elliott two-state burst-loss model, with independent state
/// per directed link.
///
/// Each link is either *Good* (loss probability `loss_good`) or *Bad*
/// (loss probability `loss_bad`); at every packet the link first
/// transitions Good→Bad with probability `p_gb` or Bad→Good with
/// probability `p_bg`. Bursty loss is the worst case for the
/// "two successive hellos" requirement, making this the stress model
/// for the MOBIC metric.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    p_gb: f64,
    p_bg: f64,
    loss_good: f64,
    loss_bad: f64,
    rng: ChaCha12Rng,
    // Keyed lookup only (never iterated), but a `BTreeMap` keeps the
    // whole crate free of hasher-dependent containers by construction.
    bad: BTreeMap<(NodeId, NodeId), bool>,
}

impl GilbertElliott {
    /// Creates the model. All probabilities must lie in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64, rng: ChaCha12Rng) -> Self {
        for (name, p) in [
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            rng,
            bad: BTreeMap::new(),
        }
    }

    /// A typical mildly bursty configuration: 2% chance of entering a
    /// bad burst, 30% chance of leaving it, lossless when good, 80%
    /// loss when bad.
    #[must_use]
    pub fn mildly_bursty(rng: ChaCha12Rng) -> Self {
        Self::new(0.02, 0.3, 0.0, 0.8, rng)
    }
}

// `delivered_batch` deliberately keeps the default scalar loop: each
// edge draws twice (transition, then loss) and the second draw's
// meaning depends on per-link state updated by the first, so there is
// no independent "fill uniforms, then threshold" split to batch. The
// default loop *is* the canonical consumption order.
impl LossModel for GilbertElliott {
    fn delivered(&mut self, tx: NodeId, rx: NodeId, _at: SimTime) -> bool {
        let state = self.bad.entry((tx, rx)).or_insert(false);
        // Transition first, then sample loss in the new state.
        let flip: f64 = self.rng.gen();
        if *state {
            if flip < self.p_bg {
                *state = false;
            }
        } else if flip < self.p_gb {
            *state = true;
        }
        let loss = if *state {
            self.loss_bad
        } else {
            self.loss_good
        };
        self.rng.gen::<f64>() >= loss
    }

    fn save_state(&self) -> LossState {
        LossState::Burst {
            word_pos: word_pos_parts(&self.rng),
            bad: self
                .bad
                .iter()
                .map(|(&(tx, rx), &b)| (tx.value(), rx.value(), b))
                .collect(),
        }
    }

    fn restore_state(&mut self, state: &LossState) {
        if let LossState::Burst {
            word_pos: (hi, lo),
            bad,
        } = state
        {
            self.rng.set_word_pos(join_word_pos(*hi, *lo));
            self.bad = bad
                .iter()
                .map(|&(tx, rx, b)| ((NodeId::new(tx), NodeId::new(rx)), b))
                .collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn rng(i: u64) -> ChaCha12Rng {
        SeedSplitter::new(31).stream("loss-test", i)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn no_loss_always_delivers() {
        let mut m = NoLoss;
        for i in 0..100 {
            assert!(m.delivered(n(0), n(1), SimTime::from_secs(i)));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut never = Bernoulli::new(1.0, rng(0));
        let mut always = Bernoulli::new(0.0, rng(1));
        for i in 0..100 {
            assert!(!never.delivered(n(0), n(1), SimTime::from_secs(i)));
            assert!(always.delivered(n(0), n(1), SimTime::from_secs(i)));
        }
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let mut m = Bernoulli::new(0.2, rng(2));
        let trials = 20_000;
        let delivered = (0..trials)
            .filter(|&i| m.delivered(n(0), n(1), SimTime::from_secs(i)))
            .count();
        let rate = delivered as f64 / trials as f64;
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
        assert_eq!(m.p_loss(), 0.2);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn bernoulli_rejects_bad_probability() {
        let _ = Bernoulli::new(1.5, rng(0));
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut m = GilbertElliott::new(0.05, 0.2, 0.0, 1.0, rng(3));
        // Count the longest loss run; with full loss in bad state and
        // expected bad-state dwell of 5 packets, runs of >= 3 are
        // overwhelmingly likely across 10k packets.
        let mut longest = 0;
        let mut run = 0;
        for i in 0..10_000 {
            if m.delivered(n(0), n(1), SimTime::from_secs(i)) {
                run = 0;
            } else {
                run += 1;
                longest = longest.max(run);
            }
        }
        assert!(longest >= 3, "longest loss burst {longest}");
    }

    #[test]
    fn gilbert_elliott_links_are_independent() {
        let mut m = GilbertElliott::new(0.5, 0.01, 0.0, 1.0, rng(4));
        // Drive link (0,1) into the bad state; link (2,3) should still
        // deliver at its own statistics, not inherit the state.
        let mut link_a = 0;
        let mut link_b = 0;
        for i in 0..2000 {
            if m.delivered(n(0), n(1), SimTime::from_secs(i)) {
                link_a += 1;
            }
            if m.delivered(n(2), n(3), SimTime::from_secs(i)) {
                link_b += 1;
            }
        }
        // Both settle near the stationary rate; equality of fate would
        // show up as perfectly correlated counts. Just check both saw
        // some deliveries and some losses.
        for (name, v) in [("a", link_a), ("b", link_b)] {
            assert!(v > 0 && v < 2000, "link {name}: {v}");
        }
    }

    #[test]
    fn gilbert_elliott_good_state_lossless_config() {
        let mut m = GilbertElliott::new(0.0, 1.0, 0.0, 1.0, rng(5));
        // p_gb = 0: never leaves Good; loss_good = 0: no loss at all.
        for i in 0..500 {
            assert!(m.delivered(n(0), n(1), SimTime::from_secs(i)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Bernoulli::new(0.3, rng(6));
        let mut b = Bernoulli::new(0.3, rng(6));
        for i in 0..200 {
            assert_eq!(
                a.delivered(n(0), n(1), SimTime::from_secs(i)),
                b.delivered(n(0), n(1), SimTime::from_secs(i))
            );
        }
    }

    /// Runs the same broadcast sequence through the scalar loop and
    /// through `delivered_batch` and asserts both the verdicts and the
    /// post-sequence RNG state agree (the latter checked by continuing
    /// each model scalar afterwards).
    fn assert_batch_parity<L: LossModel>(mut scalar: L, mut batched: L) {
        let mut verdicts = vec![true; 3]; // stale content must be cleared
        for round in 0..40u64 {
            let at = SimTime::from_secs(round);
            let tx = n((round % 5) as u32);
            let rxs: Vec<NodeId> = (0..(round % 7)).map(|i| n(10 + i as u32)).collect();
            let expected: Vec<bool> = rxs.iter().map(|&rx| scalar.delivered(tx, rx, at)).collect();
            batched.delivered_batch(tx, &rxs, at, &mut verdicts);
            assert_eq!(verdicts, expected, "round {round}");
        }
        // Identical residual RNG state: the next scalar draws agree.
        for i in 0..50 {
            assert_eq!(
                scalar.delivered(n(0), n(1), SimTime::from_secs(i)),
                batched.delivered(n(0), n(1), SimTime::from_secs(i)),
                "post-batch draw {i}"
            );
        }
    }

    #[test]
    fn bernoulli_batch_consumes_rng_like_scalar() {
        assert_batch_parity(Bernoulli::new(0.5, rng(7)), Bernoulli::new(0.5, rng(7)));
    }

    #[test]
    fn no_loss_batch_is_all_true() {
        assert_batch_parity(NoLoss, NoLoss);
        let mut verdicts = vec![false; 1];
        NoLoss.delivered_batch(n(0), &[n(1), n(2)], SimTime::ZERO, &mut verdicts);
        assert_eq!(verdicts, vec![true, true]);
    }

    #[test]
    fn gilbert_elliott_batch_keeps_default_scalar_order() {
        let mk = || GilbertElliott::mildly_bursty(rng(8));
        assert_batch_parity(mk(), mk());
    }

    #[test]
    fn boxed_dyn_forwards_batch_to_override() {
        // The Box forwarding impl must reach Bernoulli's override (and
        // thus its RNG discipline), not the trait default on the box.
        let scalar: Box<dyn LossModel> = Box::new(Bernoulli::new(0.4, rng(9)));
        let batched: Box<dyn LossModel> = Box::new(Bernoulli::new(0.4, rng(9)));
        assert_batch_parity(scalar, batched);
    }

    /// Drives `original` for a prefix, checkpoints it, restores onto a
    /// freshly seeded clone, and checks both produce identical
    /// verdicts for a long suffix — the loss-model half of the resume
    /// byte-identity argument.
    fn assert_save_restore_continues<L: LossModel>(mut original: L, mut rebuilt: L) {
        for i in 0..137 {
            let _ = original.delivered(n((i % 4) as u32), n(1), SimTime::from_secs(i));
        }
        let state = original.save_state();
        // Serde round-trip: the state must survive a JSON hop intact.
        let json = serde_json::to_string(&state).unwrap();
        let state: LossState = serde_json::from_str(&json).unwrap();
        rebuilt.restore_state(&state);
        for i in 0..300 {
            let tx = n((i % 6) as u32);
            assert_eq!(
                original.delivered(tx, n(1), SimTime::from_secs(i)),
                rebuilt.delivered(tx, n(1), SimTime::from_secs(i)),
                "post-restore draw {i}"
            );
        }
    }

    #[test]
    fn bernoulli_save_restore_continues_stream() {
        assert_save_restore_continues(Bernoulli::new(0.35, rng(10)), Bernoulli::new(0.35, rng(10)));
    }

    #[test]
    fn gilbert_elliott_save_restore_continues_stream_and_links() {
        assert_save_restore_continues(
            GilbertElliott::mildly_bursty(rng(11)),
            GilbertElliott::mildly_bursty(rng(11)),
        );
    }

    #[test]
    fn save_restore_forwards_through_box() {
        let original: Box<dyn LossModel> = Box::new(GilbertElliott::mildly_bursty(rng(12)));
        let rebuilt: Box<dyn LossModel> = Box::new(GilbertElliott::mildly_bursty(rng(12)));
        // A Box must delegate to the concrete model's state, not the
        // trait default: a stateless verdict here would silently skip
        // the restore.
        assert!(!matches!(original.save_state(), LossState::Stateless));
        assert_save_restore_continues(original, rebuilt);
    }

    #[test]
    fn no_loss_state_is_stateless() {
        assert_eq!(NoLoss.save_state(), LossState::Stateless);
        let mut m = NoLoss;
        m.restore_state(&LossState::Rng { word_pos: (0, 99) });
        assert!(m.delivered(n(0), n(1), SimTime::ZERO));
    }
}
