//! Model-based property test of the neighbor table: drive it with
//! random operation sequences and compare against a simple reference
//! model at every step.

use std::collections::BTreeMap;

use mobic_net::{Hello, NeighborTable, NodeId};
use mobic_radio::Dbm;
use mobic_sim::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Record a hello from neighbor `id` with the sequence offset
    /// determining freshness (new > last → accepted).
    Record { id: u32, seq: u64, power_db: i32 },
    /// Advance time by `ds` seconds and expire.
    Expire { ds: u8 },
    /// Remove a neighbor explicitly.
    Remove { id: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..6, 0u64..12, -90i32..-30).prop_map(|(id, seq, power_db)| Op::Record {
            id,
            seq,
            power_db,
        }),
        (0u8..8).prop_map(|ds| Op::Expire { ds }),
        (0u32..6).prop_map(|id| Op::Remove { id }),
    ]
}

/// One accepted reception in the reference model.
type Sample = (u64, SimTime, i32);

/// The reference model: last accepted sample + the previous one per
/// neighbor.
#[derive(Debug, Default, Clone)]
struct Model {
    entries: BTreeMap<u32, (Sample, Option<Sample>)>,
}

impl Model {
    fn record(&mut self, at: SimTime, id: u32, seq: u64, power_db: i32) {
        match self.entries.get_mut(&id) {
            Some((last, prev)) => {
                if seq > last.0 {
                    *prev = Some(*last);
                    *last = (seq, at, power_db);
                }
            }
            None => {
                self.entries.insert(id, ((seq, at, power_db), None));
            }
        }
    }

    fn expire(&mut self, now: SimTime, timeout: SimTime) {
        self.entries
            .retain(|_, (last, _)| now.saturating_sub(last.1) <= timeout);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn table_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let timeout = SimTime::from_secs(3);
        let mut table: NeighborTable<u64> = NeighborTable::new(timeout);
        let mut model = Model::default();
        let mut now = SimTime::from_secs(1);

        for op in ops {
            match op {
                Op::Record { id, seq, power_db } => {
                    table.record(
                        now,
                        Dbm::new(f64::from(power_db)),
                        &Hello { sender: NodeId::new(id), seq, payload: seq },
                    );
                    model.record(now, id, seq, power_db);
                }
                Op::Expire { ds } => {
                    now += SimTime::from_secs(u64::from(ds));
                    let dead = table.expire(now);
                    let before: Vec<u32> = model.entries.keys().copied().collect();
                    model.expire(now, timeout);
                    let after: Vec<u32> = model.entries.keys().copied().collect();
                    let expected_dead: Vec<u32> =
                        before.into_iter().filter(|k| !after.contains(k)).collect();
                    let got_dead: Vec<u32> = dead.iter().map(|d| d.value()).collect();
                    prop_assert_eq!(got_dead, expected_dead);
                }
                Op::Remove { id } => {
                    let was = table.remove(NodeId::new(id)).is_some();
                    let expected = model.entries.remove(&id).is_some();
                    prop_assert_eq!(was, expected);
                }
            }
            // Full-state comparison after every operation.
            prop_assert_eq!(table.degree(), model.entries.len());
            for (&id, (last, prev)) in &model.entries {
                let entry = table.get(NodeId::new(id)).expect("model says present");
                prop_assert_eq!(entry.last.seq, last.0);
                prop_assert_eq!(entry.last.at, last.1);
                prop_assert_eq!(entry.last.power, Dbm::new(f64::from(last.2)));
                prop_assert_eq!(entry.payload, last.0, "payload tracks latest accepted hello");
                match (entry.prev, prev) {
                    (Some(p), Some(m)) => {
                        prop_assert_eq!(p.seq, m.0);
                        prop_assert_eq!(p.at, m.1);
                    }
                    (None, None) => {}
                    (got, want) => prop_assert!(false, "prev mismatch: {got:?} vs {want:?}"),
                }
                // successive_pair iff consecutive sequence numbers.
                let expect_pair = prev.map(|m| m.0 + 1 == last.0).unwrap_or(false);
                prop_assert_eq!(entry.successive_pair().is_some(), expect_pair);
            }
        }
    }
}
