//! Time series of sampled run quantities.

use mobic_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::SummaryStats;

/// A time-ordered series of `(time, value)` samples — e.g. the number
/// of clusters sampled every broadcast interval (the quantity behind
/// Figure 4).
///
/// # Examples
///
/// ```
/// use mobic_metrics::TimeSeries;
/// use mobic_sim::SimTime;
///
/// let mut s = TimeSeries::new("clusters");
/// s.push(SimTime::from_secs(2), 10.0);
/// s.push(SimTime::from_secs(4), 8.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.mean(), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with a descriptive name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Like [`new`](Self::new), but pre-sized for `capacity` samples —
    /// a sampler with a known cadence and horizon can size its series
    /// exactly and never reallocate while recording.
    #[must_use]
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::with_capacity(capacity),
            values: Vec::with_capacity(capacity),
        }
    }

    /// The series name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples must arrive in non-decreasing time
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last sample or `value` is NaN.
    pub fn push(&mut self, at: SimTime, value: f64) {
        assert!(!value.is_nan(), "cannot record NaN");
        if let Some(&last) = self.times.last() {
            assert!(at >= last, "samples must be time-ordered");
        }
        self.times.push(at);
        self.values.push(value);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw samples as parallel slices.
    #[must_use]
    pub fn samples(&self) -> (&[SimTime], &[f64]) {
        (&self.times, &self.values)
    }

    /// Arithmetic mean of the values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Mean over samples taken at or after `warmup`, skipping the
    /// bootstrap transient (0 if no samples qualify).
    #[must_use]
    pub fn mean_after(&self, warmup: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.times.iter().zip(&self.values) {
            if *t >= warmup {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Order-statistics summary of the values.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    #[must_use]
    pub fn summary(&self) -> SummaryStats {
        SummaryStats::from_samples(&self.values)
    }

    /// The last value, if any.
    #[must_use]
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Value at the latest sample at or before `t` (step
    /// interpolation), `None` before the first sample.
    #[must_use]
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        let idx = self.times.partition_point(|&x| x <= t);
        idx.checked_sub(1).map(|i| self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new("x");
        assert!(ts.is_empty());
        assert_eq!(ts.mean(), 0.0);
        assert_eq!(ts.last(), None);
        assert_eq!(ts.value_at(s(5)), None);
        assert_eq!(ts.name(), "x");
    }

    #[test]
    fn mean_and_warmup_mean() {
        let mut ts = TimeSeries::new("clusters");
        ts.push(s(0), 100.0); // bootstrap artifact
        ts.push(s(10), 10.0);
        ts.push(s(20), 20.0);
        assert!((ts.mean() - 130.0 / 3.0).abs() < 1e-12);
        assert_eq!(ts.mean_after(s(10)), 15.0);
        assert_eq!(ts.mean_after(s(100)), 0.0);
    }

    #[test]
    fn step_interpolation() {
        let mut ts = TimeSeries::new("v");
        ts.push(s(2), 1.0);
        ts.push(s(4), 2.0);
        assert_eq!(ts.value_at(s(1)), None);
        assert_eq!(ts.value_at(s(2)), Some(1.0));
        assert_eq!(ts.value_at(s(3)), Some(1.0));
        assert_eq!(ts.value_at(s(4)), Some(2.0));
        assert_eq!(ts.value_at(s(99)), Some(2.0));
    }

    #[test]
    fn equal_timestamps_allowed() {
        let mut ts = TimeSeries::new("v");
        ts.push(s(2), 1.0);
        ts.push(s(2), 2.0);
        assert_eq!(ts.len(), 2);
        // value_at picks the latest of the equal timestamps.
        assert_eq!(ts.value_at(s(2)), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_panics() {
        let mut ts = TimeSeries::new("v");
        ts.push(s(5), 1.0);
        ts.push(s(4), 1.0);
    }

    #[test]
    fn summary_wires_through() {
        let mut ts = TimeSeries::new("v");
        for (i, v) in [3.0, 1.0, 2.0].into_iter().enumerate() {
            ts.push(s(i as u64), v);
        }
        let sum = ts.summary();
        assert_eq!(sum.median, 2.0);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 3.0);
    }
}
