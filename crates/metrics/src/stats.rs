//! Scalar statistics.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm) — used to
/// aggregate a metric across seeds without storing every sample.
///
/// # Examples
///
/// ```
/// use mobic_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN (a NaN would silently poison every
    /// downstream aggregate).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot accumulate NaN");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by `n`; 0 when empty).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divide by `n − 1`; 0 with fewer than 2
    /// samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Standard error of the mean (0 with fewer than 2 samples).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// A complete summary of a batch of samples, including order
/// statistics (which [`OnlineStats`] cannot provide).
///
/// # Examples
///
/// ```
/// use mobic_metrics::SummaryStats;
///
/// let s = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0]);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.mean, 22.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (mean of middle two for even counts).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Summarizes `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample set");
        let online: OnlineStats = samples.iter().copied().collect();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
        };
        SummaryStats {
            count: samples.len(),
            mean: online.mean(),
            std_dev: online.std_dev(),
            min: sorted[0],
            median,
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Linear-interpolated percentile (`p ∈ [0, 100]`) of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `p` is out of range.
    #[must_use]
    pub fn percentile(samples: &[f64], p: f64) -> f64 {
        assert!(!samples.is_empty(), "empty sample set");
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Two-sided 95 % critical values of Student's t distribution for
/// `df = 1..=30`; larger dfs fall back to the normal 1.96.
const T_CRIT_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// The 95 % critical t-value for `df` degrees of freedom (normal
/// approximation beyond 30).
#[must_use]
pub fn t_critical_95(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_CRIT_95[df - 1],
        _ => 1.96,
    }
}

impl OnlineStats {
    /// Half-width of the 95 % confidence interval of the mean
    /// (Student's t). Zero with fewer than 2 samples.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t_critical_95(self.n as usize - 1) * self.std_error()
    }
}

/// Welch's t statistic and (Welch–Satterthwaite) degrees of freedom
/// for the difference of means of two independent sample sets —
/// used to state whether an algorithm comparison is significant.
///
/// Returns `(t, df, significant_at_5%)`. With fewer than two samples
/// on either side the comparison is never significant.
///
/// # Examples
///
/// ```
/// use mobic_metrics::{welch_t, OnlineStats};
///
/// let a: OnlineStats = [10.0, 11.0, 9.0, 10.5, 9.5].into_iter().collect();
/// let b: OnlineStats = [20.0, 21.0, 19.0, 20.5, 19.5].into_iter().collect();
/// let (t, _, significant) = welch_t(&a, &b);
/// assert!(t < 0.0, "a's mean is below b's");
/// assert!(significant);
/// ```
#[must_use]
pub fn welch_t(a: &OnlineStats, b: &OnlineStats) -> (f64, f64, bool) {
    if a.count() < 2 || b.count() < 2 {
        return (0.0, 0.0, false);
    }
    let (na, nb) = (a.count() as f64, b.count() as f64);
    let (va, vb) = (a.sample_variance(), b.sample_variance());
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        // Identical constants: significant iff the means differ at all.
        let differ = (a.mean() - b.mean()).abs() > 0.0;
        return (
            if differ { f64::INFINITY } else { 0.0 },
            na + nb - 2.0,
            differ,
        );
    }
    let t = (a.mean() - b.mean()) / se2.sqrt();
    let df =
        se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0)).max(1e-300);
    let significant = t.abs() > t_critical_95(df.floor().max(1.0) as usize);
    (t, df, significant)
}

/// Gini coefficient of a non-negative sample set — the inequality of
/// clusterhead burden across nodes (0 = perfectly even, → 1 = one node
/// carries everything). Empty or all-zero input yields 0.
///
/// # Panics
///
/// Panics if any sample is negative or NaN.
///
/// # Examples
///
/// ```
/// use mobic_metrics::gini;
///
/// assert_eq!(gini(&[1.0, 1.0, 1.0, 1.0]), 0.0);
/// // One node does all the work out of four: G = 3/4.
/// assert!((gini(&[1.0, 0.0, 0.0, 0.0]) - 0.75).abs() < 1e-12);
/// ```
#[must_use]
pub fn gini(samples: &[f64]) -> f64 {
    assert!(
        samples.iter().all(|&x| x >= 0.0 && !x.is_nan()),
        "gini requires non-negative samples"
    );
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = samples.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    // G = (2·Σ i·x_i) / (n·Σ x) − (n+1)/n, with i starting at 1.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_properties() {
        // Scale invariance.
        assert!((gini(&[2.0, 4.0, 6.0]) - gini(&[1.0, 2.0, 3.0])).abs() < 1e-12);
        // Order invariance.
        assert_eq!(gini(&[3.0, 1.0, 2.0]), gini(&[1.0, 2.0, 3.0]));
        // Empty / all-zero.
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        // Bounded in [0, 1).
        let g = gini(&[100.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(g > 0.0 && g < 1.0);
    }

    #[test]
    fn ci95_half_width_matches_hand_computation() {
        // n = 5, s known: CI = t_{4,0.975} · s/√5 with t = 2.776.
        let xs = [2.0f64, 4.0, 4.0, 4.0, 6.0];
        let s: OnlineStats = xs.into_iter().collect();
        let expected = 2.776 * s.std_dev() / 5f64.sqrt();
        assert!((s.ci95_half_width() - expected).abs() < 1e-9);
        // Degenerate cases.
        assert_eq!(OnlineStats::new().ci95_half_width(), 0.0);
        let one: OnlineStats = [1.0].into_iter().collect();
        assert_eq!(one.ci95_half_width(), 0.0);
    }

    #[test]
    fn t_critical_endpoints() {
        assert_eq!(t_critical_95(0), f64::INFINITY);
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn welch_detects_separation_and_overlap() {
        let a: OnlineStats = [1.0, 1.1, 0.9, 1.05, 0.95].into_iter().collect();
        let far: OnlineStats = [5.0, 5.1, 4.9, 5.05, 4.95].into_iter().collect();
        let (t, df, sig) = welch_t(&a, &far);
        assert!(t < -10.0, "t = {t}");
        assert!(df > 1.0);
        assert!(sig);
        // Same distribution → not significant.
        let b: OnlineStats = [1.02, 0.96, 1.08, 0.94, 1.0].into_iter().collect();
        let (_, _, sig) = welch_t(&a, &b);
        assert!(!sig);
        // Too few samples → never significant.
        let tiny: OnlineStats = [1.0].into_iter().collect();
        assert!(!welch_t(&tiny, &far).2);
    }

    #[test]
    fn welch_constant_samples() {
        let a: OnlineStats = [3.0, 3.0, 3.0].into_iter().collect();
        let b: OnlineStats = [4.0, 4.0, 4.0].into_iter().collect();
        assert!(welch_t(&a, &b).2);
        let c: OnlineStats = [3.0, 3.0, 3.0].into_iter().collect();
        assert!(!welch_t(&a, &c).2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn gini_rejects_negatives() {
        let _ = gini(&[-1.0, 2.0]);
    }

    #[test]
    fn empty_online_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn welford_matches_naive() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.population_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.7).collect();
        let (a, b) = xs.split_at(20);
        let mut sa: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: OnlineStats = xs.iter().copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-10);
        assert!((sa.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(sa.min(), all.min());
        assert_eq!(sa.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        s.merge(&OnlineStats::new());
        assert_eq!(s.count(), 2);
        let mut e = OnlineStats::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn summary_even_count_median() {
        let s = SummaryStats::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        assert_eq!(SummaryStats::percentile(&xs, 0.0), 0.0);
        assert_eq!(SummaryStats::percentile(&xs, 50.0), 50.0);
        assert_eq!(SummaryStats::percentile(&xs, 100.0), 100.0);
        assert_eq!(SummaryStats::percentile(&xs, 95.0), 95.0);
        // Interpolation between ranks.
        assert_eq!(SummaryStats::percentile(&[0.0, 10.0], 25.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = SummaryStats::from_samples(&[]);
    }
}
