//! Paper-style output: ASCII tables, CSV and JSON export.
//!
//! Every file this module writes goes through
//! [`mobic_trace::write_atomic`] (temp file + rename), so a killed
//! experiment never leaves a truncated `results/` artifact behind.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple right-aligned ASCII table, used by every experiment binary
/// to print the rows/series the paper's figures plot.
///
/// # Examples
///
/// ```
/// use mobic_metrics::AsciiTable;
///
/// let mut t = AsciiTable::new(["Tx (m)", "lowest-id", "mobic"]);
/// t.row(["50", "812", "841"]);
/// t.row(["250", "301", "204"]);
/// let rendered = t.render();
/// assert!(rendered.contains("Tx (m)"));
/// assert!(rendered.contains("204"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        AsciiTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Serializes the table as CSV (header + rows). Cells containing
    /// commas or quotes are quoted per RFC 4180.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Writes the CSV form to `path` atomically (temp file + rename),
    /// creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory creation or the write.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        mobic_trace::write_atomic(path, self.to_csv())
    }
}

/// Writes any serde-serializable value as pretty JSON to `path`
/// atomically (temp file + rename), creating parent directories — how
/// experiment binaries persist machine-readable results under
/// `results/`.
///
/// # Errors
///
/// Returns I/O errors and serialization failures (as
/// `io::ErrorKind::InvalidData`).
pub fn write_json<T: serde::Serialize>(value: &T, path: impl AsRef<Path>) -> io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    mobic_trace::write_atomic(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn renders_aligned_columns() {
        let mut t = AsciiTable::new(["a", "long-header"]);
        t.row(["12345", "1"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right alignment: "1" sits at the end of its column.
        assert!(lines[2].ends_with('1'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = AsciiTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = AsciiTable::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"with\"\"quote\"");
    }

    #[test]
    fn write_csv_and_json_roundtrip() {
        let dir = std::env::temp_dir().join("mobic-metrics-test");
        let _ = fs::remove_dir_all(&dir);
        let mut t = AsciiTable::new(["x"]);
        t.row(["1"]);
        let csv_path = dir.join("sub/out.csv");
        t.write_csv(&csv_path).unwrap();
        assert_eq!(fs::read_to_string(&csv_path).unwrap(), "x\n1\n");

        let json_path = dir.join("out.json");
        write_json(&vec![1, 2, 3], &json_path).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = fs::remove_dir_all(&dir);
    }
}
