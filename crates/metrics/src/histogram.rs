//! Fixed-bucket histograms with terminal rendering.

use serde::{Deserialize, Serialize};

/// A histogram over equal-width buckets in `[lo, hi)`, with explicit
/// underflow/overflow counters — used to report distributions (link
/// lifetimes, route lifetimes, metric values) rather than just means.
///
/// # Examples
///
/// ```
/// use mobic_metrics::Histogram;
///
/// let mut h = Histogram::new(0.0, 100.0, 10);
/// for x in [5.0, 15.0, 15.5, 95.0, 150.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_count(1), 2); // the two 15s
/// assert_eq!(h.overflow(), 1);      // the 150
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width
    /// buckets.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`, bounds are non-finite, or `buckets` is 0.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "invalid histogram range {lo}..{hi}"
        );
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot add NaN");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total samples, including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Samples below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[from, to)` value range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.buckets.len(), "bucket {i} out of range");
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Renders the histogram as rows of `label | bar | count`, scaling
    /// the longest bar to `bar_width` characters. Empty histograms
    /// render headers only.
    #[must_use]
    pub fn render(&self, bar_width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!(
                "{:>16}  {}\n",
                format!("< {:.1}", self.lo),
                self.underflow
            ));
        }
        for (i, &n) in self.buckets.iter().enumerate() {
            let (a, b) = self.bucket_range(i);
            let bar_len = ((n as f64 / max as f64) * bar_width as f64).round() as usize;
            out.push_str(&format!(
                "{:>16}  {:<width$} {}\n",
                format!("{a:.1}–{b:.1}"),
                "#".repeat(bar_len),
                n,
                width = bar_width
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!(
                "{:>16}  {}\n",
                format!(">= {:.1}", self.hi),
                self.overflow
            ));
        }
        out
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_boundaries() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(0.0); // bucket 0 (inclusive lower)
        h.add(1.999); // bucket 0
        h.add(2.0); // bucket 1
        h.add(9.999); // bucket 4
        h.add(10.0); // overflow (exclusive upper)
        h.add(-0.001); // underflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        let h = Histogram::new(10.0, 50.0, 4);
        assert_eq!(h.bucket_range(0), (10.0, 20.0));
        assert_eq!(h.bucket_range(3), (40.0, 50.0));
    }

    #[test]
    fn render_scales_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        for _ in 0..10 {
            h.add(0.5);
        }
        h.add(1.5);
        let text = h.render(20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].matches('#').count() == 20, "{text}");
        assert!(lines[1].matches('#').count() == 2, "{text}");
        assert!(lines[0].trim_end().ends_with("10"));
    }

    #[test]
    fn extend_and_empty_render() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.extend([0.1, 0.5, 0.9]);
        assert_eq!(h.count(), 3);
        let empty = Histogram::new(0.0, 1.0, 2);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.render(10).lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid histogram range")]
    fn inverted_range_panics() {
        let _ = Histogram::new(5.0, 1.0, 3);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        Histogram::new(0.0, 1.0, 2).add(f64::NAN);
    }
}
