//! Cluster-stability metrics, statistics and reporting.
//!
//! The paper's evaluation rests on two quantities, both provided here:
//!
//! * **`CS` — the cluster stability metric**: "the number of
//!   clusterhead changes in a given time period" (§4.1), computed by
//!   [`TransitionLog`] from the stream of role transitions the
//!   clustering engine emits (Figures 3, 5, 6);
//! * **the number of clusters** over time, sampled into a
//!   [`TimeSeries`] (Figure 4).
//!
//! Plus the supporting cast every experiment harness needs:
//! [`OnlineStats`]/[`SummaryStats`] for aggregating across seeds, an
//! [`AsciiTable`] renderer for paper-style rows on stdout, and CSV
//! export helpers in [`report`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod changes;
mod histogram;
pub mod report;
mod series;
mod stats;

pub use changes::TransitionLog;
pub use histogram::Histogram;
pub use report::AsciiTable;
pub use series::TimeSeries;
pub use stats::{gini, t_critical_95, welch_t, OnlineStats, SummaryStats};
