//! The cluster stability metric `CS`.

use std::collections::BTreeMap;

use mobic_core::RoleTransition;
use mobic_net::NodeId;
use mobic_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Collects every role transition of a run and answers the paper's
/// stability questions.
///
/// The headline metric is [`clusterhead_changes`]
/// (`CS`): the number of transitions into or out of the clusterhead
/// role. Because the initial election itself flips ~`#clusters` nodes
/// into the role, experiments usually count changes **after a warmup**
/// ([`clusterhead_changes_after`]) so algorithms are compared on
/// steady-state churn, not on bootstrap — EXPERIMENTS.md states which
/// number each figure uses.
///
/// [`clusterhead_changes`]: TransitionLog::clusterhead_changes
/// [`clusterhead_changes_after`]: TransitionLog::clusterhead_changes_after
///
/// # Examples
///
/// ```
/// use mobic_core::{Role, RoleTransition};
/// use mobic_metrics::TransitionLog;
/// use mobic_net::NodeId;
/// use mobic_sim::SimTime;
///
/// let mut log = TransitionLog::new();
/// log.record(RoleTransition {
///     at: SimTime::from_secs(4),
///     node: NodeId::new(0),
///     from: Role::Undecided,
///     to: Role::Clusterhead,
/// });
/// assert_eq!(log.clusterhead_changes(), 1);
/// assert_eq!(log.clusterhead_changes_after(SimTime::from_secs(10)), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TransitionLog {
    transitions: Vec<RoleTransition>,
}

impl TransitionLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        TransitionLog::default()
    }

    /// Like [`new`](Self::new), but pre-sized for `capacity`
    /// transitions (a reasonable prior is a few per node: the initial
    /// election flips about one node per cluster, steady state adds
    /// churn on top).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TransitionLog {
            transitions: Vec::with_capacity(capacity),
        }
    }

    /// Appends a transition (they must arrive in time order; the
    /// clustering engine guarantees this).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if transitions arrive out of order.
    pub fn record(&mut self, tr: RoleTransition) {
        debug_assert!(
            self.transitions.last().is_none_or(|last| last.at <= tr.at),
            "transitions must arrive in time order"
        );
        self.transitions.push(tr);
    }

    /// All transitions, in time order.
    #[must_use]
    pub fn transitions(&self) -> &[RoleTransition] {
        &self.transitions
    }

    /// Total number of recorded transitions of any kind.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The paper's `CS`: transitions into or out of the clusterhead
    /// role, over the whole run.
    #[must_use]
    pub fn clusterhead_changes(&self) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.is_clusterhead_change())
            .count()
    }

    /// `CS` counting only transitions at or after `warmup` — the
    /// steady-state churn, excluding the initial election.
    #[must_use]
    pub fn clusterhead_changes_after(&self, warmup: SimTime) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.at >= warmup && t.is_clusterhead_change())
            .count()
    }

    /// Cluster-membership (affiliation) changes — a finer-grained
    /// churn measure: every time any node changes which cluster it
    /// belongs to.
    #[must_use]
    pub fn affiliation_changes_after(&self, warmup: SimTime) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.at >= warmup && t.is_affiliation_change())
            .count()
    }

    /// Clusterhead changes per node, for locating churn hotspots.
    #[must_use]
    pub fn per_node_clusterhead_changes(&self) -> BTreeMap<NodeId, usize> {
        let mut map = BTreeMap::new();
        for t in &self.transitions {
            if t.is_clusterhead_change() {
                *map.entry(t.node).or_insert(0) += 1;
            }
        }
        map
    }

    /// `CS` per unit time (changes/second) in the window
    /// `[warmup, end]` — the normalized form "average number of
    /// clusterhead changes per unit of time" used by \[5\].
    ///
    /// # Panics
    ///
    /// Panics if `end <= warmup`.
    #[must_use]
    pub fn clusterhead_change_rate(&self, warmup: SimTime, end: SimTime) -> f64 {
        assert!(end > warmup, "empty measurement window");
        let n = self
            .transitions
            .iter()
            .filter(|t| t.at >= warmup && t.at <= end && t.is_clusterhead_change())
            .count();
        n as f64 / (end - warmup).as_secs_f64()
    }
}

impl TransitionLog {
    /// Per-node fraction of `[start, end]` spent in the clusterhead
    /// role, reconstructed from the transition stream (every node
    /// starts undecided). Index = `NodeId::index`. The clusterhead
    /// *burden distribution* this yields feeds the fairness analysis:
    /// stable clusterings concentrate burden on few long-serving
    /// heads.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    #[must_use]
    pub fn clusterhead_time_shares(
        &self,
        n_nodes: usize,
        start: SimTime,
        end: SimTime,
    ) -> Vec<f64> {
        assert!(end > start, "empty measurement window");
        let window = (end - start).as_secs_f64();
        let mut shares = vec![0.0f64; n_nodes];
        // Track, per node, when it most recently became clusterhead.
        let mut since: Vec<Option<SimTime>> = vec![None; n_nodes];
        for tr in &self.transitions {
            let i = tr.node.index();
            if i >= n_nodes {
                continue;
            }
            if tr.to.is_clusterhead() {
                since[i] = Some(tr.at.max(start));
            } else if tr.from.is_clusterhead() {
                if let Some(s0) = since[i].take() {
                    let until = tr.at.min(end).max(start);
                    if until > s0 {
                        shares[i] += (until - s0).as_secs_f64();
                    }
                }
            }
        }
        for (i, s0) in since.iter().enumerate() {
            if let Some(s0) = s0 {
                if end > *s0 {
                    shares[i] += (end - *s0).as_secs_f64();
                }
            }
        }
        for s in &mut shares {
            *s /= window;
        }
        shares
    }

    /// Number of distinct nodes that ever held the clusterhead role.
    #[must_use]
    pub fn distinct_clusterheads(&self) -> usize {
        self.transitions
            .iter()
            .filter(|t| t.to.is_clusterhead())
            .map(|t| t.node)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }
}

impl Extend<RoleTransition> for TransitionLog {
    fn extend<T: IntoIterator<Item = RoleTransition>>(&mut self, iter: T) {
        for t in iter {
            self.record(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::Role;

    fn tr(at_s: u64, node: u32, from: Role, to: Role) -> RoleTransition {
        RoleTransition {
            at: SimTime::from_secs(at_s),
            node: NodeId::new(node),
            from,
            to,
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn counts_only_clusterhead_flips() {
        let mut log = TransitionLog::new();
        log.extend([
            tr(1, 0, Role::Undecided, Role::Clusterhead), // CS +1
            tr(2, 1, Role::Undecided, Role::Member { ch: n(0) }), // no
            tr(3, 1, Role::Member { ch: n(0) }, Role::Member { ch: n(2) }), // no
            tr(4, 0, Role::Clusterhead, Role::Member { ch: n(2) }), // CS +1
        ]);
        assert_eq!(log.len(), 4);
        assert_eq!(log.clusterhead_changes(), 2);
    }

    #[test]
    fn warmup_excludes_initial_election() {
        let mut log = TransitionLog::new();
        log.extend([
            tr(2, 0, Role::Undecided, Role::Clusterhead),
            tr(4, 1, Role::Undecided, Role::Clusterhead),
            tr(100, 1, Role::Clusterhead, Role::Member { ch: n(0) }),
        ]);
        assert_eq!(log.clusterhead_changes(), 3);
        assert_eq!(log.clusterhead_changes_after(SimTime::from_secs(10)), 1);
    }

    #[test]
    fn affiliation_changes() {
        let mut log = TransitionLog::new();
        log.extend([
            tr(1, 5, Role::Undecided, Role::Member { ch: n(0) }),
            tr(2, 5, Role::Member { ch: n(0) }, Role::Member { ch: n(1) }),
            tr(3, 5, Role::Member { ch: n(1) }, Role::Member { ch: n(1) }),
        ]);
        assert_eq!(log.affiliation_changes_after(SimTime::ZERO), 2);
    }

    #[test]
    fn per_node_breakdown() {
        let mut log = TransitionLog::new();
        log.extend([
            tr(1, 0, Role::Undecided, Role::Clusterhead),
            tr(2, 0, Role::Clusterhead, Role::Undecided),
            tr(3, 7, Role::Undecided, Role::Clusterhead),
        ]);
        let per = log.per_node_clusterhead_changes();
        assert_eq!(per[&n(0)], 2);
        assert_eq!(per[&n(7)], 1);
        assert!(!per.contains_key(&n(1)));
    }

    #[test]
    fn change_rate() {
        let mut log = TransitionLog::new();
        log.extend([
            tr(10, 0, Role::Undecided, Role::Clusterhead),
            tr(20, 0, Role::Clusterhead, Role::Undecided),
        ]);
        let rate = log.clusterhead_change_rate(SimTime::ZERO, SimTime::from_secs(100));
        assert!((rate - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_log() {
        let log = TransitionLog::new();
        assert!(log.is_empty());
        assert_eq!(log.clusterhead_changes(), 0);
        assert!(log.per_node_clusterhead_changes().is_empty());
    }

    #[test]
    fn time_shares_reconstruct_role_timeline() {
        let mut log = TransitionLog::new();
        log.extend([
            // Node 0: CH from t=10 to t=60 (50 s of a 100 s window).
            tr(10, 0, Role::Undecided, Role::Clusterhead),
            tr(60, 0, Role::Clusterhead, Role::Member { ch: n(1) }),
            // Node 1: CH from t=60 until the end.
            tr(60, 1, Role::Undecided, Role::Clusterhead),
        ]);
        let shares = log.clusterhead_time_shares(3, SimTime::ZERO, SimTime::from_secs(100));
        assert!((shares[0] - 0.5).abs() < 1e-12, "{shares:?}");
        assert!((shares[1] - 0.4).abs() < 1e-12, "{shares:?}");
        assert_eq!(shares[2], 0.0);
        assert_eq!(log.distinct_clusterheads(), 2);
    }

    #[test]
    fn time_shares_clip_to_window() {
        let mut log = TransitionLog::new();
        log.extend([
            tr(0, 0, Role::Undecided, Role::Clusterhead),
            tr(90, 0, Role::Clusterhead, Role::Undecided),
        ]);
        // Measurement window [50, 100]: CH for 40 of 50 s.
        let shares =
            log.clusterhead_time_shares(1, SimTime::from_secs(50), SimTime::from_secs(100));
        assert!((shares[0] - 0.8).abs() < 1e-12, "{shares:?}");
    }

    #[test]
    #[should_panic(expected = "window")]
    fn bad_rate_window_panics() {
        let _ = TransitionLog::new()
            .clusterhead_change_rate(SimTime::from_secs(5), SimTime::from_secs(5));
    }
}
