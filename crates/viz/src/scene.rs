//! The renderable cluster scene.

use mobic_core::{ClusterNode, Role};
use mobic_geom::{Rect, Vec2};
use mobic_net::NodeId;
use mobic_scenario::SampleView;

/// A self-contained snapshot of everything the renderers need.
#[derive(Debug, Clone)]
pub struct ClusterScene {
    /// The simulation field.
    pub field: Rect,
    /// The nominal transmission range (drawn as disks around
    /// clusterheads).
    pub tx_range_m: f64,
    /// Node positions, indexed by `NodeId::index`.
    pub positions: Vec<Vec2>,
    /// Node roles, parallel to `positions`.
    pub roles: Vec<Role>,
}

impl ClusterScene {
    /// Captures a scene from a live [`SampleView`] (the scenario
    /// runner's observer payload).
    #[must_use]
    pub fn from_view(view: &SampleView<'_>, field: Rect, tx_range_m: f64) -> Self {
        ClusterScene {
            field,
            tx_range_m,
            positions: view.positions.to_vec(),
            roles: view.nodes.iter().map(ClusterNode::role).collect(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` when the scene has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Indices of all clusterheads.
    #[must_use]
    pub fn clusterheads(&self) -> Vec<usize> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_clusterhead())
            .map(|(i, _)| i)
            .collect()
    }

    /// `true` if node `i` is a gateway: a non-clusterhead within
    /// range of two or more clusterheads.
    #[must_use]
    pub fn is_gateway(&self, i: usize) -> bool {
        if self.roles[i].is_clusterhead() {
            return false;
        }
        self.clusterheads()
            .iter()
            .filter(|&&c| self.positions[c].distance(self.positions[i]) <= self.tx_range_m)
            .count()
            >= 2
    }

    /// The affiliation spoke of node `i`: its clusterhead's index, if
    /// it is a member of a clusterhead present in the scene.
    #[must_use]
    pub fn affiliation(&self, i: usize) -> Option<usize> {
        match self.roles[i] {
            Role::Member { ch } => {
                let idx = ch.index();
                (idx < self.len() && self.roles[idx].is_clusterhead()).then_some(idx)
            }
            _ => None,
        }
    }

    /// The cluster label of node `i` (its clusterhead id), if decided.
    #[must_use]
    pub fn cluster_of(&self, i: usize) -> Option<NodeId> {
        self.roles[i].cluster_of(NodeId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> ClusterScene {
        ClusterScene {
            field: Rect::square(300.0),
            tx_range_m: 100.0,
            positions: vec![
                Vec2::new(50.0, 50.0),   // 0: CH
                Vec2::new(100.0, 60.0),  // 1: member of 0
                Vec2::new(200.0, 50.0),  // 2: CH
                Vec2::new(140.0, 55.0),  // 3: member of 0, hears both CHs
                Vec2::new(280.0, 280.0), // 4: undecided loner
            ],
            roles: vec![
                Role::Clusterhead,
                Role::Member { ch: NodeId::new(0) },
                Role::Clusterhead,
                Role::Member { ch: NodeId::new(0) },
                Role::Undecided,
            ],
        }
    }

    #[test]
    fn clusterheads_and_gateways() {
        let s = scene();
        assert_eq!(s.clusterheads(), vec![0, 2]);
        assert!(!s.is_gateway(1), "hears only CH 0");
        assert!(s.is_gateway(3), "hears CHs 0 and 2");
        assert!(!s.is_gateway(0), "clusterheads are never gateways");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn affiliations() {
        let s = scene();
        assert_eq!(s.affiliation(1), Some(0));
        assert_eq!(s.affiliation(0), None);
        assert_eq!(s.affiliation(4), None);
        assert_eq!(s.cluster_of(0), Some(NodeId::new(0)));
        assert_eq!(s.cluster_of(4), None);
    }

    #[test]
    fn dangling_affiliation_is_not_drawn() {
        let mut s = scene();
        // Node 1 claims a clusterhead that is no longer one.
        s.roles[0] = Role::Undecided;
        assert_eq!(s.affiliation(1), None);
    }
}
