//! Terminal rendering of cluster scenes.

use crate::ClusterScene;

impl ClusterScene {
    /// Renders the scene as ASCII art on a `cols × rows` character
    /// grid: `#` clusterhead, `G` gateway, `o` member, `?` undecided.
    /// When several nodes land on one cell the highest-salience marker
    /// wins (`#` > `G` > `o` > `?`).
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    #[must_use]
    pub fn to_ascii(&self, cols: usize, rows: usize) -> String {
        assert!(cols > 0 && rows > 0, "grid must be non-empty");
        let mut grid = vec![vec![' '; cols]; rows];
        let salience = |c: char| match c {
            '#' => 3,
            'G' => 2,
            'o' => 1,
            '?' => 0,
            _ => -1,
        };
        for i in 0..self.len() {
            let p = self.positions[i];
            let u = ((p.x - self.field.min().x) / self.field.width().max(1e-9)).clamp(0.0, 1.0);
            let v = ((p.y - self.field.min().y) / self.field.height().max(1e-9)).clamp(0.0, 1.0);
            let col = ((u * (cols - 1) as f64).round() as usize).min(cols - 1);
            // Top row = max y (north up).
            let row = rows - 1 - ((v * (rows - 1) as f64).round() as usize).min(rows - 1);
            let marker = match self.roles[i] {
                mobic_core::Role::Clusterhead => '#',
                mobic_core::Role::Member { .. } => {
                    if self.is_gateway(i) {
                        'G'
                    } else {
                        'o'
                    }
                }
                mobic_core::Role::Undecided => '?',
            };
            if salience(marker) > salience(grid[row][col]) {
                grid[row][col] = marker;
            }
        }
        let mut out = String::with_capacity((cols + 3) * (rows + 2));
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::ClusterScene;
    use mobic_core::Role;
    use mobic_geom::{Rect, Vec2};
    use mobic_net::NodeId;

    fn scene() -> ClusterScene {
        ClusterScene {
            field: Rect::square(100.0),
            tx_range_m: 60.0,
            positions: vec![
                Vec2::new(10.0, 90.0), // top-left: CH
                Vec2::new(90.0, 10.0), // bottom-right: member
                Vec2::new(50.0, 50.0), // center: undecided
            ],
            roles: vec![
                Role::Clusterhead,
                Role::Member { ch: NodeId::new(0) },
                Role::Undecided,
            ],
        }
    }

    #[test]
    fn markers_and_orientation() {
        let art = scene().to_ascii(20, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 12, "border + 10 rows");
        // North is up: the clusterhead (y=90) appears in an upper row,
        // the member (y=10) in a lower row.
        let row_of = |c: char| lines.iter().position(|l| l.contains(c)).unwrap();
        assert!(row_of('#') < row_of('o'), "{art}");
        assert!(art.contains('?'));
    }

    #[test]
    fn collision_keeps_most_salient() {
        let s = ClusterScene {
            field: Rect::square(10.0),
            tx_range_m: 5.0,
            positions: vec![Vec2::new(5.0, 5.0), Vec2::new(5.0, 5.0)],
            roles: vec![Role::Undecided, Role::Clusterhead],
        };
        let art = s.to_ascii(3, 3);
        assert!(art.contains('#'));
        assert!(!art.contains('?'));
    }

    #[test]
    fn every_row_is_framed() {
        let art = scene().to_ascii(8, 4);
        for line in art.lines() {
            assert!(
                (line.starts_with('|') && line.ends_with('|'))
                    || (line.starts_with('+') && line.ends_with('+')),
                "unframed line: {line:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_grid_panics() {
        let _ = scene().to_ascii(0, 5);
    }
}
