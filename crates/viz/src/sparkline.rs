//! Unicode sparklines for time series (cluster counts, CS rates).

/// Renders `values` as a one-line Unicode sparkline (`▁▂▃▄▅▆▇█`),
/// scaled to the data's own min..max range. Empty input yields an
/// empty string; a constant series renders at mid height.
///
/// # Examples
///
/// ```
/// use mobic_viz::sparkline;
///
/// let s = sparkline(&[1.0, 2.0, 3.0, 2.0, 1.0]);
/// assert_eq!(s.chars().count(), 5);
/// assert!(s.contains('█'));
/// ```
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if span <= 0.0 || !span.is_finite() {
                BARS[3]
            } else {
                let t = ((v - min) / span * 7.0).round().clamp(0.0, 7.0) as usize;
                BARS[t]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_constant() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.chars().all(|c| c == '▄'));
    }

    #[test]
    fn monotone_ramp_uses_full_range() {
        let values: Vec<f64> = (0..8).map(f64::from).collect();
        let s = sparkline(&values);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn single_value() {
        assert_eq!(sparkline(&[42.0]).chars().count(), 1);
    }

    #[test]
    fn negative_values_are_fine() {
        let s = sparkline(&[-10.0, 0.0, 10.0]);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}
