//! A tiny dependency-free SVG writer and the cluster-scene renderer.

use std::fmt::Write as _;

use crate::ClusterScene;

/// Styling knobs for SVG rendering.
#[derive(Debug, Clone)]
pub struct SvgStyle {
    /// Pixel width of the output (height follows the field's aspect
    /// ratio).
    pub width_px: f64,
    /// Node marker radius in pixels.
    pub node_radius_px: f64,
    /// Palette cycled over clusters (fill colors).
    pub palette: Vec<String>,
    /// Whether to draw the transmission-radius disk of each
    /// clusterhead.
    pub draw_range_disks: bool,
    /// Whether to draw member→clusterhead affiliation spokes.
    pub draw_spokes: bool,
}

impl Default for SvgStyle {
    fn default() -> Self {
        SvgStyle {
            width_px: 640.0,
            node_radius_px: 5.0,
            palette: [
                "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2",
                "#7f7f7f", "#bcbd22", "#17becf",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            draw_range_disks: true,
            draw_spokes: true,
        }
    }
}

/// A minimal SVG document builder — just enough shapes for network
/// diagrams, with numeric formatting suitable for version control
/// diffs (fixed precision).
///
/// # Examples
///
/// ```
/// use mobic_viz::SvgCanvas;
///
/// let mut c = SvgCanvas::new(100.0, 50.0);
/// c.circle(10.0, 10.0, 4.0, "#1f77b4", None);
/// c.line(0.0, 0.0, 100.0, 50.0, "#999", 1.0);
/// c.text(50.0, 25.0, 10.0, "hello");
/// let svg = c.finish();
/// assert!(svg.contains("<circle"));
/// assert!(svg.contains("hello"));
/// ```
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    body: String,
}

impl SvgCanvas {
    /// Creates a canvas of the given pixel dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive and finite.
    #[must_use]
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "canvas dimensions must be positive"
        );
        SvgCanvas {
            width,
            height,
            body: String::new(),
        }
    }

    /// Adds a filled (and optionally stroked) circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str, stroke: Option<(&str, f64)>) {
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="{fill}""#
        );
        if let Some((color, w)) = stroke {
            let _ = write!(self.body, r#" stroke="{color}" stroke-width="{w:.2}""#);
        }
        self.body.push_str("/>\n");
    }

    /// Adds an unfilled circle outline.
    pub fn ring(&mut self, cx: f64, cy: f64, r: f64, stroke: &str, width: f64, opacity: f64) {
        let _ = writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" fill="none" stroke="{stroke}" stroke-width="{width:.2}" stroke-opacity="{opacity:.2}"/>"#
        );
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        );
    }

    /// Adds an axis-aligned rectangle outline.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, stroke: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="none" stroke="{stroke}"/>"#
        );
    }

    /// Adds a filled square centered at `(cx, cy)` (the clusterhead
    /// marker, matching the paper's "dark squares").
    pub fn square(&mut self, cx: f64, cy: f64, half: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}" stroke="black" stroke-width="1"/>"#,
            cx - half,
            cy - half,
            2.0 * half,
            2.0 * half
        );
    }

    /// Adds a polyline through the given pre-formatted points string
    /// (`"x1,y1 x2,y2 ..."`).
    pub fn polyline(&mut self, points: &str, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<polyline points="{points}" fill="none" stroke="{stroke}" stroke-width="{width:.2}"/>"#
        );
    }

    /// Adds a text label anchored middle.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size:.1}" font-family="sans-serif" text-anchor="middle">{escaped}</text>"#
        );
    }

    /// Serializes the document.
    #[must_use]
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

impl ClusterScene {
    /// Renders the scene as an SVG document: clusterheads as dark
    /// squares (as in the paper's Figure 1), members as circles
    /// colored by cluster, gateways with a double outline, undecided
    /// nodes hollow, plus optional affiliation spokes and range disks.
    #[must_use]
    pub fn to_svg(&self, style: &SvgStyle) -> String {
        let scale = style.width_px / self.field.width().max(1e-9);
        let height_px = self.field.height() * scale;
        let mut canvas = SvgCanvas::new(style.width_px, height_px.max(1.0));
        // y grows upward in sim coordinates, downward in SVG.
        let to_px = |p: mobic_geom::Vec2| -> (f64, f64) {
            (
                (p.x - self.field.min().x) * scale,
                height_px - (p.y - self.field.min().y) * scale,
            )
        };
        canvas.rect(0.0, 0.0, style.width_px, height_px, "#333");

        let heads = self.clusterheads();
        let color_of = |head_idx: usize| -> &str {
            let rank = heads.iter().position(|&h| h == head_idx).unwrap_or(0);
            &style.palette[rank % style.palette.len()]
        };

        if style.draw_range_disks {
            for &h in &heads {
                let (x, y) = to_px(self.positions[h]);
                canvas.ring(x, y, self.tx_range_m * scale, color_of(h), 1.0, 0.35);
            }
        }
        if style.draw_spokes {
            for i in 0..self.len() {
                if let Some(h) = self.affiliation(i) {
                    let (x1, y1) = to_px(self.positions[i]);
                    let (x2, y2) = to_px(self.positions[h]);
                    canvas.line(x1, y1, x2, y2, "#bbb", 0.7);
                }
            }
        }
        for i in 0..self.len() {
            let (x, y) = to_px(self.positions[i]);
            match self.roles[i] {
                mobic_core::Role::Clusterhead => {
                    canvas.square(x, y, style.node_radius_px, color_of(i));
                }
                mobic_core::Role::Member { .. } => {
                    let fill = self.affiliation(i).map_or("#999", color_of);
                    canvas.circle(x, y, style.node_radius_px * 0.8, fill, Some(("black", 0.6)));
                    if self.is_gateway(i) {
                        canvas.ring(x, y, style.node_radius_px * 1.6, "black", 1.0, 0.9);
                    }
                }
                mobic_core::Role::Undecided => {
                    canvas.circle(
                        x,
                        y,
                        style.node_radius_px * 0.8,
                        "white",
                        Some(("black", 1.0)),
                    );
                }
            }
        }
        canvas.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::Role;
    use mobic_geom::{Rect, Vec2};
    use mobic_net::NodeId;

    fn scene() -> ClusterScene {
        ClusterScene {
            field: Rect::square(100.0),
            tx_range_m: 40.0,
            positions: vec![
                Vec2::new(20.0, 20.0),
                Vec2::new(50.0, 20.0),
                Vec2::new(80.0, 80.0),
            ],
            roles: vec![
                Role::Clusterhead,
                Role::Member { ch: NodeId::new(0) },
                Role::Undecided,
            ],
        }
    }

    #[test]
    fn svg_structure() {
        let svg = scene().to_svg(&SvgStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // One square (the head), one member circle, one undecided, one
        // spoke, one range ring, one border rect.
        assert_eq!(svg.matches("<rect").count(), 2, "border + head square");
        assert!(svg.matches("<circle").count() >= 3);
        assert_eq!(svg.matches("<line").count(), 1);
    }

    #[test]
    fn svg_respects_style_toggles() {
        let style = SvgStyle {
            draw_range_disks: false,
            draw_spokes: false,
            ..SvgStyle::default()
        };
        let svg = scene().to_svg(&style);
        assert_eq!(svg.matches("<line").count(), 0);
        assert!(!svg.contains("stroke-opacity"));
    }

    #[test]
    fn canvas_escapes_text() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.text(5.0, 5.0, 8.0, "a<b&c>");
        let svg = c.finish();
        assert!(svg.contains("a&lt;b&amp;c&gt;"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_canvas_panics() {
        let _ = SvgCanvas::new(0.0, 10.0);
    }

    #[test]
    fn aspect_ratio_follows_field() {
        let mut s = scene();
        s.field = Rect::new(200.0, 100.0);
        let svg = s.to_svg(&SvgStyle::default());
        assert!(
            svg.contains(r#"width="640" height="320""#),
            "{}",
            &svg[..120]
        );
    }
}
