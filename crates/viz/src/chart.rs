//! SVG line charts — enough to render the paper's figures from the
//! experiment CSVs (multiple series, axes, ticks, legend).

use std::fmt::Write as _;

use crate::SvgCanvas;

/// One named data series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points; need not be sorted but usually are.
    pub points: Vec<(f64, f64)>,
}

/// A multi-series line chart with axes, tick labels and a legend.
///
/// # Examples
///
/// ```
/// use mobic_viz::{LineChart, Series};
///
/// let chart = LineChart::new("CS vs Tx", "Tx (m)", "clusterhead changes")
///     .with_series(Series {
///         name: "lcc".into(),
///         points: vec![(50.0, 1556.0), (150.0, 359.0), (250.0, 136.0)],
///     })
///     .with_series(Series {
///         name: "mobic".into(),
///         points: vec![(50.0, 1711.0), (150.0, 317.0), (250.0, 121.0)],
///     });
/// let svg = chart.to_svg(640.0, 400.0);
/// assert!(svg.contains("polyline"));
/// assert!(svg.contains("mobic"));
/// ```
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl LineChart {
    /// Creates an empty chart.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    #[must_use]
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Number of series.
    #[must_use]
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// `true` if the chart has no series.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Data bounds over all series: `(x_min, x_max, y_min, y_max)`.
    /// `None` if there are no points at all.
    #[must_use]
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut b: Option<(f64, f64, f64, f64)> = None;
        for s in &self.series {
            for &(x, y) in &s.points {
                b = Some(match b {
                    None => (x, x, y, y),
                    Some((x0, x1, y0, y1)) => (x0.min(x), x1.max(x), y0.min(y), y1.max(y)),
                });
            }
        }
        b
    }

    /// Renders the chart to an SVG document of the given pixel size.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are not positive.
    #[must_use]
    pub fn to_svg(&self, width: f64, height: f64) -> String {
        const PALETTE: [&str; 6] = [
            "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#17becf",
        ];
        let mut c = SvgCanvas::new(width, height);
        let (ml, mr, mt, mb) = (70.0, 20.0, 36.0, 56.0); // margins
        let plot_w = (width - ml - mr).max(1.0);
        let plot_h = (height - mt - mb).max(1.0);
        let Some((x0, x1, y0raw, y1raw)) = self.bounds() else {
            c.text(width / 2.0, height / 2.0, 14.0, "(no data)");
            return c.finish();
        };
        // Always include y = 0 and pad the top 5%.
        let y0 = y0raw.min(0.0);
        let y1 = if y1raw > y0 {
            y1raw + 0.05 * (y1raw - y0)
        } else {
            y0 + 1.0
        };
        let xspan = if x1 > x0 { x1 - x0 } else { 1.0 };
        let yspan = y1 - y0;
        let px = |x: f64| ml + (x - x0) / xspan * plot_w;
        let py = |y: f64| mt + plot_h - (y - y0) / yspan * plot_h;

        // Frame + title + axis labels.
        c.rect(ml, mt, plot_w, plot_h, "#888");
        c.text(width / 2.0, mt - 12.0, 14.0, &self.title);
        c.text(width / 2.0, height - 8.0, 12.0, &self.x_label);
        c.text(16.0, mt - 12.0, 11.0, &self.y_label);

        // Ticks (5 per axis).
        for k in 0..=5 {
            let fx = x0 + xspan * f64::from(k) / 5.0;
            let fy = y0 + yspan * f64::from(k) / 5.0;
            let tx = px(fx);
            let ty = py(fy);
            c.line(tx, mt + plot_h, tx, mt + plot_h + 4.0, "#888", 1.0);
            c.text(tx, mt + plot_h + 18.0, 10.0, &trim_num(fx));
            c.line(ml - 4.0, ty, ml, ty, "#888", 1.0);
            c.text(ml - 26.0, ty + 3.0, 10.0, &trim_num(fy));
        }

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let mut pts = String::new();
            for &(x, y) in &s.points {
                let _ = write!(pts, "{:.1},{:.1} ", px(x), py(y));
            }
            c.polyline(pts.trim(), color, 2.0);
            for &(x, y) in &s.points {
                c.circle(px(x), py(y), 2.5, color, None);
            }
            // Legend entry.
            let ly = mt + 14.0 + 16.0 * i as f64;
            c.line(
                ml + plot_w - 108.0,
                ly - 4.0,
                ml + plot_w - 88.0,
                ly - 4.0,
                color,
                2.0,
            );
            c.text(ml + plot_w - 48.0, ly, 11.0, &s.name);
        }
        c.finish()
    }
}

/// Compact tick label: no trailing zeros, thousands unchanged.
fn trim_num(v: f64) -> String {
    if v.abs() >= 100.0 || v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        LineChart::new("t", "x", "y")
            .with_series(Series {
                name: "a".into(),
                points: vec![(0.0, 0.0), (10.0, 100.0)],
            })
            .with_series(Series {
                name: "b".into(),
                points: vec![(0.0, 50.0), (10.0, 25.0)],
            })
    }

    #[test]
    fn bounds_cover_all_series() {
        assert_eq!(chart().bounds(), Some((0.0, 10.0, 0.0, 100.0)));
        assert_eq!(LineChart::new("t", "x", "y").bounds(), None);
    }

    #[test]
    fn svg_contains_expected_elements() {
        let svg = chart().to_svg(640.0, 400.0);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
        // 4 data point markers.
        assert!(svg.matches("<circle").count() >= 4);
        // Tick labels include the extremes.
        assert!(svg.contains(">0<") || svg.contains(">0</text>"));
        assert!(svg.contains(">10<") || svg.contains(">10</text>"));
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let svg = LineChart::new("t", "x", "y").to_svg(200.0, 100.0);
        assert!(svg.contains("(no data)"));
        assert!(LineChart::new("t", "x", "y").is_empty());
        assert_eq!(chart().len(), 2);
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let c = LineChart::new("t", "x", "y").with_series(Series {
            name: "flat".into(),
            points: vec![(5.0, 7.0)],
        });
        let svg = c.to_svg(300.0, 200.0);
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"));
    }
}
