//! Visualization of MANET cluster structure: publication-style SVG
//! snapshots and quick terminal (ASCII) views.
//!
//! The paper's Figure 1 is a hand-drawn schematic of a clustered
//! topology; this crate renders the same picture from live simulation
//! state — clusterheads, members with affiliation spokes, gateways,
//! and the transmission-radius disks — either as standalone SVG files
//! or as ASCII art for terminal debugging.
//!
//! # Examples
//!
//! ```
//! use mobic_core::Role;
//! use mobic_geom::{Rect, Vec2};
//! use mobic_net::NodeId;
//! use mobic_viz::{ClusterScene, SvgStyle};
//!
//! let scene = ClusterScene {
//!     field: Rect::square(200.0),
//!     tx_range_m: 80.0,
//!     positions: vec![Vec2::new(50.0, 50.0), Vec2::new(100.0, 60.0)],
//!     roles: vec![Role::Clusterhead, Role::Member { ch: NodeId::new(0) }],
//! };
//! let svg = scene.to_svg(&SvgStyle::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("</svg>"));
//! let text = scene.to_ascii(40, 20);
//! assert!(text.contains('#')); // the clusterhead marker
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod chart;
mod scene;
mod sparkline;
mod svg;

pub use chart::{LineChart, Series};
pub use scene::ClusterScene;
pub use sparkline::sparkline;
pub use svg::{SvgCanvas, SvgStyle};
