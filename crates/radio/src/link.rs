//! Link budgets and the [`Radio`] abstraction.

use serde::{Deserialize, Serialize};

use crate::{Db, Dbm, Propagation};

/// The power-related configuration of a transceiver: transmit power,
/// antenna gains and receive threshold.
///
/// ns-2's 2001-era WaveLAN defaults are available as
/// [`LinkBudget::ns2_default`]; the paper's experiments instead sweep
/// the transmission range directly, which [`Radio::with_range`]
/// supports by solving for the transmit power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Transmit power.
    pub tx_power: Dbm,
    /// Transmitter antenna gain.
    pub tx_gain: Db,
    /// Receiver antenna gain.
    pub rx_gain: Db,
    /// Minimum received power for successful MAC-layer reception
    /// (ns-2's `RXThresh_`).
    pub rx_threshold: Dbm,
}

impl LinkBudget {
    /// ns-2 wireless defaults: `Pt = 0.28183815 W` (≈ 24.5 dBm),
    /// unity antenna gains, `RXThresh = 3.652e-10 W` (≈ −64.4 dBm) —
    /// the combination that gives a 250 m range under two-ray ground.
    #[must_use]
    pub fn ns2_default() -> Self {
        LinkBudget {
            tx_power: Dbm::from_watts(0.281_838_15),
            tx_gain: Db::ZERO,
            rx_gain: Db::ZERO,
            rx_threshold: Dbm::from_watts(3.652e-10),
        }
    }

    /// The maximum tolerable path loss: everything the budget affords
    /// between transmit power (plus gains) and the receive threshold.
    #[must_use]
    pub fn max_path_loss(&self) -> Db {
        (self.tx_power + self.tx_gain + self.rx_gain) - self.rx_threshold
    }
}

/// A radio: a [`LinkBudget`] paired with a [`Propagation`] model,
/// answering the two questions the network layer asks:
/// *at what power does a packet arrive?* and *does it arrive at all?*
///
/// # Examples
///
/// ```
/// use mobic_radio::{FreeSpace, Radio};
///
/// let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
/// assert!((radio.nominal_range_m() - 100.0).abs() < 0.01);
/// let rx = radio.receive(50.0).expect("within range");
/// assert!(rx >= radio.budget().rx_threshold);
/// ```
#[derive(Debug, Clone)]
pub struct Radio<P> {
    budget: LinkBudget,
    propagation: P,
}

impl<P: Propagation> Radio<P> {
    /// Creates a radio from an explicit budget and propagation model.
    #[must_use]
    pub fn new(propagation: P, budget: LinkBudget) -> Self {
        Radio {
            budget,
            propagation,
        }
    }

    /// Creates a radio whose **nominal range** (distance at which the
    /// mean received power exactly meets the receive threshold) is
    /// `range_m` meters, by solving the link budget for the transmit
    /// power. This mirrors the paper's experiments, which sweep the
    /// transmission range `Tx` from 10 to 250 m.
    ///
    /// The receive threshold is kept at the ns-2 default; only the
    /// transmit power varies, exactly as one would configure a real
    /// radio (or ns-2's `Phy/WirelessPhy set Pt_`).
    ///
    /// # Panics
    ///
    /// Panics if `range_m` is not positive and finite.
    #[must_use]
    pub fn with_range(propagation: P, range_m: f64) -> Self {
        assert!(
            range_m > 0.0 && range_m.is_finite(),
            "range must be positive and finite, got {range_m}"
        );
        let mut budget = LinkBudget::ns2_default();
        let needed = propagation.mean_path_loss(range_m);
        budget.tx_power = budget.rx_threshold + needed - budget.tx_gain - budget.rx_gain;
        Radio {
            budget,
            propagation,
        }
    }

    /// The link budget.
    #[must_use]
    pub fn budget(&self) -> &LinkBudget {
        &self.budget
    }

    /// The propagation model.
    #[must_use]
    pub fn propagation(&self) -> &P {
        &self.propagation
    }

    /// Mean received power at `distance_m` (no shadowing), regardless
    /// of threshold.
    #[must_use]
    pub fn mean_rx_power(&self, distance_m: f64) -> Dbm {
        self.budget.tx_power + self.budget.tx_gain + self.budget.rx_gain
            - self.propagation.mean_path_loss(distance_m)
    }

    /// Per-packet received power at `distance_m` (including shadowing
    /// if the model has it), regardless of threshold.
    #[must_use]
    pub fn rx_power(&self, distance_m: f64) -> Dbm {
        self.budget.tx_power + self.budget.tx_gain + self.budget.rx_gain
            - self.propagation.path_loss(distance_m)
    }

    /// Attempts reception at `distance_m`: returns the received power
    /// if it meets the receive threshold, `None` otherwise.
    #[must_use]
    pub fn receive(&self, distance_m: f64) -> Option<Dbm> {
        let p = self.rx_power(distance_m);
        (p >= self.budget.rx_threshold).then_some(p)
    }

    /// Batched [`receive`](Self::receive) over a slice of distance
    /// lanes: fills `power[i]` with the received power (dBm) at
    /// `distances_m[i]` and sets bit `i` of the `mask` bitmask iff that
    /// power meets the receive threshold — exactly the lanes for which
    /// the scalar `receive` would return `Some`. Both output vectors
    /// are cleared and resized to fit, reusing their allocations across
    /// calls.
    ///
    /// Only valid for deterministic propagation models, where
    /// `path_loss` coincides with `mean_path_loss` (debug-asserted);
    /// callers must check [`Propagation::is_deterministic`] and keep
    /// stochastic models on the scalar path. The per-lane arithmetic is
    /// `((tx_power + tx_gain) + rx_gain) - loss`, the same operation
    /// sequence as [`Self::rx_power`], with the gain sum hoisted out of
    /// the loop — each lane is bit-identical to the scalar call.
    pub fn receive_batch(&self, distances_m: &[f64], power: &mut Vec<f64>, mask: &mut Vec<u64>) {
        debug_assert!(
            self.propagation.is_deterministic(),
            "receive_batch requires a deterministic propagation model"
        );
        let gain_sum = (self.budget.tx_power + self.budget.tx_gain + self.budget.rx_gain).dbm();
        let threshold = self.budget.rx_threshold.dbm();
        // lint:hot-path receive-batch kernel: amortized-zero-alloc resizes only
        power.clear();
        power.resize(distances_m.len(), 0.0);
        self.propagation.mean_path_loss_slice(distances_m, power);
        mask.clear();
        mask.resize(distances_m.len().div_ceil(64), 0);
        for (i, lane) in power.iter_mut().enumerate() {
            let p = gain_sum - *lane;
            *lane = p;
            mask[i / 64] |= u64::from(p >= threshold) << (i % 64);
        }
        // lint:end-hot-path
    }

    /// The nominal communication range: the distance at which the
    /// *mean* received power equals the receive threshold, found by
    /// bisection over the (monotone) mean path loss.
    ///
    /// Returns 0 if even point-blank transmission is below threshold.
    #[must_use]
    pub fn nominal_range_m(&self) -> f64 {
        let max_loss = self.budget.max_path_loss();
        if self
            .propagation
            .mean_path_loss(crate::models::MIN_DISTANCE_M)
            > max_loss
        {
            return 0.0;
        }
        // Bracket: grow upper bound until loss exceeds budget.
        let mut lo = crate::models::MIN_DISTANCE_M;
        let mut hi = 1.0;
        let mut guard = 0;
        while self.propagation.mean_path_loss(hi) <= max_loss {
            lo = hi;
            hi *= 2.0;
            guard += 1;
            if guard > 60 {
                return f64::INFINITY; // budget unreachable: infinite range
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.propagation.mean_path_loss(mid) <= max_loss {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FreeSpace, LogDistance, Shadowed, TwoRayGround};
    use mobic_sim::rng::SeedSplitter;

    #[test]
    fn ns2_budget_constants() {
        let b = LinkBudget::ns2_default();
        assert!((b.tx_power.dbm() - 24.5).abs() < 0.01, "{}", b.tx_power);
        assert!(
            (b.rx_threshold.dbm() - -64.37).abs() < 0.01,
            "{}",
            b.rx_threshold
        );
        assert!((b.max_path_loss().db() - 88.87).abs() < 0.05);
    }

    #[test]
    fn ns2_default_two_ray_range_is_250m() {
        // The canonical ns-2 sanity check: default budget + two-ray
        // ground = 250 m nominal range.
        let radio = Radio::new(TwoRayGround::ns2_default(), LinkBudget::ns2_default());
        let r = radio.nominal_range_m();
        assert!((r - 250.0).abs() < 2.0, "range {r}");
    }

    #[test]
    fn with_range_solves_inverse_problem() {
        for target in [10.0, 50.0, 100.0, 250.0] {
            let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), target);
            let r = radio.nominal_range_m();
            assert!(
                (r - target).abs() < target * 1e-3,
                "target {target} got {r}"
            );
        }
    }

    #[test]
    fn with_range_two_ray() {
        for target in [50.0, 150.0, 250.0] {
            let radio = Radio::with_range(TwoRayGround::ns2_default(), target);
            let r = radio.nominal_range_m();
            assert!(
                (r - target).abs() < target * 1e-3,
                "target {target} got {r}"
            );
        }
    }

    #[test]
    fn receive_threshold_boundary() {
        let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
        assert!(radio.receive(99.9).is_some());
        assert!(radio.receive(100.1).is_none());
        // Exactly at range: mean power equals threshold (within fp).
        let at = radio.mean_rx_power(100.0);
        assert!((at.dbm() - radio.budget().rx_threshold.dbm()).abs() < 1e-6);
    }

    #[test]
    fn rx_power_decreases_with_distance() {
        let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 250.0);
        let mut prev = Dbm::new(f64::INFINITY);
        for d in [1.0, 10.0, 50.0, 100.0, 200.0, 249.0] {
            let p = radio.rx_power(d);
            assert!(p < prev, "not decreasing at {d}");
            prev = p;
        }
    }

    #[test]
    fn mobility_metric_identity_under_friis() {
        // The paper's metric: 10·log10(Pr_new/Pr_old). Under Friis this
        // equals 20·log10(d_old/d_new) — verify via the radio API.
        let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 250.0);
        let d_old = 100.0;
        let d_new = 50.0; // moved closer
        let m_rel = radio.rx_power(d_new).dbm() - radio.rx_power(d_old).dbm();
        assert!((m_rel - 20.0 * (d_old / d_new).log10()).abs() < 1e-9);
        assert!(m_rel > 0.0, "approaching nodes have positive M_rel");
    }

    #[test]
    fn shadowed_radio_receive_is_noisy_but_thresholded() {
        let sh = Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            8.0,
            SeedSplitter::new(2).stream("sh", 0),
        );
        let radio = Radio::with_range(sh, 100.0);
        // At 95% of range, deterministic reception is certain; with
        // sigma=8 dB some packets drop and some arrive.
        let mut received = 0;
        let n = 500;
        for _ in 0..n {
            if radio.receive(95.0).is_some() {
                received += 1;
            }
        }
        assert!(received > 50 && received < n, "received {received}/{n}");
    }

    #[test]
    fn zero_range_when_budget_insufficient() {
        let mut budget = LinkBudget::ns2_default();
        budget.tx_power = Dbm::new(-200.0);
        let radio = Radio::new(FreeSpace::at_frequency(914.0e6), budget);
        assert_eq!(radio.nominal_range_m(), 0.0);
        assert!(radio.receive(1.0).is_none());
    }

    #[test]
    fn log_distance_radio() {
        let radio = Radio::with_range(LogDistance::calibrated_to_friis(914.0e6, 4.0), 100.0);
        let r = radio.nominal_range_m();
        assert!((r - 100.0).abs() < 0.1, "{r}");
        // Steeper decay: at 2x range the deficit is ~12 dB.
        let deficit = radio.budget().rx_threshold - radio.mean_rx_power(200.0);
        assert!((deficit.db() - 12.04).abs() < 0.05, "{deficit}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn with_range_rejects_zero() {
        let _ = Radio::with_range(FreeSpace::at_frequency(914.0e6), 0.0);
    }

    #[test]
    fn receive_batch_matches_scalar_at_range_boundaries() {
        // Lanes straddling the nominal range, including the exact
        // boundary and degenerate distances: the bitmask must select
        // exactly the scalar path's receiver set, and every power lane
        // must be bit-identical to the scalar rx_power.
        let radios: Vec<Radio<Box<dyn Propagation>>> = vec![
            Radio::with_range(Box::new(FreeSpace::at_frequency(914.0e6)), 100.0),
            Radio::with_range(Box::new(TwoRayGround::ns2_default()), 250.0),
            Radio::with_range(
                Box::new(LogDistance::calibrated_to_friis(914.0e6, 4.0)),
                100.0,
            ),
        ];
        let mut power = Vec::new();
        let mut mask = Vec::new();
        for radio in &radios {
            let r = radio.nominal_range_m();
            let distances: Vec<f64> = (0..130)
                .map(|i| r * (i as f64) / 64.0)
                .chain([0.0, r - 1e-9, r, r + 1e-9, r * 10.0])
                .collect();
            radio.receive_batch(&distances, &mut power, &mut mask);
            assert_eq!(power.len(), distances.len());
            assert_eq!(mask.len(), distances.len().div_ceil(64));
            for (i, &d) in distances.iter().enumerate() {
                let bit = mask[i / 64] >> (i % 64) & 1 == 1;
                assert_eq!(bit, radio.receive(d).is_some(), "mask lane at d = {d}");
                assert_eq!(
                    power[i].to_bits(),
                    radio.rx_power(d).dbm().to_bits(),
                    "power lane at d = {d}"
                );
            }
        }
    }

    #[test]
    fn receive_batch_reuses_buffers_and_handles_empty() {
        let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 100.0);
        let mut power = vec![f64::NAN; 7];
        let mut mask = vec![u64::MAX; 3];
        radio.receive_batch(&[], &mut power, &mut mask);
        assert!(power.is_empty());
        assert!(mask.is_empty());
        // A second, larger call after a smaller one must not keep
        // stale lanes or mask bits around.
        radio.receive_batch(&[50.0], &mut power, &mut mask);
        let lanes: Vec<f64> = (0..65).map(|i| 90.0 + i as f64 * 0.25).collect();
        radio.receive_batch(&lanes, &mut power, &mut mask);
        assert_eq!(power.len(), 65);
        assert_eq!(mask.len(), 2);
        for (i, &d) in lanes.iter().enumerate() {
            let bit = mask[i / 64] >> (i % 64) & 1 == 1;
            assert_eq!(bit, radio.receive(d).is_some(), "lane at d = {d}");
        }
        assert_eq!(mask[1] >> 1, 0, "bits beyond the lane count stay clear");
    }
}
