//! Radio propagation models and link-budget utilities.
//!
//! The MOBIC mobility metric is computed from **received signal power**
//! — `M_rel = 10·log10(RxPr_new / RxPr_old)` — so the propagation model
//! is the physical substrate of the whole paper. This crate provides
//! the models ns-2's wireless extension shipped in 2001 plus the
//! standard stochastic extensions:
//!
//! * [`FreeSpace`] — Friis free-space propagation (`Pr ∝ 1/d²`), the
//!   model the paper's metric derivation assumes (§3.1);
//! * [`TwoRayGround`] — ns-2's default outdoor model: Friis below the
//!   crossover distance, `Pr ∝ 1/d⁴` beyond it;
//! * [`LogDistance`] — generic path-loss-exponent model;
//! * [`Shadowed`] — log-normal shadowing wrapper adding zero-mean
//!   Gaussian dB noise, for robustness experiments (the paper's §3.1
//!   notes fading/shadowing are *not* modeled; we keep that the
//!   default but make the extension available);
//! * [`Nakagami`] — Nakagami-m fast fading (m = 1 is Rayleigh), the
//!   other stochastic channel ns-2 shipped;
//! * [`Radio`] — a transmitter/receiver pair description (power,
//!   antenna gains, thresholds) with link-budget helpers that convert
//!   between transmit power and communication range.
//!
//! # Units
//!
//! Strongly typed: [`Dbm`] for absolute powers, [`Db`] for ratios and
//! losses. Conversions to/from milliwatts are explicit.
//!
//! # Examples
//!
//! ```
//! use mobic_radio::{Dbm, FreeSpace, Propagation, Radio};
//!
//! // A 914 MHz WaveLAN-like radio configured for a 250 m range.
//! let radio = Radio::with_range(FreeSpace::at_frequency(914.0e6), 250.0);
//! assert!(radio.receive(200.0).is_some());
//! assert!(radio.receive(251.0).is_none());
//! // Received power falls with distance.
//! let p100 = radio.receive(100.0).unwrap();
//! let p200 = radio.receive(200.0).unwrap();
//! assert!(p100 > p200);
//! // Inverse-square: doubling distance costs ~6.02 dB.
//! assert!(((p100 - p200).db() - 6.02).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;
mod models;
mod units;

pub use link::{LinkBudget, Radio};
pub use models::{
    FreeSpace, LogDistance, Nakagami, Propagation, PropagationState, Shadowed, TwoRayGround,
};
pub use units::{Db, Dbm, Milliwatts};

/// Speed of light in vacuum (m/s), used by Friis' formula.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;
