//! Propagation models.

use std::cell::RefCell;

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::{Db, SPEED_OF_LIGHT};

/// Minimum distance (m) used when evaluating path loss, guarding the
/// `log(d)` singularity at `d = 0` (two nodes at the same point).
pub(crate) const MIN_DISTANCE_M: f64 = 0.1;

/// Serializable propagation-model state for checkpoint/restore.
///
/// Stochastic wrappers ([`Shadowed`], [`Nakagami`]) consume RNG words
/// per packet, so resuming a run byte-identically requires rewinding
/// their stream to the captured word position. The position is stored
/// as a `(hi, lo)` pair of `u64`s because `u128` does not survive a
/// JSON round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PropagationState {
    /// Deterministic model: nothing to capture.
    Stateless,
    /// ChaCha word position of the model's RNG stream.
    Rng {
        /// `(pos >> 64, pos as u64)` of the stream's word position.
        word_pos: (u64, u64),
    },
}

fn word_pos_parts(rng: &ChaCha12Rng) -> (u64, u64) {
    let pos = rng.get_word_pos();
    ((pos >> 64) as u64, pos as u64)
}

fn join_word_pos(hi: u64, lo: u64) -> u128 {
    (u128::from(hi) << 64) | u128::from(lo)
}

/// A large-scale radio propagation model mapping distance to path loss.
///
/// `mean_path_loss` is the deterministic (distance-only) component used
/// for link-budget planning; `path_loss` is what a given packet
/// actually experiences and may be stochastic (shadowing). For purely
/// deterministic models the two coincide (the default implementation).
pub trait Propagation {
    /// Deterministic mean path loss at `distance_m` meters.
    ///
    /// Implementations must be monotonically non-decreasing in
    /// distance — the link-budget range solver relies on it.
    fn mean_path_loss(&self, distance_m: f64) -> Db;

    /// Per-packet path loss at `distance_m` meters (may include random
    /// shadowing). Defaults to the mean.
    fn path_loss(&self, distance_m: f64) -> Db {
        self.mean_path_loss(distance_m)
    }

    /// Whether `path_loss` is a pure function of distance (no random
    /// shadowing or fading), i.e. every query returns exactly
    /// `mean_path_loss` regardless of any internal RNG state.
    ///
    /// Spatial-index delivery fast paths rely on this: with a
    /// deterministic model the receiver set is exactly the nominal
    /// range disk, so a range query plus slack can never miss a true
    /// receiver. Stochastic models must answer `false` so callers fall
    /// back to the exhaustive scan.
    fn is_deterministic(&self) -> bool {
        true
    }

    /// Batched [`mean_path_loss`](Self::mean_path_loss): writes the raw
    /// dB loss of each distance lane in `distances_m` into the matching
    /// lane of `out`.
    ///
    /// The default delegates lane-by-lane to the scalar method, so the
    /// output is byte-identical to per-candidate calls by construction;
    /// the value of the method is that a `dyn Propagation` caller pays
    /// one virtual dispatch per broadcast instead of one per candidate,
    /// and a monomorphized override can expose a branch-free loop the
    /// compiler can autovectorize. Overrides must stay bitwise identical
    /// to the scalar calls — the delivery-kernel equivalence tests pin
    /// this.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    fn mean_path_loss_slice(&self, distances_m: &[f64], out: &mut [f64]) {
        assert_eq!(distances_m.len(), out.len(), "lane count mismatch");
        for (o, &d) in out.iter_mut().zip(distances_m) {
            *o = self.mean_path_loss(d).db();
        }
    }

    /// Captures the model's RNG state for a checkpoint. Deterministic
    /// models have nothing to capture and return
    /// [`PropagationState::Stateless`] (the default).
    fn save_state(&self) -> PropagationState {
        PropagationState::Stateless
    }

    /// Restores state captured by [`save_state`](Self::save_state), so
    /// the next per-packet draw continues exactly where the saved run
    /// left off. Deterministic models ignore the call (the default).
    /// Takes `&self` because stochastic models keep their RNG behind a
    /// [`RefCell`] — the same interior mutability `path_loss` uses.
    fn restore_state(&self, state: &PropagationState) {
        let _ = state;
    }
}

/// Friis free-space propagation: `Pr/Pt = (λ / 4πd)²`, the
/// inverse-square law the paper's mobility-metric derivation assumes
/// (§3.1). Path loss in dB is `20·log10(4πd/λ)`.
///
/// # Examples
///
/// ```
/// use mobic_radio::{FreeSpace, Propagation};
///
/// let fs = FreeSpace::at_frequency(914.0e6);
/// // Doubling the distance adds 20·log10(2) ≈ 6.02 dB of loss.
/// let delta = fs.mean_path_loss(200.0) - fs.mean_path_loss(100.0);
/// assert!((delta.db() - 6.0206).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreeSpace {
    wavelength_m: f64,
    system_loss: Db,
}

impl FreeSpace {
    /// Creates the model from a carrier wavelength in meters.
    ///
    /// # Panics
    ///
    /// Panics if `wavelength_m` is not positive and finite.
    #[must_use]
    pub fn new(wavelength_m: f64) -> Self {
        assert!(
            wavelength_m > 0.0 && wavelength_m.is_finite(),
            "wavelength must be positive and finite"
        );
        FreeSpace {
            wavelength_m,
            system_loss: Db::ZERO,
        }
    }

    /// Creates the model from a carrier frequency in Hz (e.g.
    /// `914.0e6` for the 914 MHz WaveLAN radio ns-2 modeled).
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not positive and finite.
    #[must_use]
    pub fn at_frequency(freq_hz: f64) -> Self {
        assert!(
            freq_hz > 0.0 && freq_hz.is_finite(),
            "frequency must be positive"
        );
        Self::new(SPEED_OF_LIGHT / freq_hz)
    }

    /// Adds a fixed system loss `L` (ns-2's `L_` parameter).
    #[must_use]
    pub fn with_system_loss(mut self, loss: Db) -> Self {
        self.system_loss = loss;
        self
    }

    /// The carrier wavelength (m).
    #[must_use]
    pub fn wavelength(&self) -> f64 {
        self.wavelength_m
    }
}

impl Propagation for FreeSpace {
    fn mean_path_loss(&self, distance_m: f64) -> Db {
        let d = distance_m.max(MIN_DISTANCE_M);
        let ratio = 4.0 * std::f64::consts::PI * d / self.wavelength_m;
        Db::new(20.0 * ratio.log10()) + self.system_loss
    }
}

/// Two-ray ground-reflection model — ns-2's default for outdoor
/// scenarios: Friis up to the crossover distance
/// `d_c = 4π·h_t·h_r / λ`, then `Pr = Pt·Gt·Gr·h_t²·h_r² / d⁴`
/// (inverse fourth power).
///
/// # Examples
///
/// ```
/// use mobic_radio::{Propagation, TwoRayGround};
///
/// let m = TwoRayGround::ns2_default();
/// // Beyond crossover, doubling distance costs ~12 dB (d^4 law).
/// let d0 = 2.0 * m.crossover_distance();
/// let delta = m.mean_path_loss(2.0 * d0) - m.mean_path_loss(d0);
/// assert!((delta.db() - 12.04).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoRayGround {
    friis: FreeSpace,
    tx_height_m: f64,
    rx_height_m: f64,
}

impl TwoRayGround {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if heights are not positive and finite, or the
    /// wavelength is invalid.
    #[must_use]
    pub fn new(wavelength_m: f64, tx_height_m: f64, rx_height_m: f64) -> Self {
        assert!(
            tx_height_m > 0.0
                && rx_height_m > 0.0
                && tx_height_m.is_finite()
                && rx_height_m.is_finite(),
            "antenna heights must be positive and finite"
        );
        TwoRayGround {
            friis: FreeSpace::new(wavelength_m),
            tx_height_m,
            rx_height_m,
        }
    }

    /// ns-2's wireless defaults: 914 MHz carrier, 1.5 m antennas —
    /// the configuration behind the paper's simulations.
    #[must_use]
    pub fn ns2_default() -> Self {
        Self::new(SPEED_OF_LIGHT / 914.0e6, 1.5, 1.5)
    }

    /// The crossover distance `4π·h_t·h_r/λ` where the model switches
    /// from Friis to fourth-power decay.
    #[must_use]
    pub fn crossover_distance(&self) -> f64 {
        4.0 * std::f64::consts::PI * self.tx_height_m * self.rx_height_m / self.friis.wavelength()
    }
}

impl Propagation for TwoRayGround {
    fn mean_path_loss(&self, distance_m: f64) -> Db {
        let d = distance_m.max(MIN_DISTANCE_M);
        if d <= self.crossover_distance() {
            self.friis.mean_path_loss(d)
        } else {
            // PL = 40 log10(d) − 20 log10(h_t · h_r)
            Db::new(40.0 * d.log10() - 20.0 * (self.tx_height_m * self.rx_height_m).log10())
        }
    }
}

/// Log-distance path loss: `PL(d) = PL(d₀) + 10·n·log10(d/d₀)`.
///
/// The exponent `n` interpolates between free space (`n = 2`) and
/// heavily obstructed environments (`n = 4–6`); the paper's motivating
/// example of "a street with dense foliage" (§3.1) is the `n > 2`
/// regime.
///
/// # Examples
///
/// ```
/// use mobic_radio::{Db, LogDistance, Propagation};
///
/// let m = LogDistance::new(3.0, 1.0, Db::new(40.0));
/// assert_eq!(m.mean_path_loss(1.0), Db::new(40.0));
/// assert_eq!(m.mean_path_loss(10.0), Db::new(70.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDistance {
    exponent: f64,
    reference_m: f64,
    reference_loss: Db,
}

impl LogDistance {
    /// Creates the model with path-loss exponent `exponent`, reference
    /// distance `reference_m` and loss `reference_loss` at the
    /// reference distance.
    ///
    /// # Panics
    ///
    /// Panics if the exponent is negative or the reference distance is
    /// not positive.
    #[must_use]
    pub fn new(exponent: f64, reference_m: f64, reference_loss: Db) -> Self {
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be non-negative"
        );
        assert!(
            reference_m > 0.0 && reference_m.is_finite(),
            "reference distance must be positive"
        );
        LogDistance {
            exponent,
            reference_m,
            reference_loss,
        }
    }

    /// A free-space-calibrated log-distance model: matches Friis at
    /// the 1 m reference, then decays with the given exponent.
    #[must_use]
    pub fn calibrated_to_friis(freq_hz: f64, exponent: f64) -> Self {
        let fs = FreeSpace::at_frequency(freq_hz);
        Self::new(exponent, 1.0, fs.mean_path_loss(1.0))
    }

    /// The path-loss exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl Propagation for LogDistance {
    fn mean_path_loss(&self, distance_m: f64) -> Db {
        let d = distance_m.max(MIN_DISTANCE_M);
        self.reference_loss + Db::new(10.0 * self.exponent * (d / self.reference_m).log10())
    }
}

/// Log-normal shadowing wrapper: adds zero-mean Gaussian noise (in dB)
/// with standard deviation `sigma_db` to every per-packet path-loss
/// query, leaving the mean untouched.
///
/// The paper explicitly excludes fading/shadowing (§3.1, footnote); we
/// provide it for the robustness ablation (experiment X6/X7 territory:
/// how noisy can RxPr get before MOBIC's advantage erodes?).
///
/// # Examples
///
/// ```
/// use mobic_radio::{FreeSpace, Propagation, Shadowed};
/// use mobic_sim::rng::SeedSplitter;
///
/// let sh = Shadowed::new(
///     FreeSpace::at_frequency(914.0e6),
///     4.0,
///     SeedSplitter::new(1).stream("shadow", 0),
/// );
/// let mean = sh.mean_path_loss(100.0);
/// let noisy = sh.path_loss(100.0);
/// assert_ne!(mean, noisy); // almost surely
/// ```
#[derive(Debug)]
pub struct Shadowed<P> {
    inner: P,
    sigma_db: f64,
    rng: RefCell<ChaCha12Rng>,
}

impl<P: Propagation> Shadowed<P> {
    /// Wraps `inner` with shadowing of standard deviation `sigma_db`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative or non-finite.
    #[must_use]
    pub fn new(inner: P, sigma_db: f64, rng: ChaCha12Rng) -> Self {
        assert!(
            sigma_db >= 0.0 && sigma_db.is_finite(),
            "sigma must be non-negative and finite"
        );
        Shadowed {
            inner,
            sigma_db,
            rng: RefCell::new(rng),
        }
    }

    /// The wrapped deterministic model.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The shadowing standard deviation in dB.
    #[must_use]
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    fn gauss(&self) -> f64 {
        let mut rng = self.rng.borrow_mut();
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl<P: Propagation> Propagation for Shadowed<P> {
    fn mean_path_loss(&self, distance_m: f64) -> Db {
        self.inner.mean_path_loss(distance_m)
    }

    fn path_loss(&self, distance_m: f64) -> Db {
        self.inner.path_loss(distance_m) + Db::new(self.sigma_db * self.gauss())
    }

    fn is_deterministic(&self) -> bool {
        // σ = 0 degenerates to the wrapped model.
        self.sigma_db == 0.0 && self.inner.is_deterministic()
    }

    fn save_state(&self) -> PropagationState {
        PropagationState::Rng {
            word_pos: word_pos_parts(&self.rng.borrow()),
        }
    }

    fn restore_state(&self, state: &PropagationState) {
        if let PropagationState::Rng { word_pos: (hi, lo) } = *state {
            self.rng.borrow_mut().set_word_pos(join_word_pos(hi, lo));
        }
    }
}

/// Nakagami-*m* fast fading wrapper — ns-2's other stochastic channel.
/// The received *power* under Nakagami-m fading is Gamma-distributed
/// with shape `m` and unit mean, multiplying the deterministic
/// path-gain; `m = 1` is Rayleigh fading, larger `m` approaches the
/// deterministic channel.
///
/// Like [`Shadowed`], the mean path loss stays deterministic for
/// link-budget planning while per-packet draws fluctuate.
///
/// # Examples
///
/// ```
/// use mobic_radio::{FreeSpace, Nakagami, Propagation};
/// use mobic_sim::rng::SeedSplitter;
///
/// let ch = Nakagami::new(
///     FreeSpace::at_frequency(914.0e6),
///     1.0, // Rayleigh
///     SeedSplitter::new(1).stream("fading", 0),
/// );
/// assert_ne!(ch.path_loss(100.0), ch.mean_path_loss(100.0));
/// ```
#[derive(Debug)]
pub struct Nakagami<P> {
    inner: P,
    m: f64,
    rng: RefCell<ChaCha12Rng>,
}

impl<P: Propagation> Nakagami<P> {
    /// Wraps `inner` with Nakagami-`m` fading.
    ///
    /// # Panics
    ///
    /// Panics if `m < 0.5` (the distribution's validity bound).
    #[must_use]
    pub fn new(inner: P, m: f64, rng: ChaCha12Rng) -> Self {
        assert!(m >= 0.5 && m.is_finite(), "Nakagami m must be >= 0.5");
        Nakagami {
            inner,
            m,
            rng: RefCell::new(rng),
        }
    }

    /// The fading figure `m`.
    #[must_use]
    pub fn m(&self) -> f64 {
        self.m
    }

    /// The wrapped deterministic model.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Draws a Gamma(shape = m, scale = 1/m) variate (unit mean) via
    /// the Marsaglia–Tsang method (with the shape<1 boost).
    fn gamma_unit_mean(&self) -> f64 {
        fn gauss(rng: &mut ChaCha12Rng) -> f64 {
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        }
        let mut rng = self.rng.borrow_mut();
        let shape = self.m;
        let boosted = if shape < 1.0 { shape + 1.0 } else { shape };
        let d = boosted - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let sample = loop {
            let x = gauss(&mut rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen();
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                break d * v;
            }
        };
        let sample = if shape < 1.0 {
            let u: f64 = rng.gen();
            sample * u.powf(1.0 / shape)
        } else {
            sample
        };
        // Scale to unit mean: Gamma(shape=m, scale=1/m).
        sample / self.m
    }
}

impl<P: Propagation> Propagation for Nakagami<P> {
    fn mean_path_loss(&self, distance_m: f64) -> Db {
        self.inner.mean_path_loss(distance_m)
    }

    fn path_loss(&self, distance_m: f64) -> Db {
        // Multiplicative unit-mean power fading = additive dB term.
        let fade = self.gamma_unit_mean().max(1e-12);
        self.inner.path_loss(distance_m) - Db::new(10.0 * fade.log10())
    }

    fn is_deterministic(&self) -> bool {
        false
    }

    fn save_state(&self) -> PropagationState {
        PropagationState::Rng {
            word_pos: word_pos_parts(&self.rng.borrow()),
        }
    }

    fn restore_state(&self, state: &PropagationState) {
        if let PropagationState::Rng { word_pos: (hi, lo) } = *state {
            self.rng.borrow_mut().set_word_pos(join_word_pos(hi, lo));
        }
    }
}

impl<P: Propagation + ?Sized> Propagation for &P {
    fn mean_path_loss(&self, distance_m: f64) -> Db {
        (**self).mean_path_loss(distance_m)
    }

    fn path_loss(&self, distance_m: f64) -> Db {
        (**self).path_loss(distance_m)
    }

    fn is_deterministic(&self) -> bool {
        (**self).is_deterministic()
    }

    fn mean_path_loss_slice(&self, distances_m: &[f64], out: &mut [f64]) {
        (**self).mean_path_loss_slice(distances_m, out);
    }

    fn save_state(&self) -> PropagationState {
        (**self).save_state()
    }

    fn restore_state(&self, state: &PropagationState) {
        (**self).restore_state(state);
    }
}

impl<P: Propagation + ?Sized> Propagation for Box<P> {
    fn mean_path_loss(&self, distance_m: f64) -> Db {
        (**self).mean_path_loss(distance_m)
    }

    fn path_loss(&self, distance_m: f64) -> Db {
        (**self).path_loss(distance_m)
    }

    fn is_deterministic(&self) -> bool {
        (**self).is_deterministic()
    }

    fn mean_path_loss_slice(&self, distances_m: &[f64], out: &mut [f64]) {
        (**self).mean_path_loss_slice(distances_m, out);
    }

    fn save_state(&self) -> PropagationState {
        (**self).save_state()
    }

    fn restore_state(&self, state: &PropagationState) {
        (**self).restore_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    #[test]
    fn friis_inverse_square() {
        let fs = FreeSpace::at_frequency(914.0e6);
        // 10x distance = +20 dB loss.
        let delta = fs.mean_path_loss(1000.0) - fs.mean_path_loss(100.0);
        assert!((delta.db() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn friis_reference_value() {
        // At 914 MHz (λ ≈ 0.328 m), PL(100 m) = 20·log10(4π·100/0.328) ≈ 71.7 dB.
        let fs = FreeSpace::at_frequency(914.0e6);
        let pl = fs.mean_path_loss(100.0).db();
        assert!((pl - 71.67).abs() < 0.05, "pl = {pl}");
    }

    #[test]
    fn friis_system_loss_adds() {
        let fs = FreeSpace::at_frequency(914.0e6);
        let lossy = fs.with_system_loss(Db::new(3.0));
        let delta = lossy.mean_path_loss(50.0) - fs.mean_path_loss(50.0);
        assert!((delta.db() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_is_guarded() {
        let fs = FreeSpace::at_frequency(914.0e6);
        assert_eq!(fs.mean_path_loss(0.0), fs.mean_path_loss(MIN_DISTANCE_M));
    }

    #[test]
    fn slice_loss_is_bit_identical_to_scalar_calls() {
        let distances: Vec<f64> = (0..257).map(|i| i as f64 * 3.7).collect();
        let models: Vec<Box<dyn Propagation>> = vec![
            Box::new(FreeSpace::at_frequency(914.0e6)),
            Box::new(TwoRayGround::new(0.328, 1.5, 1.5)),
            Box::new(LogDistance::new(3.0, 1.0, Db::new(31.7))),
        ];
        let mut out = vec![0.0; distances.len()];
        for model in &models {
            model.mean_path_loss_slice(&distances, &mut out);
            for (&d, &lane) in distances.iter().zip(&out) {
                let scalar = model.mean_path_loss(d).db();
                assert_eq!(scalar.to_bits(), lane.to_bits(), "d = {d}");
            }
        }
    }

    #[test]
    fn two_ray_crossover_value() {
        // d_c = 4π·1.5·1.5/λ with λ = c/914 MHz ≈ 0.3280 m → ≈ 86.2 m.
        let m = TwoRayGround::ns2_default();
        assert!(
            (m.crossover_distance() - 86.2).abs() < 0.5,
            "{}",
            m.crossover_distance()
        );
    }

    #[test]
    fn two_ray_matches_friis_below_crossover() {
        let m = TwoRayGround::ns2_default();
        let fs = FreeSpace::at_frequency(914.0e6);
        for d in [1.0, 10.0, 50.0, 80.0] {
            assert_eq!(m.mean_path_loss(d), fs.mean_path_loss(d));
        }
    }

    #[test]
    fn two_ray_fourth_power_beyond_crossover() {
        let m = TwoRayGround::ns2_default();
        let d0 = 200.0;
        let delta = m.mean_path_loss(2.0 * d0) - m.mean_path_loss(d0);
        assert!((delta.db() - 40.0 * 2f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn two_ray_is_continuous_enough_at_crossover() {
        // ns-2's two-ray has a small jump at crossover; ours should be
        // within a fraction of a dB.
        let m = TwoRayGround::ns2_default();
        let dc = m.crossover_distance();
        let below = m.mean_path_loss(dc * 0.999).db();
        let above = m.mean_path_loss(dc * 1.001).db();
        assert!(
            (below - above).abs() < 0.5,
            "jump {} dB",
            (below - above).abs()
        );
    }

    #[test]
    fn log_distance_exponent() {
        let m = LogDistance::new(4.0, 1.0, Db::new(40.0));
        let delta = m.mean_path_loss(100.0) - m.mean_path_loss(10.0);
        assert!((delta.db() - 40.0).abs() < 1e-9);
        assert_eq!(m.exponent(), 4.0);
    }

    #[test]
    fn log_distance_calibrated_matches_friis_at_reference() {
        let m = LogDistance::calibrated_to_friis(914.0e6, 2.0);
        let fs = FreeSpace::at_frequency(914.0e6);
        assert!((m.mean_path_loss(1.0) - fs.mean_path_loss(1.0)).db().abs() < 1e-9);
        // With n=2 it matches Friis everywhere.
        assert!(
            (m.mean_path_loss(123.0) - fs.mean_path_loss(123.0))
                .db()
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn monotonicity_of_all_models() {
        let fs = FreeSpace::at_frequency(914.0e6);
        let tr = TwoRayGround::ns2_default();
        let ld = LogDistance::calibrated_to_friis(914.0e6, 3.5);
        let mut prev = (Db::new(-1e9), Db::new(-1e9), Db::new(-1e9));
        for i in 1..500 {
            let d = i as f64;
            let cur = (
                fs.mean_path_loss(d),
                tr.mean_path_loss(d),
                ld.mean_path_loss(d),
            );
            assert!(
                cur.0 >= prev.0 && cur.1 >= prev.1 && cur.2 >= prev.2,
                "non-monotone at {d}"
            );
            prev = cur;
        }
    }

    #[test]
    fn shadowing_mean_and_spread() {
        let sh = Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            6.0,
            SeedSplitter::new(5).stream("sh", 0),
        );
        let mean_pl = sh.mean_path_loss(100.0).db();
        let n = 5000;
        let samples: Vec<f64> = (0..n).map(|_| sh.path_loss(100.0).db()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - mean_pl).abs() < 0.3, "mean {mean} vs {mean_pl}");
        assert!((var.sqrt() - 6.0).abs() < 0.3, "sigma {}", var.sqrt());
    }

    #[test]
    fn shadowing_zero_sigma_is_deterministic() {
        let sh = Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            0.0,
            SeedSplitter::new(5).stream("sh", 1),
        );
        assert_eq!(sh.path_loss(100.0), sh.mean_path_loss(100.0));
        assert_eq!(sh.sigma_db(), 0.0);
    }

    #[test]
    fn nakagami_unit_mean_and_spread() {
        let ch = Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            1.0,
            SeedSplitter::new(9).stream("nak", 0),
        );
        assert_eq!(ch.m(), 1.0);
        let mean_pl = ch.mean_path_loss(100.0).db();
        // Average *linear* received-power factor must be ~1 (unit-mean
        // fading): E[10^((mean_pl - pl)/10)] ≈ 1.
        let n = 20_000;
        let mut linear_sum = 0.0;
        for _ in 0..n {
            let pl = ch.path_loss(100.0).db();
            linear_sum += 10f64.powf((mean_pl - pl) / 10.0);
        }
        let mean_factor = linear_sum / f64::from(n);
        assert!(
            (mean_factor - 1.0).abs() < 0.05,
            "mean fading factor {mean_factor}"
        );
    }

    #[test]
    fn nakagami_high_m_approaches_deterministic() {
        let calm = Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            50.0,
            SeedSplitter::new(9).stream("nak", 1),
        );
        let wild = Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            1.0,
            SeedSplitter::new(9).stream("nak", 2),
        );
        let spread = |ch: &Nakagami<FreeSpace>| -> f64 {
            let mean = ch.mean_path_loss(100.0).db();
            (0..2000)
                .map(|_| (ch.path_loss(100.0).db() - mean).powi(2))
                .sum::<f64>()
                / 2000.0
        };
        assert!(spread(&calm) < spread(&wild) / 5.0);
    }

    #[test]
    fn nakagami_sub_unity_shape_works() {
        let ch = Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            0.5,
            SeedSplitter::new(9).stream("nak", 3),
        );
        for _ in 0..100 {
            let pl = ch.path_loss(50.0);
            assert!(pl.db().is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "0.5")]
    fn nakagami_rejects_tiny_m() {
        let _ = Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            0.2,
            SeedSplitter::new(9).stream("nak", 4),
        );
    }

    #[test]
    fn trait_object_and_reference_impls() {
        let fs = FreeSpace::at_frequency(914.0e6);
        let by_ref: &dyn Propagation = &fs;
        assert_eq!(by_ref.mean_path_loss(10.0), fs.mean_path_loss(10.0));
        assert!(by_ref.is_deterministic());
        let boxed: Box<dyn Propagation> = Box::new(fs);
        assert_eq!(boxed.mean_path_loss(10.0), fs.mean_path_loss(10.0));
        assert!(boxed.is_deterministic());
    }

    #[test]
    fn determinism_capability_flags() {
        assert!(FreeSpace::at_frequency(914.0e6).is_deterministic());
        assert!(TwoRayGround::ns2_default().is_deterministic());
        assert!(LogDistance::calibrated_to_friis(914.0e6, 3.0).is_deterministic());
        let sh = Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            4.0,
            SeedSplitter::new(1).stream("sh", 0),
        );
        assert!(!sh.is_deterministic());
        // Degenerate σ = 0 shadowing is behaviorally deterministic.
        let flat = Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            0.0,
            SeedSplitter::new(1).stream("sh", 1),
        );
        assert!(flat.is_deterministic());
        let nak = Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            5.0,
            SeedSplitter::new(1).stream("nak", 0),
        );
        assert!(!nak.is_deterministic());
        // The capability forwards through trait objects.
        let boxed: Box<dyn Propagation> = Box::new(Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            4.0,
            SeedSplitter::new(1).stream("sh", 2),
        ));
        assert!(!boxed.is_deterministic());
    }

    #[test]
    fn save_restore_resumes_shadowing_stream_exactly() {
        let make = || {
            Shadowed::new(
                FreeSpace::at_frequency(914.0e6),
                6.0,
                SeedSplitter::new(11).stream("sh", 0),
            )
        };
        let reference = make();
        let resumed = make();
        // Burn a prefix on both, capture, then burn extra draws on the
        // resumed copy before rewinding it.
        for _ in 0..73 {
            let _ = reference.path_loss(100.0);
            let _ = resumed.path_loss(100.0);
        }
        let state = resumed.save_state();
        assert!(!matches!(state, PropagationState::Stateless));
        for _ in 0..19 {
            let _ = resumed.path_loss(100.0);
        }
        resumed.restore_state(&state);
        for i in 0..200 {
            assert_eq!(
                reference.path_loss(100.0),
                resumed.path_loss(100.0),
                "draw {i} diverged after restore"
            );
        }
    }

    #[test]
    fn save_restore_resumes_nakagami_stream_exactly() {
        let make = || {
            Nakagami::new(
                FreeSpace::at_frequency(914.0e6),
                0.7, // shape < 1 exercises the boost path's extra draws
                SeedSplitter::new(12).stream("nak", 0),
            )
        };
        let reference = make();
        let resumed = make();
        for _ in 0..41 {
            let _ = reference.path_loss(80.0);
            let _ = resumed.path_loss(80.0);
        }
        let state = resumed.save_state();
        for _ in 0..7 {
            let _ = resumed.path_loss(80.0);
        }
        resumed.restore_state(&state);
        for i in 0..200 {
            assert_eq!(
                reference.path_loss(80.0),
                resumed.path_loss(80.0),
                "draw {i} diverged after restore"
            );
        }
    }

    #[test]
    fn save_state_forwards_through_trait_objects() {
        let boxed: Box<dyn Propagation> = Box::new(Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            4.0,
            SeedSplitter::new(13).stream("sh", 0),
        ));
        // Without explicit delegation the Box impl would shadow the
        // concrete save_state with the Stateless default.
        assert!(!matches!(boxed.save_state(), PropagationState::Stateless));
        let by_ref: &dyn Propagation = &*boxed;
        assert!(!matches!(by_ref.save_state(), PropagationState::Stateless));
        // Deterministic models really are stateless through the same path.
        let det: Box<dyn Propagation> = Box::new(FreeSpace::at_frequency(914.0e6));
        assert!(matches!(det.save_state(), PropagationState::Stateless));
        det.restore_state(&PropagationState::Stateless); // no-op, must not panic
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_wavelength_panics() {
        let _ = FreeSpace::new(0.0);
    }

    #[test]
    #[should_panic(expected = "heights")]
    fn bad_heights_panic() {
        let _ = TwoRayGround::new(0.33, 0.0, 1.5);
    }
}
