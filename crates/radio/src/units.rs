//! Strongly typed power and ratio units.

use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute power level in dBm (decibels relative to 1 mW).
///
/// Adding a [`Db`] ratio to a `Dbm` yields another `Dbm`; subtracting
/// two `Dbm` values yields the [`Db`] ratio between them — exactly the
/// arithmetic of link budgets.
///
/// # Examples
///
/// ```
/// use mobic_radio::{Db, Dbm, Milliwatts};
///
/// let tx = Dbm::new(20.0);             // 100 mW
/// let path_loss = Db::new(80.0);
/// let rx = tx - path_loss;             // -60 dBm
/// assert_eq!(rx, Dbm::new(-60.0));
/// assert!((Milliwatts::from(tx).value() - 100.0).abs() < 1e-9);
/// assert_eq!(tx - rx, path_loss);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Dbm(f64);

impl Dbm {
    /// Creates a power level from a dBm value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN. (±∞ is allowed: −∞ dBm is zero power.)
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "power level cannot be NaN");
        Dbm(value)
    }

    /// The raw dBm value.
    #[must_use]
    pub const fn dbm(self) -> f64 {
        self.0
    }

    /// Converts from linear milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is negative or NaN.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(
            mw >= 0.0 && !mw.is_nan(),
            "power must be non-negative, got {mw}"
        );
        Dbm(10.0 * mw.log10())
    }

    /// Converts to linear milliwatts.
    #[must_use]
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts from linear watts.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or NaN.
    #[must_use]
    pub fn from_watts(w: f64) -> Self {
        Self::from_milliwatts(w * 1000.0)
    }

    /// Converts to linear watts.
    #[must_use]
    pub fn to_watts(self) -> f64 {
        self.to_milliwatts() / 1000.0
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

impl Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db::new(self.0 - rhs.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm::new(self.0 + rhs.db())
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm::new(self.0 - rhs.db())
    }
}

/// A power *ratio* (gain or loss) in decibels.
///
/// # Examples
///
/// ```
/// use mobic_radio::Db;
///
/// let g = Db::from_linear(100.0);
/// assert_eq!(g, Db::new(20.0));
/// assert!((g.to_linear() - 100.0).abs() < 1e-9);
/// assert_eq!(g + Db::new(3.0), Db::new(23.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Db(f64);

impl Db {
    /// Zero ratio (unity gain).
    pub const ZERO: Db = Db(0.0);

    /// Creates a ratio from a dB value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "dB ratio cannot be NaN");
        Db(value)
    }

    /// The raw dB value.
    #[must_use]
    pub const fn db(self) -> f64 {
        self.0
    }

    /// Converts a linear power ratio to dB.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is negative or NaN.
    #[must_use]
    pub fn from_linear(ratio: f64) -> Self {
        assert!(
            ratio >= 0.0 && !ratio.is_nan(),
            "ratio must be non-negative"
        );
        Db(10.0 * ratio.log10())
    }

    /// Converts to a linear power ratio.
    #[must_use]
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db::new(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        *self = *self + rhs;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db::new(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        *self = *self - rhs;
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db::new(-self.0)
    }
}

/// Linear power in milliwatts; mostly a conversion helper so call
/// sites read unambiguously.
///
/// # Examples
///
/// ```
/// use mobic_radio::{Dbm, Milliwatts};
/// let p = Milliwatts::new(200.0);
/// let dbm: Dbm = p.into();
/// assert!((dbm.dbm() - 23.0103).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Milliwatts(f64);

impl Milliwatts {
    /// Creates a linear power.
    ///
    /// # Panics
    ///
    /// Panics if negative or NaN.
    #[must_use]
    pub fn new(mw: f64) -> Self {
        assert!(mw >= 0.0 && !mw.is_nan(), "power must be non-negative");
        Milliwatts(mw)
    }

    /// The value in milliwatts.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl From<Dbm> for Milliwatts {
    fn from(d: Dbm) -> Self {
        Milliwatts(d.to_milliwatts())
    }
}

impl From<Milliwatts> for Dbm {
    fn from(m: Milliwatts) -> Self {
        Dbm::from_milliwatts(m.0)
    }
}

impl fmt::Display for Milliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mW", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_roundtrip() {
        for mw in [0.001, 1.0, 100.0, 281.8] {
            let d = Dbm::from_milliwatts(mw);
            assert!((d.to_milliwatts() - mw).abs() < 1e-9 * mw.max(1.0));
        }
    }

    #[test]
    fn reference_points() {
        assert_eq!(Dbm::from_milliwatts(1.0), Dbm::new(0.0));
        assert!((Dbm::from_milliwatts(2.0).dbm() - 3.0103).abs() < 1e-3);
        assert_eq!(Dbm::from_watts(1.0), Dbm::new(30.0));
    }

    #[test]
    fn zero_power_is_negative_infinity() {
        let z = Dbm::from_milliwatts(0.0);
        assert_eq!(z.dbm(), f64::NEG_INFINITY);
        assert_eq!(z.to_milliwatts(), 0.0);
    }

    #[test]
    fn link_budget_arithmetic() {
        let tx = Dbm::new(24.5);
        let pl = Db::new(100.0);
        let gain = Db::new(2.0);
        let rx = tx - pl + gain;
        assert!((rx.dbm() - -73.5).abs() < 1e-12);
        assert_eq!(tx - rx, Db::new(98.0));
    }

    #[test]
    fn db_linear_roundtrip() {
        for r in [0.5, 1.0, 2.0, 1e6] {
            let d = Db::from_linear(r);
            assert!((d.to_linear() - r).abs() < 1e-9 * r);
        }
        assert_eq!(Db::from_linear(10.0), Db::new(10.0));
        assert_eq!(-Db::new(3.0), Db::new(-3.0));
    }

    #[test]
    fn db_add_sub_assign() {
        let mut d = Db::new(10.0);
        d += Db::new(5.0);
        assert_eq!(d, Db::new(15.0));
        d -= Db::new(20.0);
        assert_eq!(d, Db::new(-5.0));
    }

    #[test]
    fn milliwatts_conversions() {
        let m = Milliwatts::new(100.0);
        let d: Dbm = m.into();
        assert_eq!(d, Dbm::new(20.0));
        let back: Milliwatts = d.into();
        assert!((back.value() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_dbm_panics() {
        let _ = Dbm::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_milliwatts_panic() {
        let _ = Milliwatts::new(-1.0);
    }

    #[test]
    fn ordering() {
        assert!(Dbm::new(-60.0) > Dbm::new(-70.0));
        assert!(Db::new(3.0) > Db::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dbm::new(-64.5).to_string(), "-64.50 dBm");
        assert_eq!(Db::new(6.0).to_string(), "6.00 dB");
        assert_eq!(Milliwatts::new(1.5).to_string(), "1.5000 mW");
    }
}
