//! Per-rule fixture coverage: every rule has a violating fixture that
//! must produce unsuppressed findings (so the binary would exit
//! nonzero on it) and a clean twin that must produce none.

use mobic_lint::{deps, rules_for_path, scan_source, Finding, RuleId};

/// Scans a fixture as if it lived at `as_path`, so the path-scoped
/// rule set matches the rule under test.
fn scan_fixture(source: &str, as_path: &str) -> Vec<Finding> {
    let rules = rules_for_path(as_path);
    assert!(
        !rules.is_empty(),
        "fixture path {as_path} must map to a non-empty rule set"
    );
    scan_source(as_path, source, &rules)
}

fn unsuppressed(findings: &[Finding], rule: RuleId) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .count()
}

#[test]
fn nondeterministic_iteration_fixture_pair() {
    let bad = scan_fixture(
        include_str!("fixtures/nondeterministic_iteration_bad.rs"),
        "crates/core/src/fixture.rs",
    );
    // Two container types across several lines; at minimum the two
    // `use`-line hits.
    assert!(
        unsuppressed(&bad, RuleId::NondeterministicIteration) >= 2,
        "{bad:?}"
    );

    let clean = scan_fixture(
        include_str!("fixtures/nondeterministic_iteration_clean.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn ambient_entropy_fixture_pair() {
    let bad = scan_fixture(
        include_str!("fixtures/ambient_entropy_bad.rs"),
        "crates/sim/src/fixture.rs",
    );
    // thread_rng, Instant (x2 incl. elapsed binding line), SystemTime,
    // env::var — at least 4 distinct sites.
    assert!(unsuppressed(&bad, RuleId::AmbientEntropy) >= 4, "{bad:?}");

    let clean = scan_fixture(
        include_str!("fixtures/ambient_entropy_clean.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn panic_in_lib_fixture_pair() {
    let bad = scan_fixture(
        include_str!("fixtures/panic_in_lib_bad.rs"),
        "crates/net/src/fixture.rs",
    );
    // unwrap, expect, panic!, todo!, unimplemented! — five sites.
    assert!(unsuppressed(&bad, RuleId::PanicInLib) >= 5, "{bad:?}");

    let clean = scan_fixture(
        include_str!("fixtures/panic_in_lib_clean.rs"),
        "crates/net/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn raw_artifact_write_fixture_pair() {
    let bad = scan_fixture(
        include_str!("fixtures/raw_artifact_write_bad.rs"),
        "crates/metrics/src/fixture.rs",
    );
    assert!(unsuppressed(&bad, RuleId::RawArtifactWrite) >= 3, "{bad:?}");

    let clean = scan_fixture(
        include_str!("fixtures/raw_artifact_write_clean.rs"),
        "crates/metrics/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn snapshot_raw_write_fixture_pair() {
    // Checkpoint snapshots are restart-critical artifacts: a torn
    // `.ckpt` silently degrades a resume to a cold start, so the
    // raw-artifact-write rule must cover the snapshot-writer shape
    // under `crates/scenario/` (header + payload, rotation) exactly as
    // it covers result/trace writers.
    let bad = scan_fixture(
        include_str!("fixtures/snapshot_raw_write_bad.rs"),
        "crates/scenario/src/fixture.rs",
    );
    // File::create, fs::write, OpenOptions append — three sites.
    assert!(unsuppressed(&bad, RuleId::RawArtifactWrite) >= 3, "{bad:?}");

    let clean = scan_fixture(
        include_str!("fixtures/snapshot_raw_write_clean.rs"),
        "crates/scenario/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn hot_path_alloc_fixture_pair() {
    let bad = scan_fixture(
        include_str!("fixtures/hot_path_alloc_bad.rs"),
        "crates/geom/src/fixture.rs",
    );
    // `.collect`, `vec!`, and the return-type `Vec` builder inside the
    // region; `with_capacity` outside must NOT fire.
    assert!(unsuppressed(&bad, RuleId::HotPathAlloc) >= 2, "{bad:?}");
    assert!(
        bad.iter().all(|f| f.line >= 9),
        "nothing outside the region may fire: {bad:?}"
    );

    let clean = scan_fixture(
        include_str!("fixtures/hot_path_alloc_clean.rs"),
        "crates/geom/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn hot_path_calendar_fixture_pair() {
    // The calendar-queue push/pop shape: the bad twin grows the wheel
    // and formats a label inside the region (`Vec::new`, `format!`,
    // `.collect` → at least 3 sites); the clean twin pre-sizes at
    // construction and only moves entries between existing buffers.
    let bad = scan_fixture(
        include_str!("fixtures/hot_path_calendar_bad.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(unsuppressed(&bad, RuleId::HotPathAlloc) >= 3, "{bad:?}");

    let clean = scan_fixture(
        include_str!("fixtures/hot_path_calendar_clean.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn sweepd_path_fixture_pair() {
    // Clocks and host parallelism are blessed under `crates/sweepd/`
    // (operator infrastructure), so the "clean" fixture is full of
    // tokens that would fire anywhere result-affecting…
    let clean = scan_fixture(
        include_str!("fixtures/sweepd_blessed_clean.rs"),
        "crates/sweepd/src/fixture.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
    // …and the same source under a result-affecting path proves the
    // exemption is the path, not the tokens.
    let elsewhere = scan_fixture(
        include_str!("fixtures/sweepd_blessed_clean.rs"),
        "crates/sim/src/fixture.rs",
    );
    assert!(
        unsuppressed(&elsewhere, RuleId::AmbientEntropy) >= 2,
        "{elsewhere:?}"
    );

    // Raw artifact writes stay banned for sweepd: the cell cache must
    // go through `write_atomic`.
    let bad = scan_fixture(
        include_str!("fixtures/sweepd_raw_write_bad.rs"),
        "crates/sweepd/src/fixture.rs",
    );
    assert!(unsuppressed(&bad, RuleId::RawArtifactWrite) >= 2, "{bad:?}");
}

#[test]
fn suppression_fixture_covers_the_grammar() {
    let findings = scan_fixture(
        include_str!("fixtures/suppression.rs"),
        "crates/net/src/fixture.rs",
    );
    let suppressed: Vec<&Finding> = findings.iter().filter(|f| f.suppressed).collect();
    // Cases 1 and 2: suppressed, each carrying its reason.
    assert_eq!(suppressed.len(), 2, "{findings:?}");
    assert!(suppressed.iter().all(|f| f
        .reason
        .as_deref()
        .is_some_and(|r| r.contains("suppression"))));
    // Case 3: reasonless allow → directive error + live finding.
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::Directive && f.message.contains("mandatory reason")));
    // Case 4: unknown rule → directive error.
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::Directive && f.message.contains("unknown rule")));
    // The reasonless and unknown-rule unwraps stay live.
    assert_eq!(
        unsuppressed(&findings, RuleId::PanicInLib),
        2,
        "{findings:?}"
    );
}

#[test]
fn hot_path_region_syntax_fixtures() {
    let nested = scan_fixture(
        include_str!("fixtures/hot_path_nested.rs"),
        "crates/geom/src/fixture.rs",
    );
    assert!(nested
        .iter()
        .any(|f| f.rule == RuleId::HotPathAlloc && f.message.contains("nested")));

    let unclosed = scan_fixture(
        include_str!("fixtures/hot_path_unclosed.rs"),
        "crates/geom/src/fixture.rs",
    );
    assert!(unclosed
        .iter()
        .any(|f| f.rule == RuleId::HotPathAlloc && f.message.contains("without an open")));
    assert!(unclosed
        .iter()
        .any(|f| f.rule == RuleId::HotPathAlloc && f.message.contains("never closed")));
}

#[test]
fn dep_policy_lockfile_fixtures() {
    let dup = deps::parse_lockfile(include_str!("fixtures/Cargo_dup.lock"));
    assert_eq!(dup.len(), 4);
    let findings = deps::duplicate_version_findings("Cargo.lock", &dup);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("rand"));

    let clean = deps::parse_lockfile(include_str!("fixtures/Cargo_clean.lock"));
    assert!(deps::duplicate_version_findings("Cargo.lock", &clean).is_empty());
}

#[test]
fn violating_fixtures_would_exit_nonzero() {
    // The binary exits nonzero iff `Analysis::is_clean()` is false;
    // prove the link for one representative fixture of each polarity.
    let bad = mobic_lint::Analysis {
        findings: scan_fixture(
            include_str!("fixtures/panic_in_lib_bad.rs"),
            "crates/net/src/fixture.rs",
        ),
        files_scanned: 1,
        notes: vec![],
    };
    assert!(!bad.is_clean());

    let clean = mobic_lint::Analysis {
        findings: scan_fixture(
            include_str!("fixtures/panic_in_lib_clean.rs"),
            "crates/net/src/fixture.rs",
        ),
        files_scanned: 1,
        notes: vec![],
    };
    assert!(clean.is_clean());
}
