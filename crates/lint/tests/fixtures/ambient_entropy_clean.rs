// Fixture: the clean twin of `ambient_entropy_bad.rs` — seeded
// streams only, timing through the blessed profile types. Never
// compiled.
use mobic_sim::rng::SeedSplitter;
use mobic_trace::Stopwatch;

pub fn jitter(seed: u64) -> f64 {
    let _rng = SeedSplitter::new(seed).stream("jitter", 0);
    let sw = Stopwatch::start();
    // "Instant::now" in a string literal must not fire.
    let _msg = "no Instant::now or thread_rng here";
    sw.elapsed_ms()
}
