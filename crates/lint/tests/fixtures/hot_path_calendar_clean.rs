// Fixture: the clean twin of `hot_path_calendar_bad.rs` — bucket
// storage is pre-sized at construction and rebuilt outside the
// region; push/pop only move entries between existing buffers. Never
// compiled.
pub struct Calendar {
    buckets: Vec<Vec<(u64, u64)>>,
    overflow: Vec<(u64, u64)>,
    width_us: u64,
}

impl Calendar {
    pub fn with_profile(cap: usize, width_us: u64) -> Self {
        let mut buckets = Vec::with_capacity(cap.max(8));
        for _ in 0..cap.max(8) {
            buckets.push(Vec::with_capacity(2));
        }
        Calendar {
            buckets,
            overflow: Vec::with_capacity(cap / 4 + 1),
            width_us,
        }
    }

    // lint:hot-path — push/pop reuse the pre-sized wheel
    pub fn push(&mut self, time_us: u64, seq: u64) {
        let slot = (time_us / self.width_us) as usize % self.buckets.len();
        self.buckets[slot].push((time_us, seq));
    }

    pub fn pop(&mut self) -> Option<(u64, u64)> {
        if let Some(entry) = self.overflow.pop() {
            return Some(entry);
        }
        for bucket in &mut self.buckets {
            if !bucket.is_empty() {
                return Some(bucket.swap_remove(0));
            }
        }
        None
    }
    // lint:end-hot-path
}
