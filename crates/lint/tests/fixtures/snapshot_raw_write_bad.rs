// Fixture: a checkpoint writer that violates `raw-artifact-write`.
// A snapshot is the artifact a crashed run resumes from — a torn one
// is worse than none, so raw writes are banned here too. Never compiled.
use std::fs::{File, OpenOptions};
use std::io::Write;

pub fn save_snapshot(dir: &std::path::Path, seq: u64, payload: &[u8]) -> std::io::Result<()> {
    let path = dir.join(format!("ckpt-{seq:020}.ckpt"));
    let mut f = File::create(&path)?;
    f.write_all(payload)?;
    Ok(())
}

pub fn rotate(dir: &std::path::Path, header: &str, payload: &[u8]) -> std::io::Result<()> {
    let path = dir.join("ckpt-latest.ckpt");
    std::fs::write(&path, header)?;
    let mut f = OpenOptions::new().append(true).open(&path)?;
    f.write_all(payload)?;
    Ok(())
}
