// Fixture: the clean twin of `raw_artifact_write_bad.rs` — all
// artifact output goes through the atomic writer. Never compiled.
pub fn persist(path: &str, data: &[u8]) -> std::io::Result<()> {
    // Reads are always fine; only writes are policed.
    let _existing = std::fs::read(path).ok();
    mobic_trace::write_atomic(path, data)
}
