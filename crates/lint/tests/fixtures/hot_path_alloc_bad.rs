// Fixture: violates `hot-path-alloc` inside a marked region; the
// identical allocations outside the region are fine. Never compiled.
pub fn cold_setup(n: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    v.extend(0..n as u32);
    v
}

// lint:hot-path
pub fn per_event(xs: &[u32]) -> Vec<u32> {
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    let mut extra = vec![0u32; 4];
    extra.extend_from_slice(&doubled);
    extra
}
// lint:end-hot-path
