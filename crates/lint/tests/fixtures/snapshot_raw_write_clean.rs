// Fixture: the clean twin of `snapshot_raw_write_bad.rs` — the header
// and payload are assembled in memory and land on disk through one
// `write_atomic` call, so a kill mid-write leaves either the previous
// snapshot or none, never a truncated one. Never compiled.
pub fn save_snapshot(dir: &std::path::Path, seq: u64, payload: &[u8]) -> std::io::Result<()> {
    let path = dir.join(format!("ckpt-{seq:020}.ckpt"));
    let header = format!("{{\"schema\":1,\"len\":{}}}\n", payload.len());
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(payload);
    mobic_trace::write_atomic(&path, &bytes)
}

pub fn prune(dir: &std::path::Path, keep: usize) -> std::io::Result<()> {
    // Listing and deleting stale snapshots is fine; only writes are
    // policed, and removal cannot tear a file.
    let mut names: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    names.sort();
    for old in names.iter().rev().skip(keep) {
        std::fs::remove_file(old)?;
    }
    Ok(())
}
