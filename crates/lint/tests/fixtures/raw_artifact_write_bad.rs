// Fixture: violates `raw-artifact-write` three ways. Never compiled.
use std::fs::{File, OpenOptions};

pub fn persist(path: &str, data: &[u8]) -> std::io::Result<()> {
    let _f = File::create(path)?;
    std::fs::write(path, data)?;
    let _g = OpenOptions::new().append(true).open(path)?;
    Ok(())
}
