// Fixture: violates `ambient-entropy` four ways. Never compiled.
use rand::thread_rng;
use std::time::{Instant, SystemTime};

pub fn jitter() -> f64 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    let _knob = std::env::var("MOBIC_JITTER");
    t0.elapsed().as_secs_f64()
}
