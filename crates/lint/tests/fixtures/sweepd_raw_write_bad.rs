// Fixture: the one rule that stays ON for sweepd — raw artifact
// writes. A cache cell written without `write_atomic` could be left
// truncated by a crash and then served. Never compiled.
pub fn store_cell(path: &str, json: &str) -> std::io::Result<()> {
    std::fs::write(path, json)?;
    let _f = std::fs::File::create(path)?;
    Ok(())
}
