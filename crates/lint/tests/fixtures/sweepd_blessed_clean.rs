// Fixture: exercised under a `crates/sweepd/src/` path, where the
// ambient-entropy rule is off — service code may read the wall clock
// and the host's parallelism (worker pools schedule independent
// cells; result bytes come from `run_scenario` alone). Never
// compiled.
use std::time::Instant;

pub fn pool_size() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

pub fn poll_deadline() -> Instant {
    Instant::now()
}
