// Fixture: a nested `lint:hot-path` open is a region-syntax error.
// Never compiled.
// lint:hot-path
pub fn outer() {}
// lint:hot-path
pub fn inner() {}
// lint:end-hot-path
