// Fixture: exercises the `lint:allow` suppression grammar. Never
// compiled.

// Case 1: valid allow with a reason, on the same line — suppressed.
pub fn same_line(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(panic-in-lib): fixture demonstrates same-line suppression
}

// Case 2: valid allow on the preceding line — suppressed.
pub fn previous_line(x: Option<u32>) -> u32 {
    // lint:allow(panic-in-lib): fixture demonstrates preceding-line suppression
    x.unwrap()
}

// Case 3: missing reason — the allow is rejected (directive error)
// AND the underlying finding stays unsuppressed.
pub fn missing_reason(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(panic-in-lib)
}

// Case 4: unknown rule name — directive error.
pub fn unknown_rule(x: Option<u32>) -> u32 {
    // lint:allow(no-such-rule): typo'd rule names must not silently suppress
    x.unwrap()
}
