// Fixture: violates `nondeterministic-iteration` (scanned as if it
// lived in a result-affecting crate). Never compiled.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.len() + seen.len()
}
