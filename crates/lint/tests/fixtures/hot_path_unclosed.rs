// Fixture: an unclosed `lint:hot-path` region is a region-syntax
// error, and a stray close is another. Never compiled.
// lint:end-hot-path
pub fn stray() {}
// lint:hot-path
pub fn never_closed() {}
