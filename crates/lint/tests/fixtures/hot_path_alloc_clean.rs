// Fixture: the clean twin of `hot_path_alloc_bad.rs` — the region
// reuses caller-owned scratch; allocation happens outside. Never
// compiled.
pub fn cold_setup(n: usize) -> Vec<u32> {
    let mut scratch = Vec::with_capacity(n);
    scratch.extend(0..n as u32);
    scratch
}

// lint:hot-path
pub fn per_event(xs: &[u32], scratch: &mut Vec<u32>) -> u32 {
    scratch.clear();
    for &x in xs {
        scratch.push(x * 2);
    }
    scratch.iter().sum()
}
// lint:end-hot-path
