// Fixture: the clean twin of `panic_in_lib_bad.rs` — typed errors in
// library code; a test module may assert freely. Never compiled.
pub fn load(path: &str) -> std::io::Result<String> {
    let text = std::fs::read_to_string(path)?;
    let first = text
        .lines()
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "empty file"))?;
    // `unwrap_or` and `expect_err` are not panics.
    let _level = first.parse::<u32>().unwrap_or(0);
    Ok(first.to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
