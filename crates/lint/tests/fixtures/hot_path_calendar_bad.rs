// Fixture: a calendar-queue sketch that allocates inside its marked
// push/pop region — the exact class of regression the extended
// `hot-path-alloc` coverage polices. Never compiled.
pub struct Calendar {
    buckets: Vec<Vec<(u64, u64)>>,
    overflow: Vec<(u64, u64)>,
    width_us: u64,
}

// lint:hot-path — calendar push/pop must reuse bucket storage
impl Calendar {
    pub fn push(&mut self, time_us: u64, seq: u64) {
        let slot = (time_us / self.width_us) as usize;
        if slot >= self.buckets.len() {
            // Growing the wheel per push allocates on the hot path.
            self.buckets.push(Vec::new());
        }
        self.buckets[slot % self.buckets.len()].push((time_us, seq));
    }

    pub fn pop(&mut self) -> Option<(u64, u64)> {
        let label = format!("overflow[{}]", self.overflow.len());
        let drained: Vec<(u64, u64)> = self.overflow.iter().copied().collect();
        let _ = (label, drained);
        self.overflow.pop()
    }
}
// lint:end-hot-path
