// Fixture: the clean twin of `nondeterministic_iteration_bad.rs` —
// ordered containers, plus the tokens appearing only in literals and
// comments (which must not fire). Never compiled.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_insert(0) += 1;
    }
    // A HashMap mentioned in a comment is fine.
    let _msg = "so is a HashSet inside a string literal";
    counts.len() + seen.len()
}
