// Fixture: violates `panic-in-lib` on every needle. Never compiled.
pub fn load(path: &str) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let first = text.lines().next().expect("at least one line");
    if first.is_empty() {
        panic!("empty header");
    }
    if first.starts_with('#') {
        todo!();
    }
    unimplemented!()
}
