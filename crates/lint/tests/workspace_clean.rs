//! The self-test behind the acceptance criterion: the live workspace
//! must lint clean, with zero `lint:allow` exceptions outside
//! `crates/bench`/`crates/cli`, and the linter itself must stay
//! dependency-free.

use std::path::PathBuf;

/// Locates the workspace root: the nearest ancestor (of the crate
/// manifest dir when cargo provides it, else the current directory)
/// whose `Cargo.toml` declares `[workspace]`.
fn workspace_root() -> PathBuf {
    let start = option_env!("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .expect("a starting directory");
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        assert!(dir.pop(), "no [workspace] manifest above the test dir");
    }
}

#[test]
fn live_workspace_is_clean() {
    let root = workspace_root();
    let analysis = mobic_lint::scan_workspace(&root).expect("workspace scans");
    let live: Vec<_> = analysis.findings.iter().filter(|f| !f.suppressed).collect();
    assert!(
        live.is_empty(),
        "the workspace must lint clean; unsuppressed findings:\n{live:#?}"
    );
    assert!(
        analysis.files_scanned > 50,
        "scan actually covered the tree"
    );
}

#[test]
fn suppressions_only_in_operator_tooling() {
    let root = workspace_root();
    let analysis = mobic_lint::scan_workspace(&root).expect("workspace scans");
    let misplaced: Vec<_> = analysis
        .findings
        .iter()
        .filter(|f| {
            f.suppressed
                && !(f.file.starts_with("crates/bench/") || f.file.starts_with("crates/cli/"))
        })
        .collect();
    assert!(
        misplaced.is_empty(),
        "`lint:allow` is reserved for operator tooling (bench/cli); found:\n{misplaced:#?}"
    );
}

#[test]
fn hot_path_regions_are_annotated_where_promised() {
    // The PR 3 zero-alloc surfaces carry live regions; losing one
    // silently un-polices the hot path.
    let root = workspace_root();
    for file in [
        "crates/net/src/delivery.rs",
        "crates/core/src/node_table.rs",
        "crates/scenario/src/runner.rs",
    ] {
        let text = std::fs::read_to_string(root.join(file)).expect(file);
        assert!(
            text.contains("lint:hot-path") && text.contains("lint:end-hot-path"),
            "{file} must keep its hot-path region markers"
        );
    }
}

#[test]
fn sweepd_has_zero_external_dependencies() {
    // The sweep service must build with the standard library plus
    // workspace crates only (hand-rolled HTTP, no serde of its own),
    // so it runs where the registry is unreachable.
    let root = workspace_root();
    let manifest =
        std::fs::read_to_string(root.join("crates/sweepd/Cargo.toml")).expect("sweepd manifest");
    let mut in_deps = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps && !line.is_empty() {
            assert!(
                line.starts_with("mobic-"),
                "crates/sweepd may only depend on workspace crates, found: {line}"
            );
        }
    }
}

#[test]
fn linter_has_zero_external_dependencies() {
    // The `[dependencies]` table of crates/lint must stay empty: that
    // is what lets the lint stage run where the registry is not
    // reachable.
    let root = workspace_root();
    let manifest =
        std::fs::read_to_string(root.join("crates/lint/Cargo.toml")).expect("lint manifest");
    let mut in_deps = false;
    for raw in manifest.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if in_deps {
            assert!(
                line.is_empty(),
                "crates/lint [dependencies] must stay empty, found: {line}"
            );
        }
    }
}
