//! The rule catalog and the per-file scanning engine.
//!
//! Every rule is a named token search over the *code shadow* produced
//! by [`crate::lexer`] (so literals and comments can never trigger a
//! finding), scoped to the crates where the corresponding invariant is
//! load-bearing. See `DESIGN.md` §9 for the rationale behind each
//! rule and the suppression policy.

use crate::lexer::{split_lines, Line};

/// The stable identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `HashMap`/`HashSet` anywhere in a result-affecting crate:
    /// their iteration order depends on the hasher's random state, so
    /// any walk over one can silently break byte-identical replay.
    NondeterministicIteration,
    /// Ambient entropy or wall-clock reads (`thread_rng`,
    /// `SystemTime`, `Instant`, `env::var`, …) outside the blessed
    /// wall-clock module (`mobic_trace::profile`) and the operator
    /// tooling crates (bench, cli).
    AmbientEntropy,
    /// `unwrap`/`expect`/`panic!`/`todo!` in library code of the
    /// crates that own the typed `RunError` channel (scenario, net,
    /// trace): failures there must be structured, never aborts.
    PanicInLib,
    /// Direct `File::create`/`fs::write`/`OpenOptions` outside
    /// `mobic_trace`'s artifact/sink modules: every results artifact
    /// must go through `write_atomic` so interrupted runs never leave
    /// truncated files.
    RawArtifactWrite,
    /// Allocation inside a `// lint:hot-path` region: the steady-state
    /// loop's zero-allocation guarantee (PR 3), proven statically.
    HotPathAlloc,
    /// `Cargo.lock`/manifest policy: no package resolved at two
    /// versions, workspace licenses on the allowlist.
    DepPolicy,
    /// A malformed lint directive (unknown rule in `lint:allow`,
    /// missing reason string). Not suppressible.
    Directive,
}

impl RuleId {
    /// The rule's kebab-case name as it appears in diagnostics and
    /// `lint:allow(...)` directives.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NondeterministicIteration => "nondeterministic-iteration",
            RuleId::AmbientEntropy => "ambient-entropy",
            RuleId::PanicInLib => "panic-in-lib",
            RuleId::RawArtifactWrite => "raw-artifact-write",
            RuleId::HotPathAlloc => "hot-path-alloc",
            RuleId::DepPolicy => "dep-policy",
            RuleId::Directive => "lint-directive",
        }
    }

    /// Parses a rule name as written in a `lint:allow(...)` directive.
    #[must_use]
    pub fn from_name(name: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// Every rule, in catalog order.
pub const ALL_RULES: [RuleId; 7] = [
    RuleId::NondeterministicIteration,
    RuleId::AmbientEntropy,
    RuleId::PanicInLib,
    RuleId::RawArtifactWrite,
    RuleId::HotPathAlloc,
    RuleId::DepPolicy,
    RuleId::Directive,
];

/// One diagnostic produced by the analysis.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// `true` if a valid `lint:allow` directive covers this site.
    pub suppressed: bool,
    /// The mandatory reason string of the covering directive.
    pub reason: Option<String>,
}

/// A token the scanner searches for, with identifier-boundary flags.
struct Needle {
    pat: &'static str,
    /// Require a non-identifier char (or start of line) before the
    /// match.
    bound_left: bool,
    /// Require a non-identifier char (or end of line) after the match.
    bound_right: bool,
    msg: &'static str,
}

const fn needle(
    pat: &'static str,
    bound_left: bool,
    bound_right: bool,
    msg: &'static str,
) -> Needle {
    Needle {
        pat,
        bound_left,
        bound_right,
        msg,
    }
}

const ITERATION_NEEDLES: &[Needle] = &[
    needle(
        "HashMap",
        true,
        true,
        "`HashMap` in a result-affecting crate: iteration order is hasher-dependent; \
         use `BTreeMap` (or a sorted `Vec`)",
    ),
    needle(
        "HashSet",
        true,
        true,
        "`HashSet` in a result-affecting crate: iteration order is hasher-dependent; \
         use `BTreeSet` (or a sorted `Vec`)",
    ),
];

const ENTROPY_NEEDLES: &[Needle] = &[
    needle(
        "thread_rng",
        true,
        true,
        "ambient RNG: all randomness must come from `SeedSplitter` streams",
    ),
    needle(
        "from_entropy",
        true,
        true,
        "ambient RNG seeding: all randomness must come from `SeedSplitter` streams",
    ),
    needle(
        "getrandom",
        true,
        true,
        "ambient RNG: all randomness must come from `SeedSplitter` streams",
    ),
    needle(
        "SystemTime",
        true,
        true,
        "wall-clock read: route timing through `mobic_trace::profile` \
         (`PhaseClock`/`Stopwatch`), which is `#[serde(skip)]`-isolated from results",
    ),
    needle(
        "Instant",
        true,
        true,
        "wall-clock read: route timing through `mobic_trace::profile` \
         (`PhaseClock`/`Stopwatch`), which is `#[serde(skip)]`-isolated from results",
    ),
    needle(
        "env::var",
        true,
        false,
        "environment read: results must be a function of `(config, seed)` only",
    ),
    needle(
        "available_parallelism",
        true,
        true,
        "host-parallelism read: shard/worker counts that affect results must come \
         from config (`shards`) or a fixed constant, never from the machine",
    ),
];

const PANIC_NEEDLES: &[Needle] = &[
    needle(
        ".unwrap()",
        false,
        false,
        "`unwrap` in library code: return the typed `RunError`/`io::Error` instead",
    ),
    needle(
        ".expect(",
        false,
        false,
        "`expect` in library code: return the typed `RunError`/`io::Error` instead",
    ),
    needle(
        "panic!",
        true,
        false,
        "`panic!` in library code: return the typed `RunError`/`io::Error` instead",
    ),
    needle("todo!", true, false, "`todo!` in library code"),
    needle(
        "unimplemented!",
        true,
        false,
        "`unimplemented!` in library code",
    ),
];

const WRITE_NEEDLES: &[Needle] = &[
    needle(
        "File::create",
        true,
        false,
        "raw artifact write: route through `mobic_trace::write_atomic` \
         (or a `TraceSink`) so interrupted runs never leave truncated files",
    ),
    needle(
        "fs::write",
        true,
        false,
        "raw artifact write: route through `mobic_trace::write_atomic` \
         so interrupted runs never leave truncated files",
    ),
    needle(
        "OpenOptions",
        true,
        true,
        "raw artifact write: route through `mobic_trace::write_atomic` \
         so interrupted runs never leave truncated files",
    ),
];

const HOT_ALLOC_NEEDLES: &[Needle] = &[
    needle(
        "Vec::new",
        true,
        false,
        "allocation in hot-path region: `Vec::new`",
    ),
    needle("vec!", true, false, "allocation in hot-path region: `vec!`"),
    needle(
        ".collect",
        false,
        true,
        "allocation in hot-path region: `.collect()`",
    ),
    needle(
        ".to_vec()",
        false,
        false,
        "allocation in hot-path region: `.to_vec()`",
    ),
    needle(
        ".to_string()",
        false,
        false,
        "allocation in hot-path region: `.to_string()`",
    ),
    needle(
        ".to_owned()",
        false,
        false,
        "allocation in hot-path region: `.to_owned()`",
    ),
    needle(
        "String::new",
        true,
        false,
        "allocation in hot-path region: `String::new`",
    ),
    needle(
        "String::from",
        true,
        false,
        "allocation in hot-path region: `String::from`",
    ),
    needle(
        "format!",
        true,
        false,
        "allocation in hot-path region: `format!`",
    ),
    needle(
        "Box::new",
        true,
        false,
        "allocation in hot-path region: `Box::new`",
    ),
    needle(
        "with_capacity",
        true,
        true,
        "allocation in hot-path region: `with_capacity`",
    ),
];

/// Crates whose code influences `RunResult` bytes; `HashMap`/`HashSet`
/// are banned here outright.
const RESULT_AFFECTING: &[&str] = &[
    "geom", "sim", "mobility", "radio", "net", "core", "metrics", "scenario",
];

/// Crates that own the typed error channel; library panics are banned.
const TYPED_ERROR_CRATES: &[&str] = &["scenario", "net", "trace"];

/// Returns the rules that apply to a workspace-relative source path,
/// or an empty vector for paths the scanner skips entirely (test
/// trees, benches, fixtures).
///
/// The scoping encodes the workspace policy:
///
/// * test code may use `HashMap`, `unwrap`, wall clocks freely (it is
///   additionally skipped at `#[cfg(test)]`-module granularity inside
///   library files);
/// * `crates/bench` and `crates/cli` are operator tooling — they may
///   read the environment and the wall clock, but still may not write
///   artifacts raw;
/// * `crates/trace/src/profile.rs` is the one blessed wall-clock
///   module, `crates/trace/src/artifact.rs` is the `write_atomic`
///   implementation itself, and `crates/trace/src/sink.rs` owns the
///   streaming JSONL sink (an append stream cannot be written
///   atomically, and is not a results artifact);
/// * `crates/scenario/src/sweep.rs` is the blessed batch executor: it
///   sizes its *job-level* worker pool from the host
///   (`available_parallelism`), which can never affect per-run bytes
///   because each job is an independent `(config, seed)` run. The
///   sharded engine (`crates/scenario/src/shard.rs`) is deliberately
///   **not** exempt — its shard count shapes the event loop, so it
///   must stay a pure function of the config;
/// * `crates/sweepd` is the sweep orchestration service — operator
///   infrastructure like bench/cli, blessed for wall-clock and
///   host-parallelism reads for the same reason as `sweep.rs` (its
///   worker pool schedules independent cells; result bytes come from
///   `run_scenario` alone). It still may not write artifacts raw:
///   its cell cache must go through `write_atomic`.
#[must_use]
pub fn rules_for_path(rel: &str) -> Vec<RuleId> {
    let rel = rel.replace('\\', "/");
    // The linter does not scan itself: its source necessarily spells
    // out directive syntax and rule tokens in prose, and it is neither
    // result-affecting nor on any hot path. Its correctness is carried
    // by its own unit and fixture tests instead.
    let skip = rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/fixtures/")
        || rel.starts_with("crates/lint/")
        || rel.starts_with("target/");
    if skip {
        return Vec::new();
    }
    let mut rules = vec![RuleId::HotPathAlloc, RuleId::Directive];

    let in_crate = |name: &str| rel.starts_with(&format!("crates/{name}/src/"));

    if RESULT_AFFECTING.iter().any(|c| in_crate(c)) {
        rules.push(RuleId::NondeterministicIteration);
    }
    if TYPED_ERROR_CRATES.iter().any(|c| in_crate(c)) {
        rules.push(RuleId::PanicInLib);
    }
    let entropy_exempt = rel.starts_with("crates/bench/")
        || rel.starts_with("crates/cli/")
        || rel.starts_with("crates/sweepd/")
        || rel == "crates/trace/src/profile.rs"
        || rel == "crates/scenario/src/sweep.rs";
    if !entropy_exempt {
        rules.push(RuleId::AmbientEntropy);
    }
    let write_exempt = rel == "crates/trace/src/artifact.rs" || rel == "crates/trace/src/sink.rs";
    if !write_exempt {
        rules.push(RuleId::RawArtifactWrite);
    }
    rules.sort_unstable();
    rules
}

/// A `lint:allow(rule): reason` directive parsed from a comment.
#[derive(Debug, Clone)]
struct Allow {
    rule: RuleId,
    reason: String,
}

/// Per-line directive state extracted before token scanning.
#[derive(Default)]
struct Directives {
    /// Valid allows, by 0-based line index.
    allows: Vec<Vec<Allow>>,
    /// `lint:hot-path` region membership, by 0-based line index.
    hot: Vec<bool>,
    /// Directive-syntax findings (unknown rule, missing reason,
    /// bad region nesting).
    findings: Vec<Finding>,
}

/// Parses every directive in `lines` and computes hot-region
/// membership. Region rules: regions may not nest, every opened
/// region must be closed in the same file, and a stray close is an
/// error. The marker lines themselves belong to the region, so a
/// violation on the same line as the marker is still caught.
///
/// A directive must be the **first** token of its comment
/// (`// lint:hot-path — rationale...`): a mid-sentence mention of the
/// syntax in prose is inert, so documentation can discuss directives
/// without triggering them.
fn parse_directives(file: &str, lines: &[Line]) -> Directives {
    let mut d = Directives {
        allows: vec![Vec::new(); lines.len()],
        hot: vec![false; lines.len()],
        findings: Vec::new(),
    };
    let mut open: Option<usize> = None;
    for (idx, line) in lines.iter().enumerate() {
        // The comment shadow blanks the `//`/`/*` markers, so trimming
        // leading whitespace (and doc-comment `!`/`/` leftovers never
        // reach here — they are part of the marker) yields the text.
        let comment = line.comment.trim_start();
        if comment.starts_with("lint:end-hot-path") {
            if open.is_none() {
                d.findings.push(Finding {
                    rule: RuleId::HotPathAlloc,
                    file: file.to_string(),
                    line: idx + 1,
                    message: "`lint:end-hot-path` without an open `lint:hot-path` region"
                        .to_string(),
                    suppressed: false,
                    reason: None,
                });
            }
            d.hot[idx] = true;
            open = None;
        } else if comment.starts_with("lint:hot-path") {
            if let Some(at) = open {
                d.findings.push(Finding {
                    rule: RuleId::HotPathAlloc,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "nested `lint:hot-path` region (previous one opened on line {} \
                         is still open)",
                        at + 1
                    ),
                    suppressed: false,
                    reason: None,
                });
            }
            open = Some(idx);
        }
        if let Some(open_at) = open {
            if idx >= open_at {
                d.hot[idx] = true;
            }
        }
        // `lint:allow(rule): reason` — at comment start only, one per
        // comment (a trailing comment IS a comment of its own).
        if let Some(rest) = comment.strip_prefix("lint:allow") {
            'allow: {
                let Some(stripped) = rest.strip_prefix('(') else {
                    d.findings.push(directive_error(
                        file,
                        idx,
                        "malformed `lint:allow`: expected `lint:allow(<rule>): <reason>`",
                    ));
                    break 'allow;
                };
                let Some(close) = stripped.find(')') else {
                    d.findings.push(directive_error(
                        file,
                        idx,
                        "malformed `lint:allow`: missing `)` after the rule name",
                    ));
                    break 'allow;
                };
                let name = stripped[..close].trim();
                let after = &stripped[close + 1..];
                let Some(rule) = RuleId::from_name(name) else {
                    d.findings.push(directive_error(
                        file,
                        idx,
                        &format!("unknown rule `{name}` in `lint:allow`"),
                    ));
                    break 'allow;
                };
                if rule == RuleId::Directive || rule == RuleId::DepPolicy {
                    d.findings.push(directive_error(
                        file,
                        idx,
                        &format!("rule `{name}` cannot be suppressed with `lint:allow`"),
                    ));
                    break 'allow;
                }
                let reason = after
                    .strip_prefix(':')
                    .map(str::trim)
                    .unwrap_or("")
                    .to_string();
                if reason.is_empty() {
                    d.findings.push(directive_error(
                        file,
                        idx,
                        &format!(
                            "`lint:allow({name})` is missing its mandatory reason string \
                             (`lint:allow({name}): <why this site is exempt>`)"
                        ),
                    ));
                } else {
                    d.allows[idx].push(Allow { rule, reason });
                }
            }
        }
    }
    if let Some(at) = open {
        d.findings.push(Finding {
            rule: RuleId::HotPathAlloc,
            file: file.to_string(),
            line: at + 1,
            message: "`lint:hot-path` region is never closed (`lint:end-hot-path` missing)"
                .to_string(),
            suppressed: false,
            reason: None,
        });
    }
    d
}

fn directive_error(file: &str, idx: usize, msg: &str) -> Finding {
    Finding {
        rule: RuleId::Directive,
        file: file.to_string(),
        line: idx + 1,
        message: msg.to_string(),
        suppressed: false,
        reason: None,
    }
}

/// Marks the lines belonging to `#[cfg(test)]` modules, by brace
/// counting over the code shadow. Heuristic but robust for
/// rustfmt-formatted code: the attribute precedes a `mod … {` line; the
/// region ends when the brace depth returns to the module's level.
fn mark_test_lines(lines: &[Line]) -> Vec<bool> {
    let mut is_test = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut pending_attr = false;
    // Brace depth at which the test module was opened.
    let mut test_until: Option<i32> = None;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if test_until.is_none() && pending_attr {
            let trimmed = code.trim_start();
            if trimmed.contains("mod ") || trimmed.starts_with("mod") {
                test_until = Some(depth);
                pending_attr = false;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                // The attribute belonged to something other than a
                // module (a cfg-gated fn or use); elections stay live.
                pending_attr = false;
            }
        }
        if test_until.is_none() && code.contains("cfg(test") {
            pending_attr = true;
            // `#[cfg(test)] mod tests {` on one line.
            if code.contains("mod ") {
                test_until = Some(depth);
                pending_attr = false;
            }
        }
        if test_until.is_some() {
            is_test[idx] = true;
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(d) = test_until {
                        if depth <= d {
                            test_until = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    is_test
}

/// `true` if `hay[i..]` starts with `pat` under the needle's
/// identifier-boundary requirements.
fn matches_at(hay: &[u8], i: usize, n: &Needle) -> bool {
    let pat = n.pat.as_bytes();
    if i + pat.len() > hay.len() || &hay[i..i + pat.len()] != pat {
        return false;
    }
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    if n.bound_left && i > 0 && is_ident(hay[i - 1]) {
        return false;
    }
    if n.bound_right {
        if let Some(&next) = hay.get(i + pat.len()) {
            if is_ident(next) {
                return false;
            }
        }
    }
    true
}

/// Scans one line's code shadow for every needle in `set`, invoking
/// `hit` once per distinct needle that matches (one finding per
/// needle per line keeps diagnostics readable).
fn scan_needles(code: &str, set: &[Needle], mut hit: impl FnMut(&Needle)) {
    let hay = code.as_bytes();
    for n in set {
        if (0..hay.len()).any(|i| matches_at(hay, i, n)) {
            hit(n);
        }
    }
}

/// Runs the given `rules` over one file's source text.
///
/// `file` is the workspace-relative path used in diagnostics. Test
/// modules (`#[cfg(test)]`) are skipped for every rule except
/// [`RuleId::HotPathAlloc`] region-syntax checks; suppression via
/// `lint:allow(rule): reason` on the finding's line or the line above
/// marks the finding `suppressed` without deleting it (so `--json`
/// consumers can audit the exception inventory).
#[must_use]
pub fn scan_source(file: &str, source: &str, rules: &[RuleId]) -> Vec<Finding> {
    let lines = split_lines(source);
    let directives = parse_directives(file, &lines);
    let is_test = mark_test_lines(&lines);
    let mut findings = Vec::new();
    if rules.contains(&RuleId::Directive) || rules.contains(&RuleId::HotPathAlloc) {
        findings.extend(directives.findings.iter().cloned());
    }

    for (idx, line) in lines.iter().enumerate() {
        if is_test[idx] {
            continue;
        }
        let code = line.code.as_str();
        let mut emit = |rule: RuleId, msg: &str| {
            findings.push(Finding {
                rule,
                file: file.to_string(),
                line: idx + 1,
                message: msg.to_string(),
                suppressed: false,
                reason: None,
            });
        };
        if rules.contains(&RuleId::NondeterministicIteration) {
            scan_needles(code, ITERATION_NEEDLES, |n| {
                emit(RuleId::NondeterministicIteration, n.msg);
            });
        }
        if rules.contains(&RuleId::AmbientEntropy) {
            scan_needles(code, ENTROPY_NEEDLES, |n| {
                emit(RuleId::AmbientEntropy, n.msg)
            });
        }
        if rules.contains(&RuleId::PanicInLib) {
            scan_needles(code, PANIC_NEEDLES, |n| emit(RuleId::PanicInLib, n.msg));
        }
        if rules.contains(&RuleId::RawArtifactWrite) {
            scan_needles(code, WRITE_NEEDLES, |n| {
                emit(RuleId::RawArtifactWrite, n.msg)
            });
        }
        if rules.contains(&RuleId::HotPathAlloc) && directives.hot[idx] {
            scan_needles(code, HOT_ALLOC_NEEDLES, |n| {
                emit(RuleId::HotPathAlloc, n.msg)
            });
        }
    }

    // Apply suppressions: an allow on the finding's own line or the
    // line directly above covers it.
    for f in &mut findings {
        if f.rule == RuleId::Directive {
            continue;
        }
        let idx = f.line - 1;
        let candidates = directives.allows[idx].iter().chain(
            idx.checked_sub(1)
                .map_or([].iter(), |p| directives.allows[p].iter()),
        );
        for a in candidates {
            if a.rule == f.rule {
                f.suppressed = true;
                f.reason = Some(a.reason.clone());
                break;
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_file_rules() -> Vec<RuleId> {
        vec![
            RuleId::NondeterministicIteration,
            RuleId::AmbientEntropy,
            RuleId::PanicInLib,
            RuleId::RawArtifactWrite,
            RuleId::HotPathAlloc,
            RuleId::Directive,
        ]
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let src = "fn f() {\n    let _ = \"HashMap thread_rng panic!()\"; // Instant::now\n}\n";
        assert!(scan_source("x.rs", src, &all_file_rules()).is_empty());
    }

    #[test]
    fn hashmap_fires_with_ident_boundaries() {
        let src = "use std::collections::HashMap;\nstruct MyHashMapLike;\n";
        let f = scan_source("x.rs", src, &all_file_rules());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].rule, RuleId::NondeterministicIteration);
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "\
fn lib_code() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = None;
        x.unwrap();
    }
}
";
        assert!(scan_source("x.rs", src, &all_file_rules()).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_without_reason_errors() {
        let ok =
            "fn f() { x.unwrap() } // lint:allow(panic-in-lib): poisoned mutex is unrecoverable\n";
        let f = scan_source("x.rs", ok, &all_file_rules());
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed);
        assert_eq!(
            f[0].reason.as_deref(),
            Some("poisoned mutex is unrecoverable")
        );

        let bad = "fn f() { x.unwrap() } // lint:allow(panic-in-lib)\n";
        let f = scan_source("x.rs", bad, &all_file_rules());
        assert!(f.iter().any(|x| x.rule == RuleId::Directive));
        assert!(f
            .iter()
            .any(|x| x.rule == RuleId::PanicInLib && !x.suppressed));
    }

    #[test]
    fn allow_on_previous_line_covers() {
        let src = "// lint:allow(ambient-entropy): operator-facing progress timer\nlet t = Instant::now();\n";
        let f = scan_source("x.rs", src, &all_file_rules());
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed);
    }

    #[test]
    fn unknown_rule_in_allow_is_a_directive_error() {
        let src = "// lint:allow(no-such-rule): whatever\n";
        let f = scan_source("x.rs", src, &all_file_rules());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::Directive);
    }

    #[test]
    fn hot_path_region_flags_allocs_inside_only() {
        let src = "\
let a: Vec<u32> = Vec::new();
// lint:hot-path
let b = v.iter().map(|x| x + 1).sum::<u32>();
let c: Vec<u32> = v.iter().copied().collect();
// lint:end-hot-path
let d: Vec<u32> = xs.to_vec();
";
        let f = scan_source("x.rs", src, &all_file_rules());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].rule, RuleId::HotPathAlloc);
    }

    #[test]
    fn unclosed_and_nested_regions_error() {
        let unclosed = "// lint:hot-path\nlet x = 1;\n";
        let f = scan_source("x.rs", unclosed, &all_file_rules());
        assert!(
            f.iter().any(|x| x.message.contains("never closed")),
            "{f:?}"
        );

        let nested = "// lint:hot-path\n// lint:hot-path\n// lint:end-hot-path\n";
        let f = scan_source("x.rs", nested, &all_file_rules());
        assert!(f.iter().any(|x| x.message.contains("nested")), "{f:?}");

        let stray = "// lint:end-hot-path\n";
        let f = scan_source("x.rs", stray, &all_file_rules());
        assert!(
            f.iter().any(|x| x.message.contains("without an open")),
            "{f:?}"
        );
    }

    #[test]
    fn path_scoping_matches_the_policy() {
        let loss = rules_for_path("crates/net/src/loss.rs");
        assert!(loss.contains(&RuleId::NondeterministicIteration));
        assert!(loss.contains(&RuleId::PanicInLib));
        assert!(loss.contains(&RuleId::AmbientEntropy));

        let bench = rules_for_path("crates/bench/src/lib.rs");
        assert!(!bench.contains(&RuleId::AmbientEntropy));
        assert!(bench.contains(&RuleId::RawArtifactWrite));

        let profile = rules_for_path("crates/trace/src/profile.rs");
        assert!(!profile.contains(&RuleId::AmbientEntropy));
        assert!(profile.contains(&RuleId::PanicInLib));

        let artifact = rules_for_path("crates/trace/src/artifact.rs");
        assert!(!artifact.contains(&RuleId::RawArtifactWrite));

        // The batch executor may size its job pool from the host; the
        // sharded engine's worker module may not.
        let sweep = rules_for_path("crates/scenario/src/sweep.rs");
        assert!(!sweep.contains(&RuleId::AmbientEntropy));
        assert!(sweep.contains(&RuleId::NondeterministicIteration));
        assert!(sweep.contains(&RuleId::PanicInLib));
        let shard = rules_for_path("crates/scenario/src/shard.rs");
        assert!(shard.contains(&RuleId::AmbientEntropy));
        assert!(shard.contains(&RuleId::PanicInLib));
        assert!(shard.contains(&RuleId::NondeterministicIteration));

        // The sweep service is operator infrastructure: clocks and
        // host parallelism are fine, raw artifact writes are not.
        let sweepd = rules_for_path("crates/sweepd/src/server.rs");
        assert!(!sweepd.contains(&RuleId::AmbientEntropy));
        assert!(sweepd.contains(&RuleId::RawArtifactWrite));
        assert!(!sweepd.contains(&RuleId::PanicInLib));
        assert!(!sweepd.contains(&RuleId::NondeterministicIteration));

        assert!(rules_for_path("crates/net/tests/table_model.rs").is_empty());
        assert!(rules_for_path("tests/determinism.rs").is_empty());
        assert!(rules_for_path("crates/lint/tests/fixtures/x.rs").is_empty());
        assert!(rules_for_path("crates/lint/src/rules.rs").is_empty());
    }

    #[test]
    fn available_parallelism_is_ambient_entropy() {
        let src = "let n = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);\n";
        let f = scan_source("x.rs", src, &[RuleId::AmbientEntropy]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::AmbientEntropy);
    }

    #[test]
    fn expect_err_is_not_expect() {
        let src = "let e = r.expect_err; let f = v.unwrap_or(3);\n";
        assert!(scan_source("x.rs", src, &all_file_rules()).is_empty());
    }
}
