//! A hand-rolled lexical pass that separates Rust source into
//! per-line *code* and *comment* shadows.
//!
//! The scanner's rules are token searches over source text, so the one
//! thing the lexer must get right is **what is code**: string/char
//! literal contents and comments must never produce findings
//! (`"thread_rng"` inside an error message is not an entropy source),
//! while comments must still be readable separately because the lint
//! directives (`lint:allow`, `lint:hot-path`) live in them.
//!
//! The implementation is a small character-level state machine that
//! understands line comments, nested block comments, string literals
//! with escapes, raw strings (`r"…"`, `r#"…"#`, byte variants), and
//! char literals vs. lifetimes. It deliberately does **not** build an
//! AST — no `syn`, no proc-macro machinery — so it compiles with
//! nothing but the standard library.

/// One source line, split into its code and comment parts.
///
/// Both shadows preserve the original column positions: every
/// character that belongs to the other class (or to a string literal's
/// interior) is replaced by a space. Token searches over `code`
/// therefore see only real code, and directive searches over `comment`
/// see only comment text.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The line with comments and literal interiors blanked out.
    pub code: String,
    /// The line with everything except comment text blanked out.
    pub comment: String,
}

/// Lexer state carried across characters (and lines: block comments
/// and string literals may span lines).
enum State {
    /// Ordinary code.
    Code,
    /// Inside a `//` comment, until end of line.
    LineComment,
    /// Inside a (possibly nested) `/* … */` comment; the payload is
    /// the nesting depth.
    BlockComment(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal; the payload is the number of `#`
    /// marks required to close it.
    RawStr(u32),
}

/// Splits `source` into per-line code/comment shadows.
///
/// # Examples
///
/// ```
/// let lines = mobic_lint::lexer::split_lines("let x = \"panic!\"; // ok\n");
/// assert!(!lines[0].code.contains("panic!"), "literal interior is blanked");
/// assert!(lines[0].comment.contains("ok"));
/// ```
#[must_use]
pub fn split_lines(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0usize;

    // Pushes `c` into one shadow and a space into the other.
    fn emit(line: &mut Line, c: char, is_code: bool) {
        if c == '\t' {
            // Keep tabs in both shadows so columns stay aligned under
            // any tab rendering.
            line.code.push('\t');
            line.comment.push('\t');
        } else if is_code {
            line.code.push(c);
            line.comment.push(' ');
        } else {
            line.code.push(' ');
            line.comment.push(c);
        }
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut line));
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    emit(&mut line, ' ', true);
                    emit(&mut line, ' ', true);
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    emit(&mut line, ' ', true);
                    emit(&mut line, ' ', true);
                    i += 2;
                } else if c == '"' {
                    // Keep the quote itself in the code shadow so the
                    // code still "shapes" like code; blank the interior.
                    emit(&mut line, '"', true);
                    state = State::Str;
                    i += 1;
                } else if is_raw_string_start(&chars, i) {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    for _ in 0..consumed {
                        emit(&mut line, ' ', true);
                    }
                    state = State::RawStr(hashes);
                    i += consumed;
                } else if c == '\'' && !prev_is_ident(&chars, i) {
                    // Char literal or lifetime?
                    if let Some(consumed) = char_literal_len(&chars, i) {
                        for _ in 0..consumed {
                            emit(&mut line, ' ', true);
                        }
                        i += consumed;
                    } else {
                        emit(&mut line, c, true);
                        i += 1;
                    }
                } else {
                    emit(&mut line, c, true);
                    i += 1;
                }
            }
            State::LineComment => {
                emit(&mut line, c, false);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    emit(&mut line, ' ', false);
                    emit(&mut line, ' ', false);
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    emit(&mut line, ' ', false);
                    emit(&mut line, ' ', false);
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    emit(&mut line, c, false);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && i + 1 < chars.len() {
                    emit(&mut line, ' ', true);
                    if chars[i + 1] != '\n' {
                        emit(&mut line, ' ', true);
                    }
                    i += 2;
                } else if c == '"' {
                    emit(&mut line, '"', true);
                    state = State::Code;
                    i += 1;
                } else {
                    emit(&mut line, ' ', true);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    for _ in 0..=hashes {
                        emit(&mut line, ' ', true);
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    emit(&mut line, ' ', true);
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

/// `true` if the char before `i` continues an identifier (so a `'` or
/// `r"` at `i` cannot start a literal).
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Does a raw (byte) string literal start at `i`? Recognizes `r"`,
/// `r#…#"`, `br"`, `br#…#"`, and the plain byte string `b"`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if prev_is_ident(chars, i) {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && chars.get(j) == Some(&'"')
}

/// Length of the raw-string opener at `i` and the number of `#` marks
/// it uses. Assumes [`is_raw_string_start`] returned `true`.
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let mut hashes = 0u32;
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    (hashes, j + 1 - i)
}

/// Does the `"` at `i` close a raw string opened with `hashes` marks?
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a char literal starts at the `'` at `i`, returns its total
/// length in chars; `None` means it is a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then_some(j + 1 - i)
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comment_splits() {
        let l = split_lines("let a = 1; // trailing\n");
        assert!(l[0].code.contains("let a = 1;"));
        assert!(!l[0].code.contains("trailing"));
        assert!(l[0].comment.contains("trailing"));
    }

    #[test]
    fn string_interiors_are_blanked() {
        let l = split_lines("let s = \"HashMap::new() // not code\";\n");
        assert!(!l[0].code.contains("HashMap"));
        assert!(!l[0].comment.contains("not code"));
    }

    #[test]
    fn escaped_quotes_stay_inside_the_string() {
        let l = split_lines("let s = \"a\\\"b panic! c\"; panic!()\n");
        assert!(!l[0].code.contains("panic! c"));
        assert!(l[0].code.contains("panic!()"));
    }

    #[test]
    fn nested_block_comments() {
        let l = split_lines("a /* x /* y */ z */ b\n");
        assert!(l[0].code.contains('a'));
        assert!(l[0].code.contains('b'));
        assert!(!l[0].code.contains('y'));
        assert!(!l[0].code.contains('z'));
    }

    #[test]
    fn multi_line_block_comment() {
        let l = split_lines("code1 /* c1\nc2 */ code2\n");
        assert!(l[0].code.contains("code1"));
        assert!(l[1].code.contains("code2"));
        assert!(!l[1].code.contains("c2"));
        assert!(l[1].comment.contains("c2"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let l = split_lines("let s = r#\"vec![1, 2]\"#; vec![3]\n");
        assert!(!l[0].code.contains("vec![1"));
        assert!(l[0].code.contains("vec![3]"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = split_lines("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(l[0].code.contains("'a>"), "{:?}", l[0].code);
        assert!(l[0].code.contains("str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let l = split_lines("let q = '\"'; let e = '\\n'; let x = \"after\"; panic!()\n");
        // The quote char literal must not open a string.
        assert!(l[0].code.contains("panic!()"));
    }

    #[test]
    fn directives_live_in_comments() {
        let l = split_lines("x(); // lint:allow(panic-in-lib): reason here\n");
        assert!(l[0]
            .comment
            .contains("lint:allow(panic-in-lib): reason here"));
        assert!(!l[0].code.contains("lint:allow"));
    }
}
