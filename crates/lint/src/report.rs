//! Rendering of analysis results: human diagnostics, `--json` machine
//! output, and the `--fix-plan` triage checklist.
//!
//! JSON is emitted by hand (the linter is zero-dependency, so no
//! serde); the only subtlety is string escaping, which
//! [`escape_json`] handles for the control/quote/backslash cases that
//! can actually appear in paths and messages.

use crate::rules::{Finding, RuleId, ALL_RULES};
use crate::Analysis;
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders human-readable diagnostics, one block per finding, followed
/// by a summary line. Suppressed findings are listed separately so the
/// exception inventory stays visible in every run.
#[must_use]
pub fn render_human(analysis: &Analysis) -> String {
    let mut out = String::new();
    let active: Vec<&Finding> = analysis.findings.iter().filter(|f| !f.suppressed).collect();
    let suppressed: Vec<&Finding> = analysis.findings.iter().filter(|f| f.suppressed).collect();

    for f in &active {
        let _ = writeln!(out, "error[{}]: {}", f.rule.name(), f.message);
        let _ = writeln!(out, "  --> {}:{}", f.file, f.line);
    }
    if !suppressed.is_empty() {
        let _ = writeln!(out, "suppressed findings ({}):", suppressed.len());
        for f in &suppressed {
            let _ = writeln!(
                out,
                "  {}:{} [{}] — {}",
                f.file,
                f.line,
                f.rule.name(),
                f.reason.as_deref().unwrap_or("(no reason recorded)")
            );
        }
    }
    for note in &analysis.notes {
        let _ = writeln!(out, "note: {note}");
    }
    let _ = writeln!(
        out,
        "{} file(s) scanned, {} finding(s) ({} suppressed)",
        analysis.files_scanned,
        active.len(),
        suppressed.len()
    );
    out
}

/// Renders the analysis as a single JSON object:
/// `{"files_scanned": N, "findings": […], "suppressed": […], "notes": […]}`.
#[must_use]
pub fn render_json(analysis: &Analysis) -> String {
    fn finding_json(f: &Finding) -> String {
        let mut s = format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"",
            f.rule.name(),
            escape_json(&f.file),
            f.line,
            escape_json(&f.message)
        );
        if let Some(reason) = &f.reason {
            let _ = write!(s, ",\"reason\":\"{}\"", escape_json(reason));
        }
        s.push('}');
        s
    }
    let active: Vec<String> = analysis
        .findings
        .iter()
        .filter(|f| !f.suppressed)
        .map(finding_json)
        .collect();
    let suppressed: Vec<String> = analysis
        .findings
        .iter()
        .filter(|f| f.suppressed)
        .map(finding_json)
        .collect();
    let notes: Vec<String> = analysis
        .notes
        .iter()
        .map(|n| format!("\"{}\"", escape_json(n)))
        .collect();
    format!(
        "{{\"files_scanned\":{},\"findings\":[{}],\"suppressed\":[{}],\"notes\":[{}]}}\n",
        analysis.files_scanned,
        active.join(","),
        suppressed.join(","),
        notes.join(",")
    )
}

/// Renders a markdown triage checklist of unsuppressed findings,
/// grouped by rule in catalog order (the `--fix-plan` mode).
#[must_use]
pub fn render_fix_plan(analysis: &Analysis) -> String {
    let mut out = String::from("# mobic-lint fix plan\n");
    let active: Vec<&Finding> = analysis.findings.iter().filter(|f| !f.suppressed).collect();
    if active.is_empty() {
        out.push_str("\nNo unsuppressed findings — the workspace is clean.\n");
        return out;
    }
    for rule in ALL_RULES {
        let of_rule: Vec<&&Finding> = active.iter().filter(|f| f.rule == rule).collect();
        if of_rule.is_empty() {
            continue;
        }
        let _ = write!(out, "\n## {} ({})\n\n", rule.name(), of_rule.len());
        let _ = writeln!(out, "{}", rule_fix_hint(rule));
        for f in of_rule {
            let _ = writeln!(out, "- [ ] `{}:{}` — {}", f.file, f.line, f.message);
        }
    }
    out
}

/// One-line remediation guidance per rule, shown in the fix plan.
fn rule_fix_hint(rule: RuleId) -> &'static str {
    match rule {
        RuleId::NondeterministicIteration => {
            "Replace with `BTreeMap`/`BTreeSet`, or sort before iterating."
        }
        RuleId::AmbientEntropy => {
            "Draw randomness from a `SeedSplitter` stream; route timing through \
             `mobic_trace::profile`."
        }
        RuleId::PanicInLib => "Return the typed error (`RunError`, `io::Error`) instead.",
        RuleId::RawArtifactWrite => "Write through `mobic_trace::write_atomic` or a `TraceSink`.",
        RuleId::HotPathAlloc => {
            "Reuse a scratch buffer owned by the caller, or move the allocation out \
             of the region."
        }
        RuleId::DepPolicy => "Unify the dependency requirements / fix the manifest license field.",
        RuleId::Directive => "Fix the `lint:` directive syntax (these are never suppressible).",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Analysis {
        Analysis {
            findings: vec![
                Finding {
                    rule: RuleId::PanicInLib,
                    file: "crates/net/src/x.rs".to_string(),
                    line: 7,
                    message: "`unwrap` in library code".to_string(),
                    suppressed: false,
                    reason: None,
                },
                Finding {
                    rule: RuleId::AmbientEntropy,
                    file: "crates/sim/src/y.rs".to_string(),
                    line: 3,
                    message: "wall-clock \"read\"".to_string(),
                    suppressed: true,
                    reason: Some("progress timer".to_string()),
                },
            ],
            files_scanned: 2,
            notes: vec!["a note".to_string()],
        }
    }

    #[test]
    fn json_escapes_quotes_and_separates_suppressed() {
        let json = render_json(&sample());
        assert!(json.contains("\\\"read\\\""));
        assert!(json.contains("\"findings\":[{\"rule\":\"panic-in-lib\""));
        assert!(json.contains("\"suppressed\":[{\"rule\":\"ambient-entropy\""));
        assert!(json.contains("\"reason\":\"progress timer\""));
        assert!(json.contains("\"files_scanned\":2"));
    }

    #[test]
    fn human_output_lists_both_tiers() {
        let text = render_human(&sample());
        assert!(text.contains("error[panic-in-lib]"));
        assert!(text.contains("crates/net/src/x.rs:7"));
        assert!(text.contains("suppressed findings (1):"));
        assert!(text.contains("1 finding(s) (1 suppressed)"));
    }

    #[test]
    fn fix_plan_groups_by_rule() {
        let plan = render_fix_plan(&sample());
        assert!(plan.contains("## panic-in-lib (1)"));
        assert!(plan.contains("- [ ] `crates/net/src/x.rs:7`"));
        assert!(!plan.contains("ambient-entropy (1)"), "suppressed excluded");
    }

    #[test]
    fn clean_fix_plan_says_so() {
        let clean = Analysis {
            findings: Vec::new(),
            files_scanned: 5,
            notes: Vec::new(),
        };
        assert!(render_fix_plan(&clean).contains("clean"));
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(escape_json("a\nb\u{1}"), "a\\nb\\u0001");
    }
}
