//! `mobic-lint`: a zero-external-dependency static-analysis pass that
//! proves the workspace's determinism, no-panic, and zero-allocation
//! invariants at the source level.
//!
//! The runtime equivalence suites (`fast_path_equivalence`,
//! `incremental_equivalence`, `trace_determinism`) catch a
//! nondeterminism bug only after it fires on a covered path; this
//! crate enforces the underlying invariants *statically*, before the
//! code ever runs, and does so with nothing but the standard library —
//! so it builds and executes even where the cargo registry is
//! unreachable and clippy cannot.
//!
//! The pipeline is [`lexer`] (per-line code/comment shadows) →
//! [`rules`] (scoped token rules + `lint:` directives) → [`deps`]
//! (offline `Cargo.lock`/manifest policy) → [`report`] (human, JSON,
//! fix-plan rendering). See `DESIGN.md` §9 for the rule catalog and
//! suppression policy.

#![warn(missing_docs)]

pub mod deps;
pub mod lexer;
pub mod report;
pub mod rules;

pub use rules::{rules_for_path, scan_source, Finding, RuleId, ALL_RULES};

use std::path::{Path, PathBuf};

/// The result of scanning a workspace: every finding (suppressed ones
/// included, so the exception inventory is auditable), plus scan
/// metadata.
#[derive(Debug)]
pub struct Analysis {
    /// All findings, in file-walk order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Non-fatal notes (e.g. an absent `Cargo.lock`).
    pub notes: Vec<String>,
}

impl Analysis {
    /// `true` if no unsuppressed finding remains.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.suppressed)
    }
}

/// Collects every `.rs` file under `root` that the scanner should
/// look at, as workspace-relative paths with `/` separators, sorted
/// for deterministic output.
///
/// `target/`, VCS metadata, and the lint fixtures are skipped here;
/// finer-grained scoping (test trees, per-crate rule sets) happens in
/// [`rules::rules_for_path`].
pub fn discover_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let name = name.as_deref().unwrap_or("");
            if path.is_dir() {
                if name.starts_with('.') || name == "target" || name == "fixtures" {
                    continue;
                }
                walk(&path, root, out)?;
            } else if name.ends_with(".rs") {
                out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    Ok(out)
}

/// Runs the full analysis over a workspace root: every source rule on
/// every discovered file, plus the `dep-policy` manifest checks.
pub fn scan_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for rel in discover_sources(root)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let applicable = rules::rules_for_path(&rel_str);
        if applicable.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(root.join(&rel))?;
        files_scanned += 1;
        findings.extend(scan_source(&rel_str, &source, &applicable));
    }
    let (dep_findings, notes) = deps::check(root);
    findings.extend(dep_findings);
    Ok(Analysis {
        findings,
        files_scanned,
        notes,
    })
}
