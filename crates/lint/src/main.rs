//! The `mobic-lint` command-line entry point.
//!
//! ```text
//! mobic-lint [--root <path>] [--json | --fix-plan]
//! ```
//!
//! Exit codes: `0` clean, `1` unsuppressed findings, `2` usage or I/O
//! error. The default root is found by walking up from the current
//! directory to the first `Cargo.toml` that declares `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

enum Mode {
    Human,
    Json,
    FixPlan,
}

fn usage() -> &'static str {
    "usage: mobic-lint [--root <path>] [--json | --fix-plan]\n\
     \n\
     Scans the workspace for violations of the determinism, no-panic,\n\
     zero-alloc, artifact-write, and dependency-policy invariants.\n\
     \n\
       --root <path>  workspace root (default: nearest [workspace] manifest)\n\
       --json         machine-readable output\n\
       --fix-plan     markdown triage checklist grouped by rule\n"
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut mode = Mode::Human;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => mode = Mode::Json,
            "--fix-plan" => mode = Mode::FixPlan,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("error: no workspace root found (pass --root <path>)");
        return ExitCode::from(2);
    };

    let analysis = match mobic_lint::scan_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: scanning {} failed: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match mode {
        Mode::Human => print!("{}", mobic_lint::report::render_human(&analysis)),
        Mode::Json => print!("{}", mobic_lint::report::render_json(&analysis)),
        Mode::FixPlan => print!("{}", mobic_lint::report::render_fix_plan(&analysis)),
    }

    if analysis.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
