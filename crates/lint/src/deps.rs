//! The `dep-policy` rule: offline checks over `Cargo.lock` and the
//! workspace manifests.
//!
//! Two invariants:
//!
//! 1. **No duplicate versions.** A package resolved at two versions
//!    means two majors (cargo unifies semver-compatible requirements),
//!    which bloats builds and — worse for this workspace — risks two
//!    copies of an RNG or serializer with subtly different behavior.
//! 2. **License allowlist.** Every workspace member's `license` field
//!    must appear in `[workspace.metadata.mobic-lint] allowed-licenses`
//!    in the root manifest.
//!
//! Everything is parsed with a deliberately small line-oriented TOML
//! subset (section headers + `key = "value"` / `key = [..]` lines),
//! which is exactly the shape cargo emits for lockfiles and the shape
//! this workspace's hand-written manifests use.

use crate::rules::{Finding, RuleId};
use std::path::Path;

/// One `[[package]]` entry parsed from a lockfile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockPackage {
    /// Package name.
    pub name: String,
    /// Resolved version string.
    pub version: String,
    /// 1-based line of the `[[package]]` header, for diagnostics.
    pub line: usize,
}

/// Parses the `[[package]]` entries out of `Cargo.lock` text.
#[must_use]
pub fn parse_lockfile(text: &str) -> Vec<LockPackage> {
    let mut packages = Vec::new();
    let mut current: Option<LockPackage> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line == "[[package]]" {
            if let Some(p) = current.take() {
                if !p.name.is_empty() {
                    packages.push(p);
                }
            }
            current = Some(LockPackage {
                name: String::new(),
                version: String::new(),
                line: idx + 1,
            });
        } else if line.starts_with('[') {
            // Some other section (e.g. `[metadata]`) ends the entry.
            if let Some(p) = current.take() {
                if !p.name.is_empty() {
                    packages.push(p);
                }
            }
        } else if let Some(p) = current.as_mut() {
            if let Some(v) = parse_str_assignment(line, "name") {
                p.name = v;
            } else if let Some(v) = parse_str_assignment(line, "version") {
                p.version = v;
            }
        }
    }
    if let Some(p) = current.take() {
        if !p.name.is_empty() {
            packages.push(p);
        }
    }
    packages
}

/// Parses `key = "value"` and returns the value, if `line` assigns
/// exactly `key`.
fn parse_str_assignment(line: &str, key: &str) -> Option<String> {
    let rest = line.strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Findings for packages resolved at more than one version.
#[must_use]
pub fn duplicate_version_findings(lock_rel_path: &str, packages: &[LockPackage]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut sorted: Vec<&LockPackage> = packages.iter().collect();
    sorted.sort_by(|a, b| (&a.name, &a.version).cmp(&(&b.name, &b.version)));
    for pair in sorted.windows(2) {
        if pair[0].name == pair[1].name && pair[0].version != pair[1].version {
            findings.push(Finding {
                rule: RuleId::DepPolicy,
                file: lock_rel_path.to_string(),
                line: pair[1].line,
                message: format!(
                    "package `{}` is resolved at two versions ({} and {}); unify the \
                     requirements so one copy serves the whole graph",
                    pair[1].name, pair[0].version, pair[1].version
                ),
                suppressed: false,
                reason: None,
            });
        }
    }
    findings
}

/// A tiny line-oriented view of a manifest: section-aware lookup of
/// string and string-array values.
pub struct Manifest {
    /// `(section, key, value, line)` for `key = "value"` entries.
    strings: Vec<(String, String, String, usize)>,
    /// `(section, key, values, line)` for `key = [ "a", "b" ]` entries.
    arrays: Vec<(String, String, Vec<String>, usize)>,
    /// `(section, key, line)` for `key.workspace = true` entries.
    workspace_inherited: Vec<(String, String, usize)>,
}

impl Manifest {
    /// Parses manifest text. Multi-line arrays are joined until the
    /// closing `]`.
    #[must_use]
    pub fn parse(text: &str) -> Manifest {
        let mut m = Manifest {
            strings: Vec::new(),
            arrays: Vec::new(),
            workspace_inherited: Vec::new(),
        };
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') && line.ends_with(']') {
                section = line.trim_matches(['[', ']']).to_string();
                continue;
            }
            let Some(eq) = line.find('=') else { continue };
            let key = line[..eq].trim().to_string();
            let value = line[eq + 1..].trim().to_string();
            if let Some(base) = key.strip_suffix(".workspace") {
                if value == "true" {
                    m.workspace_inherited
                        .push((section.clone(), base.to_string(), idx + 1));
                }
            } else if value.starts_with('[') {
                let mut joined = value.clone();
                while !joined.contains(']') {
                    let Some((_, next)) = lines.next() else { break };
                    joined.push(' ');
                    joined.push_str(strip_toml_comment(next).trim());
                }
                m.arrays
                    .push((section.clone(), key, parse_string_array(&joined), idx + 1));
            } else if let Some(v) = parse_quoted(&value) {
                m.strings.push((section.clone(), key, v, idx + 1));
            }
        }
        m
    }

    /// Looks up a string value, returning `(value, line)`.
    #[must_use]
    pub fn get_str(&self, section: &str, key: &str) -> Option<(&str, usize)> {
        self.strings
            .iter()
            .find(|(s, k, _, _)| s == section && k == key)
            .map(|(_, _, v, l)| (v.as_str(), *l))
    }

    /// Looks up a string-array value.
    #[must_use]
    pub fn get_array(&self, section: &str, key: &str) -> Option<&[String]> {
        self.arrays
            .iter()
            .find(|(s, k, _, _)| s == section && k == key)
            .map(|(_, _, v, _)| v.as_slice())
    }

    /// `true` if `section` contains `key.workspace = true`.
    #[must_use]
    pub fn inherits(&self, section: &str, key: &str) -> bool {
        self.workspace_inherited
            .iter()
            .any(|(s, k, _)| s == section && k == key)
    }
}

fn strip_toml_comment(line: &str) -> &str {
    // Good enough for this workspace's manifests: `#` inside quoted
    // values does not occur.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_quoted(value: &str) -> Option<String> {
    let rest = value.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn parse_string_array(value: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = value;
    while let Some(open) = rest.find('"') {
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        out.push(rest[..close].to_string());
        rest = &rest[close + 1..];
    }
    out
}

/// Runs the full `dep-policy` rule against a workspace root.
///
/// Returns `(findings, notes)`; notes report non-fatal conditions
/// (most importantly an absent `Cargo.lock`, which is expected for a
/// library-style workspace that has never been built with a reachable
/// registry).
#[must_use]
pub fn check(root: &Path) -> (Vec<Finding>, Vec<String>) {
    let mut findings = Vec::new();
    let mut notes = Vec::new();

    match std::fs::read_to_string(root.join("Cargo.lock")) {
        Ok(text) => {
            let packages = parse_lockfile(&text);
            findings.extend(duplicate_version_findings("Cargo.lock", &packages));
        }
        Err(_) => {
            notes.push(
                "dep-policy: no Cargo.lock at the workspace root; duplicate-version \
                 check skipped (run `cargo generate-lockfile` where the registry is \
                 reachable to enable it)"
                    .to_string(),
            );
        }
    }

    let Ok(root_text) = std::fs::read_to_string(root.join("Cargo.toml")) else {
        findings.push(Finding {
            rule: RuleId::DepPolicy,
            file: "Cargo.toml".to_string(),
            line: 1,
            message: "workspace root Cargo.toml is unreadable".to_string(),
            suppressed: false,
            reason: None,
        });
        return (findings, notes);
    };
    let root_manifest = Manifest::parse(&root_text);
    let Some(allowed) =
        root_manifest.get_array("workspace.metadata.mobic-lint", "allowed-licenses")
    else {
        findings.push(Finding {
            rule: RuleId::DepPolicy,
            file: "Cargo.toml".to_string(),
            line: 1,
            message: "missing `[workspace.metadata.mobic-lint] allowed-licenses` — the \
                      license allowlist must be declared in the root manifest"
                .to_string(),
            suppressed: false,
            reason: None,
        });
        return (findings, notes);
    };
    let workspace_license = root_manifest.get_str("workspace.package", "license");

    // Every member manifest (plus the root package, if any) must carry
    // an allowlisted license, directly or via workspace inheritance.
    let mut manifests: Vec<(String, String)> = Vec::new();
    manifests.push(("Cargo.toml".to_string(), root_text.clone()));
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                let rel = format!(
                    "crates/{}/Cargo.toml",
                    dir.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_default()
                );
                manifests.push((rel, text));
            }
        }
    }

    for (rel, text) in &manifests {
        let m = Manifest::parse(text);
        let license = if m.inherits("package", "license") {
            workspace_license
        } else {
            m.get_str("package", "license")
        };
        match license {
            Some((lic, line)) if allowed.iter().any(|a| a == lic) => {
                let _ = line;
            }
            Some((lic, line)) => {
                findings.push(Finding {
                    rule: RuleId::DepPolicy,
                    file: rel.clone(),
                    line,
                    message: format!(
                        "license `{lic}` is not on the allowlist \
                         (`[workspace.metadata.mobic-lint] allowed-licenses`)"
                    ),
                    suppressed: false,
                    reason: None,
                });
            }
            None => {
                // Only flag manifests that declare a package at all
                // (the root may be a virtual workspace).
                if text.contains("[package]") {
                    findings.push(Finding {
                        rule: RuleId::DepPolicy,
                        file: rel.clone(),
                        line: 1,
                        message: "package declares no license (directly or via \
                                  `license.workspace = true`)"
                            .to_string(),
                        suppressed: false,
                        reason: None,
                    });
                }
            }
        }
    }

    (findings, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOCK_DUP: &str = r#"
version = 3

[[package]]
name = "rand"
version = "0.7.3"
source = "registry"

[[package]]
name = "rand"
version = "0.8.5"
source = "registry"

[[package]]
name = "serde"
version = "1.0.200"
"#;

    #[test]
    fn lockfile_parses_packages() {
        let p = parse_lockfile(LOCK_DUP);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].name, "rand");
        assert_eq!(p[0].version, "0.7.3");
        assert_eq!(p[2].name, "serde");
    }

    #[test]
    fn duplicate_versions_are_flagged() {
        let p = parse_lockfile(LOCK_DUP);
        let f = duplicate_version_findings("Cargo.lock", &p);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("rand"));
        assert!(f[0].message.contains("0.7.3"));
        assert!(f[0].message.contains("0.8.5"));
    }

    #[test]
    fn clean_lockfile_has_no_findings() {
        let clean = "[[package]]\nname = \"a\"\nversion = \"1.0.0\"\n\n[[package]]\nname = \"b\"\nversion = \"1.0.0\"\n";
        let p = parse_lockfile(clean);
        assert!(duplicate_version_findings("Cargo.lock", &p).is_empty());
    }

    #[test]
    fn manifest_lookup_works() {
        let text = "\
[package]
name = \"demo\"
license = \"MIT\"
edition.workspace = true

[workspace.metadata.mobic-lint]
allowed-licenses = [
    \"MIT\",
    \"MIT OR Apache-2.0\", # trailing comment
]
";
        let m = Manifest::parse(text);
        assert_eq!(m.get_str("package", "license").map(|(v, _)| v), Some("MIT"));
        assert!(m.inherits("package", "edition"));
        assert_eq!(
            m.get_array("workspace.metadata.mobic-lint", "allowed-licenses"),
            Some(&["MIT".to_string(), "MIT OR Apache-2.0".to_string()][..])
        );
    }
}
