//! End-to-end tests of the `mobic-cli` binary: spawn the real
//! executable and check its stdout/stderr/exit codes.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mobic-cli"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = cli().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("--tx-sweep"));
}

#[test]
fn table1_prints_the_paper_parameters() {
    let out = cli().arg("table1").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in ["Broadcast Interval", "2.0 sec", "900 sec"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn run_produces_summary() {
    let out = cli()
        .args([
            "run",
            "--algorithm",
            "mobic",
            "--nodes",
            "10",
            "--time",
            "40",
            "--tx",
            "200",
            "--seed",
            "3",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("clusterhead changes"));
    assert!(text.contains("algorithm           mobic"));
}

#[test]
fn run_json_is_machine_readable_and_deterministic() {
    let invoke = || {
        let out = cli()
            .args([
                "run", "--nodes", "10", "--time", "40", "--tx", "200", "--seed", "3", "--json",
            ])
            .output()
            .expect("spawn");
        assert!(out.status.success());
        String::from_utf8(out.stdout).unwrap()
    };
    let a = invoke();
    let b = invoke();
    assert_eq!(a, b, "same seed must yield identical JSON");
    let value: serde_json::Value = serde_json::from_str(&a).expect("valid JSON");
    assert!(value["clusterhead_changes"].is_u64() || value["clusterhead_changes"].is_number());
    assert_eq!(value["seed"], 3);
}

#[test]
fn sweep_prints_table_rows() {
    let out = cli()
        .args([
            "sweep",
            "--nodes",
            "10",
            "--time",
            "30",
            "--tx-sweep",
            "100:200:100",
            "--seeds",
            "2",
            "--algorithms",
            "lcc,mobic",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("lcc CS"));
    assert!(text.contains("mobic CS"));
    // Two sweep rows: Tx = 100 and 200.
    assert!(
        text.lines()
            .filter(|l| l.trim_start().starts_with("100") || l.trim_start().starts_with("200"))
            .count()
            >= 2,
        "{text}"
    );
}

#[test]
fn run_trace_writes_jsonl_and_manifest() {
    let dir = std::env::temp_dir().join("mobic-cli-trace-test");
    std::fs::remove_dir_all(&dir).ok();
    let trace = dir.join("run.jsonl");
    let invoke = || {
        let out = cli()
            .args([
                "run", "--nodes", "8", "--time", "30", "--tx", "200", "--seed", "5", "--trace",
            ])
            .arg(&trace)
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read(&trace).expect("trace file written")
    };
    let a = invoke();
    let b = invoke();
    assert_eq!(a, b, "same seed must yield a byte-identical trace");
    let text = String::from_utf8(a).unwrap();
    assert!(text.lines().count() > 0);
    for line in text.lines().take(50) {
        let v: serde_json::Value = serde_json::from_str(line).expect("JSONL line");
        assert!(v["kind"].is_string());
        assert!(v["t_us"].is_u64());
    }
    let manifest = std::fs::read_to_string(dir.join("run.manifest.json"))
        .expect("manifest written next to trace");
    let parsed: serde_json::Value = serde_json::from_str(&manifest).unwrap();
    assert_eq!(parsed[0]["seed"], 5);
    assert!(parsed[0]["config_hash"]
        .as_str()
        .unwrap()
        .starts_with("fnv1a64:"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_goes_to_stderr_keeping_json_stdout_clean() {
    let out = cli()
        .args([
            "run",
            "--nodes",
            "8",
            "--time",
            "30",
            "--tx",
            "200",
            "--seed",
            "3",
            "--json",
            "--profile",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let _: serde_json::Value = serde_json::from_str(&stdout).expect("stdout is pure JSON");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("phase wall-clock timings"), "{stderr}");
    assert!(stderr.contains("event loop"));
}

#[test]
fn run_with_faults_reports_fault_counters_in_json() {
    let out = cli()
        .args([
            "run",
            "--nodes",
            "10",
            "--time",
            "60",
            "--tx",
            "200",
            "--seed",
            "3",
            "--faults",
            "crashes=2,from=10",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let value: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).expect("valid JSON");
    assert_eq!(value["faults"]["crashes"], 2, "{value}");
}

#[test]
fn sweep_out_writes_cell_files_and_resume_skips_them() {
    let dir = std::env::temp_dir().join("mobic-cli-resume-test");
    std::fs::remove_dir_all(&dir).ok();
    let invoke = |resume: bool| {
        let mut cmd = cli();
        cmd.args([
            "sweep",
            "--nodes",
            "8",
            "--time",
            "30",
            "--tx-sweep",
            "150:150:50",
            "--seeds",
            "1",
            "--algorithms",
            "lcc",
            "--out",
        ])
        .arg(&dir);
        if resume {
            cmd.arg("--resume");
        }
        cmd.output().expect("spawn")
    };
    let first = invoke(false);
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let cell = dir.join("cell_lcc_tx150.json");
    let text = std::fs::read_to_string(&cell).expect("cell file written");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("cell is JSON");
    assert_eq!(parsed["algorithm"], "lcc");
    assert_eq!(parsed["x"], 150.0);

    let second = invoke(true);
    assert!(
        second.status.success(),
        "{}",
        String::from_utf8_lossy(&second.stderr)
    );
    let stderr = String::from_utf8(second.stderr).unwrap();
    assert!(stderr.contains("resume:"), "{stderr}");
    // The resumed sweep still prints the full table from the cells.
    let stdout = String::from_utf8(second.stdout).unwrap();
    assert!(stdout.contains("lcc CS"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_arguments_fail_with_usage_on_stderr() {
    let out = cli()
        .args(["run", "--algorithm", "bogus"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("bogus"));
    assert!(err.contains("USAGE"));
}

#[test]
fn invalid_scenario_rejected_before_running() {
    let out = cli().args(["run", "--nodes", "0"]).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("invalid scenario"), "{err}");
}
