//! Argument parsing and command logic for the `mobic-cli` binary —
//! kept in a library so every parsing rule is unit-testable.
//!
//! Commands:
//!
//! * `run` — simulate one scenario and print (or JSON-dump) the
//!   results;
//! * `sweep` — sweep the transmission range for several algorithms,
//!   print the paper-style CS table (locally, or through a
//!   `mobic-sweepd` service with `--server`);
//! * `drain` — gracefully shut down a `mobic-sweepd` service;
//! * `table1` — print the paper's simulation parameters.
//!
//! No external argument-parsing dependency: the grammar is small and a
//! hand-rolled parser keeps the dependency budget honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use mobic_core::AlgorithmKind;
use mobic_scenario::{
    AuditMode, DeliveryPath, Engine, FaultPlan, FaultTarget, MobilityKind, Recluster,
    ScenarioConfig, Scheduler,
};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one scenario.
    Run {
        /// The scenario to run.
        config: ScenarioConfig,
        /// Master seed.
        seed: u64,
        /// Emit machine-readable JSON instead of a human summary.
        json: bool,
        /// Write a JSONL event trace (plus a manifest next to it).
        trace: Option<String>,
        /// Print wall-clock phase timings to stderr.
        profile: bool,
        /// Snapshot directory for crash-safe checkpointing: resume
        /// from the newest valid snapshot found there, and (when the
        /// config's checkpoint cadence is on) keep writing rotated
        /// snapshots into it.
        checkpoint_dir: Option<String>,
    },
    /// Sweep the transmission range.
    Sweep {
        /// Base scenario (tx range overridden per point).
        config: ScenarioConfig,
        /// Sweep points (meters).
        tx_values: Vec<f64>,
        /// Algorithms to compare.
        algorithms: Vec<AlgorithmKind>,
        /// Seeds per cell.
        seeds: u64,
        /// Directory for per-run JSONL traces and the sweep manifest.
        trace: Option<String>,
        /// Print accumulated wall-clock phase timings to stderr.
        profile: bool,
        /// Directory for per-cell outcome JSON files (written
        /// atomically, one per `(algorithm, tx)` cell).
        out: Option<String>,
        /// Skip cells whose outcome file already exists under `out`.
        resume: bool,
        /// Soft per-run wall-clock deadline in seconds; switches the
        /// sweep to the supervised batch executor.
        deadline_s: Option<f64>,
        /// Submit the sweep to a `mobic-sweepd` service at this
        /// address instead of running locally; the client tails
        /// progress and renders the same table from cached cells.
        server: Option<String>,
    },
    /// Gracefully shut down a `mobic-sweepd` service (`POST /drain`).
    Drain {
        /// Service address, e.g. `127.0.0.1:7700`.
        addr: String,
    },
    /// Print Table 1.
    Table1,
    /// Print usage.
    Help,
}

/// A command-line error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The usage text.
#[must_use]
pub fn usage() -> &'static str {
    "mobic-cli — MANET clustering simulator (MOBIC reproduction)

USAGE:
  mobic-cli run   [OPTIONS]          simulate one scenario
  mobic-cli sweep [OPTIONS]          sweep Tx for several algorithms
  mobic-cli drain --server <addr>    gracefully stop a mobic-sweepd
  mobic-cli table1                   print the paper's Table 1
  mobic-cli help                     this text

RUN / SWEEP OPTIONS (defaults = the paper's Table 1):
  --algorithm <lowest-id|lcc|highest-degree|mobic|wca> (run only)
  --algorithms <a,b,...>                             (sweep only, default lcc,mobic)
  --nodes <n>              number of nodes          [50]
  --field <WxH>            field size in meters     [670x670]
  --speed <mps>            max speed                [20]
  --pause <s>              pause time               [0]
  --tx <m>                 transmission range (run) [250]
  --tx-sweep <from:to:step>  sweep points (sweep)   [10:250:25]
  --time <s>               simulated seconds        [900]
  --seed <n>               master seed (run)        [42]
  --seeds <n>              seeds per cell (sweep)   [5]
  --mobility <kind>        rwp | walk | gauss | rpgm:<groups> |
                           highway:<lanes> | conference:<booths> |
                           manhattan:<block> | static        [rwp]
  --history <alpha>        EWMA metric smoothing (0..1)
  --recluster <incremental|full>  skip provably no-op elections
                           (results identical either way) [incremental]
  --faults <k=v,...>       node-lifecycle fault plan, e.g.
                           crashes=3,recoveries=2,recovery-after=10,
                           late-joins=2,deaf=1,mute=1,spell=5,
                           from=30,until=200,target=any|clusterhead
  --audit <off|warn|strict>  periodic Theorem-1 invariant audit;
                           warn = trace violations, strict = fail run [off]
  --engine <sequential|sharded>  event-loop engine; results are
                           byte-identical either way        [sequential]
  --shards <n>             worker shards for --engine sharded;
                           0 = fixed fallback (4)           [0]
  --scheduler <heap|calendar>  future-event-list shape; results are
                           byte-identical either way        [heap]
  --delivery <auto|scalar>  broadcast delivery path; auto takes the
                           vectorized kernel when the propagation
                           model permits, scalar pins the per-edge
                           path; byte-identical either way  [auto]
  --json                   machine-readable output (run)

OBSERVABILITY:
  --trace <path>           write a JSONL event trace; for `run` a file,
                           for `sweep` a directory (one file per run).
                           A run manifest is written next to it.
  --profile                print wall-clock phase timings to stderr

CHECKPOINTING (run only; see OPERATIONS.md):
  --checkpoint-dir <dir>   resume from the newest valid snapshot in
                           <dir> (corrupt or foreign snapshots are
                           skipped); results are byte-identical to an
                           uninterrupted run
  --checkpoint-every <s>   write a rotated snapshot into the directory
                           roughly every <s> wall-clock seconds
                           (requires --checkpoint-dir)
  --checkpoint-keep <n>    rotated snapshots to keep          [2]

ROBUSTNESS (sweep only):
  --out <dir>              write one JSON outcome file per sweep cell,
                           atomically (temp file + rename)
  --resume                 skip cells whose outcome file already
                           exists under --out (resume an interrupted
                           sweep)
  --deadline <s>           supervised execution: per-run soft
                           deadline; stuck or panicking runs become
                           per-job errors instead of hanging the sweep

SERVICE (sweep/drain):
  --server <addr>          submit the sweep to a mobic-sweepd service
                           (e.g. 127.0.0.1:7700) and tail its progress;
                           cells already in the service cache are never
                           recomputed. Incompatible with --out,
                           --resume, --trace and --deadline (the
                           service owns persistence and supervision).
"
}

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first problem found.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "table1" => Ok(Command::Table1),
        "drain" => {
            let rest: Vec<&String> = it.collect();
            match rest.as_slice() {
                [flag, addr] if flag.as_str() == "--server" && !addr.starts_with("--") => {
                    Ok(Command::Drain { addr: addr.clone() })
                }
                _ => Err(err("drain expects exactly `--server <addr>`")),
            }
        }
        "run" | "sweep" => {
            let rest: Vec<&String> = it.collect();
            let mut config = ScenarioConfig::paper_table1();
            let mut seed = 42u64;
            let mut seeds = 5u64;
            let mut json = false;
            let mut trace: Option<String> = None;
            let mut profile = false;
            let mut tx_values = sweep_points(10.0, 250.0, 25.0);
            let mut algorithms = vec![AlgorithmKind::Lcc, AlgorithmKind::Mobic];
            let mut out: Option<String> = None;
            let mut resume = false;
            let mut deadline_s: Option<f64> = None;
            let mut server: Option<String> = None;
            let mut checkpoint_dir: Option<String> = None;
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let mut value = || -> Result<&String, CliError> {
                    i += 1;
                    rest.get(i)
                        .copied()
                        .ok_or_else(|| err(format!("{flag} needs a value")))
                };
                match flag {
                    "--json" => json = true,
                    "--profile" => profile = true,
                    "--trace" => {
                        let path = value()?;
                        if path.is_empty() || path.starts_with("--") {
                            return Err(err(format!("--trace expects a path, got {path:?}")));
                        }
                        trace = Some(path.clone());
                    }
                    "--algorithm" => config.algorithm = parse_algorithm(value()?)?,
                    "--algorithms" => {
                        algorithms = value()?
                            .split(',')
                            .map(parse_algorithm)
                            .collect::<Result<_, _>>()?;
                    }
                    "--nodes" => config.n_nodes = parse_num(value()?, "--nodes")?,
                    "--field" => {
                        let (w, h) = parse_field(value()?)?;
                        config.field_w_m = w;
                        config.field_h_m = h;
                    }
                    "--speed" => config.max_speed_mps = parse_num(value()?, "--speed")?,
                    "--pause" => config.pause_s = parse_num(value()?, "--pause")?,
                    "--tx" => config.tx_range_m = parse_num(value()?, "--tx")?,
                    "--tx-sweep" => tx_values = parse_sweep(value()?)?,
                    "--time" => config.sim_time_s = parse_num(value()?, "--time")?,
                    "--seed" => seed = parse_num(value()?, "--seed")?,
                    "--seeds" => seeds = parse_num(value()?, "--seeds")?,
                    "--mobility" => config.mobility = parse_mobility(value()?)?,
                    "--history" => config.history_alpha = Some(parse_num(value()?, "--history")?),
                    "--recluster" => config.recluster = parse_recluster(value()?)?,
                    "--faults" => config.faults = parse_faults(value()?)?,
                    "--audit" => config.audit = parse_audit(value()?)?,
                    "--engine" => config.engine = parse_engine(value()?)?,
                    "--shards" => config.shards = parse_num(value()?, "--shards")?,
                    "--scheduler" => config.scheduler = parse_scheduler(value()?)?,
                    "--delivery" => config.delivery = parse_delivery(value()?)?,
                    "--out" => {
                        let path = value()?;
                        if path.is_empty() || path.starts_with("--") {
                            return Err(err(format!("--out expects a directory, got {path:?}")));
                        }
                        out = Some(path.clone());
                    }
                    "--resume" => resume = true,
                    "--server" => {
                        let addr = value()?;
                        if addr.is_empty() || addr.starts_with("--") {
                            return Err(err(format!("--server expects an address, got {addr:?}")));
                        }
                        server = Some(addr.clone());
                    }
                    "--deadline" => {
                        let d: f64 = parse_num(value()?, "--deadline")?;
                        if d <= 0.0 {
                            return Err(err("--deadline must be positive"));
                        }
                        deadline_s = Some(d);
                    }
                    "--checkpoint-dir" => {
                        let dir = value()?;
                        if dir.is_empty() || dir.starts_with("--") {
                            return Err(err(format!(
                                "--checkpoint-dir expects a directory, got {dir:?}"
                            )));
                        }
                        checkpoint_dir = Some(dir.clone());
                    }
                    "--checkpoint-every" => {
                        let every: f64 = parse_num(value()?, "--checkpoint-every")?;
                        if every <= 0.0 {
                            return Err(err("--checkpoint-every must be positive"));
                        }
                        config.checkpoint.every_s = every;
                    }
                    "--checkpoint-keep" => {
                        config.checkpoint.keep = parse_num(value()?, "--checkpoint-keep")?;
                    }
                    other => return Err(err(format!("unknown option {other}"))),
                }
                i += 1;
            }
            config
                .validate()
                .map_err(|e| err(format!("invalid scenario: {e}")))?;
            if cmd == "run" {
                if server.is_some() {
                    return Err(err("--server applies to sweep only"));
                }
                if !config.checkpoint.is_off() && checkpoint_dir.is_none() {
                    return Err(err(
                        "--checkpoint-every needs --checkpoint-dir <dir> to put snapshots in",
                    ));
                }
                Ok(Command::Run {
                    config,
                    seed,
                    json,
                    trace,
                    profile,
                    checkpoint_dir,
                })
            } else {
                if checkpoint_dir.is_some() || !config.checkpoint.is_off() {
                    return Err(err(
                        "--checkpoint-* applies to run only (sweepd checkpoints its own cells)",
                    ));
                }
                if algorithms.is_empty() {
                    return Err(err("--algorithms must name at least one algorithm"));
                }
                if resume && out.is_none() {
                    return Err(err("--resume needs --out <dir> to find prior cell files"));
                }
                if server.is_some()
                    && (out.is_some() || resume || trace.is_some() || deadline_s.is_some())
                {
                    return Err(err(
                        "--server owns persistence and supervision; it cannot be \
                         combined with --out, --resume, --trace or --deadline",
                    ));
                }
                Ok(Command::Sweep {
                    config,
                    tx_values,
                    algorithms,
                    seeds: seeds.max(1),
                    trace,
                    profile,
                    out,
                    resume,
                    deadline_s,
                    server,
                })
            }
        }
        other => Err(err(format!(
            "unknown command {other}; try `mobic-cli help`"
        ))),
    }
}

fn parse_algorithm(s: impl AsRef<str>) -> Result<AlgorithmKind, CliError> {
    match s.as_ref() {
        "lowest-id" => Ok(AlgorithmKind::LowestId),
        "lcc" => Ok(AlgorithmKind::Lcc),
        "highest-degree" => Ok(AlgorithmKind::HighestDegree),
        "mobic" => Ok(AlgorithmKind::Mobic),
        "wca" => Ok(AlgorithmKind::Wca),
        other => Err(err(format!(
            "unknown algorithm {other}; expected lowest-id|lcc|highest-degree|mobic|wca"
        ))),
    }
}

fn parse_recluster(s: impl AsRef<str>) -> Result<Recluster, CliError> {
    match s.as_ref() {
        "incremental" => Ok(Recluster::Incremental),
        "full" => Ok(Recluster::Full),
        other => Err(err(format!(
            "unknown recluster mode {other}; expected incremental|full"
        ))),
    }
}

fn parse_engine(s: impl AsRef<str>) -> Result<Engine, CliError> {
    match s.as_ref() {
        "sequential" => Ok(Engine::Sequential),
        "sharded" => Ok(Engine::Sharded),
        other => Err(err(format!(
            "unknown engine {other}; expected sequential|sharded"
        ))),
    }
}

fn parse_scheduler(s: impl AsRef<str>) -> Result<Scheduler, CliError> {
    match s.as_ref() {
        "heap" => Ok(Scheduler::Heap),
        "calendar" => Ok(Scheduler::Calendar),
        other => Err(err(format!(
            "unknown scheduler {other}; expected heap|calendar"
        ))),
    }
}

fn parse_delivery(s: impl AsRef<str>) -> Result<DeliveryPath, CliError> {
    match s.as_ref() {
        "auto" => Ok(DeliveryPath::Auto),
        "scalar" => Ok(DeliveryPath::Scalar),
        other => Err(err(format!(
            "unknown delivery path {other}; expected auto|scalar"
        ))),
    }
}

fn parse_audit(s: impl AsRef<str>) -> Result<AuditMode, CliError> {
    match s.as_ref() {
        "off" => Ok(AuditMode::Off),
        "warn" => Ok(AuditMode::Warn),
        "strict" => Ok(AuditMode::Strict),
        other => Err(err(format!(
            "unknown audit mode {other}; expected off|warn|strict"
        ))),
    }
}

fn parse_faults(s: &str) -> Result<FaultPlan, CliError> {
    let mut plan = FaultPlan::default();
    for pair in s.split(',') {
        let (key, val) = pair
            .split_once('=')
            .ok_or_else(|| err(format!("--faults expects k=v pairs, got {pair:?}")))?;
        match key {
            "crashes" => plan.crashes = parse_num(val, "--faults crashes")?,
            "recoveries" => plan.recoveries = parse_num(val, "--faults recoveries")?,
            "recovery-after" => {
                plan.recovery_after_s = parse_num(val, "--faults recovery-after")?;
            }
            "late-joins" => plan.late_joins = parse_num(val, "--faults late-joins")?,
            "deaf" => plan.deaf_spells = parse_num(val, "--faults deaf")?,
            "mute" => plan.mute_spells = parse_num(val, "--faults mute")?,
            "spell" => plan.spell_s = parse_num(val, "--faults spell")?,
            "from" => plan.from_s = parse_num(val, "--faults from")?,
            "until" => plan.until_s = parse_num(val, "--faults until")?,
            "target" => {
                plan.target = match val {
                    "any" => FaultTarget::Any,
                    "clusterhead" => FaultTarget::Clusterhead,
                    other => {
                        return Err(err(format!(
                            "--faults target expects any|clusterhead, got {other:?}"
                        )))
                    }
                };
            }
            other => return Err(err(format!("--faults: unknown key {other:?}"))),
        }
    }
    Ok(plan)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| err(format!("{flag}: cannot parse {s:?}")))
}

fn parse_field(s: &str) -> Result<(f64, f64), CliError> {
    let (w, h) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| err(format!("--field expects WxH, got {s:?}")))?;
    Ok((parse_num(w, "--field")?, parse_num(h, "--field")?))
}

fn parse_sweep(s: &str) -> Result<Vec<f64>, CliError> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 3 {
        return Err(err(format!("--tx-sweep expects from:to:step, got {s:?}")));
    }
    let from: f64 = parse_num(parts[0], "--tx-sweep")?;
    let to: f64 = parse_num(parts[1], "--tx-sweep")?;
    let step: f64 = parse_num(parts[2], "--tx-sweep")?;
    if step <= 0.0 || to < from {
        return Err(err("--tx-sweep requires step > 0 and to >= from"));
    }
    Ok(sweep_points(from, to, step))
}

fn sweep_points(from: f64, to: f64, step: f64) -> Vec<f64> {
    let mut v = Vec::new();
    let mut x = from;
    while x <= to + 1e-9 {
        v.push(x);
        x += step;
    }
    v
}

fn parse_mobility(s: &str) -> Result<MobilityKind, CliError> {
    let (kind, arg) = match s.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (s, None),
    };
    let num = |flag: &str| -> Result<f64, CliError> {
        arg.ok_or_else(|| err(format!("{flag} needs an argument, e.g. {flag}:4")))
            .and_then(|a| parse_num(a, flag))
    };
    match kind {
        "rwp" => Ok(MobilityKind::RandomWaypoint),
        "walk" => Ok(MobilityKind::RandomWalk { epoch_s: 10.0 }),
        "gauss" => Ok(MobilityKind::GaussMarkov { alpha: 0.85 }),
        "rpgm" => Ok(MobilityKind::Rpgm {
            groups: num("rpgm")? as u32,
            member_radius_m: 50.0,
        }),
        "highway" => Ok(MobilityKind::Highway {
            lanes: num("highway")? as u32,
            bidirectional: true,
        }),
        "conference" => Ok(MobilityKind::ConferenceHall {
            booths: num("conference")? as u32,
        }),
        "manhattan" => Ok(MobilityKind::Manhattan {
            block_m: num("manhattan")?,
            p_turn: 0.5,
        }),
        "static" => Ok(MobilityKind::Stationary),
        other => Err(err(format!("unknown mobility kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> Command {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args).expect("should parse")
    }

    fn parse_err(line: &str) -> CliError {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args).expect_err("should fail")
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse_ok("help"), Command::Help);
        assert_eq!(parse_ok("--help"), Command::Help);
        assert_eq!(parse_ok("table1"), Command::Table1);
    }

    #[test]
    fn run_defaults_are_table1() {
        let Command::Run {
            config,
            seed,
            json,
            trace,
            profile,
            checkpoint_dir,
        } = parse_ok("run")
        else {
            panic!("expected run");
        };
        assert_eq!(config, ScenarioConfig::paper_table1());
        assert_eq!(seed, 42);
        assert!(!json);
        assert_eq!(trace, None);
        assert!(!profile);
        assert_eq!(checkpoint_dir, None);
    }

    #[test]
    fn run_with_overrides() {
        let Command::Run {
            config, seed, json, ..
        } = parse_ok(
            "run --algorithm mobic --nodes 30 --field 1000x500 --speed 10 \
             --pause 30 --tx 100 --time 300 --seed 7 --history 0.7 --json",
        )
        else {
            panic!("expected run");
        };
        assert_eq!(config.algorithm, AlgorithmKind::Mobic);
        assert_eq!(config.n_nodes, 30);
        assert_eq!((config.field_w_m, config.field_h_m), (1000.0, 500.0));
        assert_eq!(config.max_speed_mps, 10.0);
        assert_eq!(config.pause_s, 30.0);
        assert_eq!(config.tx_range_m, 100.0);
        assert_eq!(config.sim_time_s, 300.0);
        assert_eq!(config.history_alpha, Some(0.7));
        assert_eq!(seed, 7);
        assert!(json);
    }

    #[test]
    fn mobility_kinds_parse() {
        for (arg, expect) in [
            ("rwp", MobilityKind::RandomWaypoint),
            ("static", MobilityKind::Stationary),
            (
                "rpgm:5",
                MobilityKind::Rpgm {
                    groups: 5,
                    member_radius_m: 50.0,
                },
            ),
            (
                "highway:4",
                MobilityKind::Highway {
                    lanes: 4,
                    bidirectional: true,
                },
            ),
            ("conference:8", MobilityKind::ConferenceHall { booths: 8 }),
            (
                "manhattan:100",
                MobilityKind::Manhattan {
                    block_m: 100.0,
                    p_turn: 0.5,
                },
            ),
        ] {
            let Command::Run { config, .. } = parse_ok(&format!("run --mobility {arg}")) else {
                panic!();
            };
            assert_eq!(config.mobility, expect, "{arg}");
        }
    }

    #[test]
    fn sweep_defaults() {
        let Command::Sweep {
            tx_values,
            algorithms,
            seeds,
            ..
        } = parse_ok("sweep")
        else {
            panic!("expected sweep");
        };
        assert_eq!(tx_values.first(), Some(&10.0));
        assert_eq!(tx_values.last(), Some(&235.0));
        assert_eq!(algorithms, vec![AlgorithmKind::Lcc, AlgorithmKind::Mobic]);
        assert_eq!(seeds, 5);
    }

    #[test]
    fn sweep_custom_points_and_algorithms() {
        let Command::Sweep {
            tx_values,
            algorithms,
            ..
        } = parse_ok("sweep --tx-sweep 50:250:100 --algorithms lowest-id,highest-degree")
        else {
            panic!("expected sweep");
        };
        assert_eq!(tx_values, vec![50.0, 150.0, 250.0]);
        assert_eq!(
            algorithms,
            vec![AlgorithmKind::LowestId, AlgorithmKind::HighestDegree]
        );
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert!(parse_err("run --algorithm bogus").0.contains("bogus"));
        assert!(parse_err("run --nodes").0.contains("--nodes"));
        assert!(parse_err("run --field 670").0.contains("WxH"));
        assert!(parse_err("sweep --tx-sweep 10:5:1")
            .0
            .contains("to >= from"));
        assert!(parse_err("frobnicate").0.contains("unknown command"));
        assert!(parse_err("run --mobility rpgm").0.contains("argument"));
        assert!(parse_err("run --trace").0.contains("--trace"));
        assert!(parse_err("run --trace --json").0.contains("path"));
    }

    #[test]
    fn trace_and_profile_parse_on_both_commands() {
        let Command::Run { trace, profile, .. } = parse_ok("run --trace out/run.jsonl --profile")
        else {
            panic!("expected run");
        };
        assert_eq!(trace.as_deref(), Some("out/run.jsonl"));
        assert!(profile);
        let Command::Sweep { trace, profile, .. } = parse_ok("sweep --trace traces/ --profile")
        else {
            panic!("expected sweep");
        };
        assert_eq!(trace.as_deref(), Some("traces/"));
        assert!(profile);
        // Defaults stay off for sweep too.
        let Command::Sweep { trace, profile, .. } = parse_ok("sweep") else {
            panic!("expected sweep");
        };
        assert_eq!(trace, None);
        assert!(!profile);
    }

    #[test]
    fn recluster_modes_parse() {
        let Command::Run { config, .. } = parse_ok("run --recluster full") else {
            panic!("expected run");
        };
        assert_eq!(config.recluster, Recluster::Full);
        let Command::Run { config, .. } = parse_ok("run --recluster incremental") else {
            panic!("expected run");
        };
        assert_eq!(config.recluster, Recluster::Incremental);
        // The default stays incremental.
        let Command::Run { config, .. } = parse_ok("run") else {
            panic!("expected run");
        };
        assert_eq!(config.recluster, Recluster::Incremental);
        assert!(parse_err("run --recluster sometimes")
            .0
            .contains("sometimes"));
    }

    #[test]
    fn engine_modes_parse() {
        let Command::Run { config, .. } = parse_ok("run --engine sharded --shards 8") else {
            panic!("expected run");
        };
        assert_eq!(config.engine, Engine::Sharded);
        assert_eq!(config.shards, 8);
        let Command::Run { config, .. } = parse_ok("run --engine sequential") else {
            panic!("expected run");
        };
        assert_eq!(config.engine, Engine::Sequential);
        // The default stays sequential with auto shard count.
        let Command::Run { config, .. } = parse_ok("run") else {
            panic!("expected run");
        };
        assert_eq!(config.engine, Engine::Sequential);
        assert_eq!(config.shards, 0);
        assert!(parse_err("run --engine turbo").0.contains("turbo"));
        assert!(parse_err("run --shards many").0.contains("--shards"));
    }

    #[test]
    fn scheduler_and_delivery_modes_parse() {
        let Command::Run { config, .. } = parse_ok("run --scheduler calendar --delivery scalar")
        else {
            panic!("expected run");
        };
        assert_eq!(config.scheduler, Scheduler::Calendar);
        assert_eq!(config.delivery, DeliveryPath::Scalar);
        // Both knobs compose with the sharded engine.
        let Command::Run { config, .. } =
            parse_ok("run --engine sharded --scheduler calendar --delivery auto")
        else {
            panic!("expected run");
        };
        assert_eq!(config.engine, Engine::Sharded);
        assert_eq!(config.scheduler, Scheduler::Calendar);
        assert_eq!(config.delivery, DeliveryPath::Auto);
        // Defaults stay heap + auto.
        let Command::Run { config, .. } = parse_ok("run") else {
            panic!("expected run");
        };
        assert_eq!(config.scheduler, Scheduler::Heap);
        assert_eq!(config.delivery, DeliveryPath::Auto);
        assert!(parse_err("run --scheduler wheel").0.contains("wheel"));
        assert!(parse_err("run --delivery simd").0.contains("simd"));
    }

    #[test]
    fn invalid_scenarios_are_rejected_at_parse_time() {
        assert!(parse_err("run --nodes 0").0.contains("invalid scenario"));
        assert!(parse_err("run --speed -1").0.contains("invalid scenario"));
    }

    #[test]
    fn faults_and_audit_parse_on_run() {
        let Command::Run { config, .. } = parse_ok(
            "run --faults crashes=3,recoveries=2,recovery-after=12,late-joins=1,\
             deaf=1,mute=2,spell=4,from=30,until=200,target=clusterhead --audit warn",
        ) else {
            panic!("expected run");
        };
        assert_eq!(config.faults.crashes, 3);
        assert_eq!(config.faults.recoveries, 2);
        assert_eq!(config.faults.recovery_after_s, 12.0);
        assert_eq!(config.faults.late_joins, 1);
        assert_eq!(config.faults.deaf_spells, 1);
        assert_eq!(config.faults.mute_spells, 2);
        assert_eq!(config.faults.spell_s, 4.0);
        assert_eq!(config.faults.from_s, 30.0);
        assert_eq!(config.faults.until_s, 200.0);
        assert_eq!(config.faults.target, FaultTarget::Clusterhead);
        assert_eq!(config.audit, AuditMode::Warn);
        // Defaults stay off.
        let Command::Run { config, .. } = parse_ok("run") else {
            panic!("expected run");
        };
        assert!(config.faults.is_empty());
        assert_eq!(config.audit, AuditMode::Off);
    }

    #[test]
    fn bad_fault_specs_are_rejected() {
        assert!(parse_err("run --faults crashes").0.contains("k=v"));
        assert!(parse_err("run --faults frobs=3").0.contains("frobs"));
        assert!(parse_err("run --faults target=everyone")
            .0
            .contains("clusterhead"));
        assert!(parse_err("run --audit sometimes").0.contains("sometimes"));
        // Invalid plans trip config validation at parse time.
        assert!(parse_err("run --faults crashes=1,from=-5")
            .0
            .contains("invalid scenario"));
    }

    #[test]
    fn sweep_robustness_flags_parse() {
        let Command::Sweep {
            out,
            resume,
            deadline_s,
            ..
        } = parse_ok("sweep --out cells/ --resume --deadline 30")
        else {
            panic!("expected sweep");
        };
        assert_eq!(out.as_deref(), Some("cells/"));
        assert!(resume);
        assert_eq!(deadline_s, Some(30.0));
        // Defaults stay off.
        let Command::Sweep {
            out,
            resume,
            deadline_s,
            ..
        } = parse_ok("sweep")
        else {
            panic!("expected sweep");
        };
        assert_eq!(out, None);
        assert!(!resume);
        assert_eq!(deadline_s, None);
    }

    #[test]
    fn resume_and_deadline_are_validated() {
        assert!(parse_err("sweep --resume").0.contains("--out"));
        assert!(parse_err("sweep --deadline 0").0.contains("positive"));
        assert!(parse_err("sweep --out --resume").0.contains("directory"));
    }

    #[test]
    fn checkpoint_flags_parse_on_run() {
        let Command::Run {
            config,
            checkpoint_dir,
            ..
        } = parse_ok("run --checkpoint-dir ckpts/ --checkpoint-every 30 --checkpoint-keep 4")
        else {
            panic!("expected run");
        };
        assert_eq!(checkpoint_dir.as_deref(), Some("ckpts/"));
        assert_eq!(config.checkpoint.every_s, 30.0);
        assert_eq!(config.checkpoint.keep, 4);
        // Resume-only: a directory without a cadence is fine (look for
        // snapshots, never write new ones).
        let Command::Run {
            config,
            checkpoint_dir,
            ..
        } = parse_ok("run --checkpoint-dir ckpts/")
        else {
            panic!("expected run");
        };
        assert_eq!(checkpoint_dir.as_deref(), Some("ckpts/"));
        assert!(config.checkpoint.is_off());
    }

    #[test]
    fn checkpoint_flags_are_validated() {
        assert!(parse_err("run --checkpoint-every 30")
            .0
            .contains("--checkpoint-dir"));
        assert!(parse_err("run --checkpoint-every 0").0.contains("positive"));
        assert!(parse_err("run --checkpoint-every -5")
            .0
            .contains("positive"));
        assert!(parse_err("run --checkpoint-dir --json")
            .0
            .contains("directory"));
        assert!(
            parse_err("run --checkpoint-dir c/ --checkpoint-every 30 --checkpoint-keep 0")
                .0
                .contains("invalid scenario")
        );
        assert!(parse_err("sweep --checkpoint-dir ckpts/")
            .0
            .contains("run only"));
        assert!(parse_err("sweep --checkpoint-every 30")
            .0
            .contains("run only"));
    }

    #[test]
    fn usage_mentions_every_command() {
        for needle in [
            "run",
            "sweep",
            "table1",
            "--mobility",
            "--tx-sweep",
            "--trace",
            "--profile",
            "--recluster",
            "--faults",
            "--audit",
            "--engine",
            "--shards",
            "--scheduler",
            "--delivery",
            "--out",
            "--resume",
            "--deadline",
            "drain",
            "--server",
            "--checkpoint-dir",
            "--checkpoint-every",
            "--checkpoint-keep",
        ] {
            assert!(usage().contains(needle), "usage lacks {needle}");
        }
    }

    #[test]
    fn server_mode_parses_on_sweep_only() {
        let Command::Sweep { server, .. } = parse_ok("sweep --server 127.0.0.1:7700") else {
            panic!("expected sweep");
        };
        assert_eq!(server.as_deref(), Some("127.0.0.1:7700"));
        // Defaults stay local.
        let Command::Sweep { server, .. } = parse_ok("sweep") else {
            panic!("expected sweep");
        };
        assert_eq!(server, None);
        assert!(parse_err("run --server 127.0.0.1:7700")
            .0
            .contains("sweep only"));
        assert!(parse_err("sweep --server").0.contains("--server"));
        assert!(parse_err("sweep --server --profile").0.contains("address"));
    }

    #[test]
    fn server_mode_rejects_local_persistence_flags() {
        for line in [
            "sweep --server 127.0.0.1:7700 --out cells/",
            "sweep --server 127.0.0.1:7700 --out cells/ --resume",
            "sweep --server 127.0.0.1:7700 --trace traces/",
            "sweep --server 127.0.0.1:7700 --deadline 30",
        ] {
            assert!(parse_err(line).0.contains("--server"), "{line}");
        }
    }

    #[test]
    fn drain_parses_and_validates() {
        assert_eq!(
            parse_ok("drain --server 127.0.0.1:7700"),
            Command::Drain {
                addr: "127.0.0.1:7700".to_string()
            }
        );
        assert!(parse_err("drain").0.contains("--server"));
        assert!(parse_err("drain --server").0.contains("--server"));
        assert!(parse_err("drain 127.0.0.1:7700").0.contains("--server"));
        assert!(parse_err("drain --server --now").0.contains("--server"));
    }
}
