//! The `mobic-cli` binary: run and sweep MANET clustering scenarios
//! from the command line. See `mobic-cli help`.

use std::path::Path;
use std::time::Duration;

use mobic_cli::{parse, usage, Command};
use mobic_core::AlgorithmKind;
use mobic_metrics::AsciiTable;
use mobic_scenario::{
    latest_snapshot, manifest_for, params, run_batch, run_batch_supervised, run_scenario,
    run_scenario_checkpointed, run_scenario_traced, summarize_cs, RunResult, ScenarioConfig,
    Supervision, SweepOutcome, SweepSpec,
};
use mobic_sweepd::http;
use mobic_trace::{write_atomic, write_manifests, JsonlSink, NullSink, PhaseTimings};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cmd) => {
            if let Err(e) = execute(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn execute(cmd: Command) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => print!("{}", usage()),
        Command::Table1 => print!("{}", params::render_table1()),
        Command::Run {
            config,
            seed,
            json,
            trace,
            profile,
            checkpoint_dir,
        } => {
            let result = if let Some(dir) = &checkpoint_dir {
                run_with_checkpoints(&config, seed, Path::new(dir), trace.as_deref())?
            } else if let Some(path) = &trace {
                let mut sink = JsonlSink::create(path)?;
                let result = run_scenario_traced(&config, seed, &mut sink)?;
                let events = sink.lines();
                sink.finish()?;
                let manifest = manifest_for(&config, seed, &result);
                let mpath = write_manifests(Path::new(path), &[manifest])?;
                eprintln!(
                    "trace: {events} events -> {path}; manifest -> {}",
                    mpath.display()
                );
                result
            } else {
                run_scenario(&config, seed)?
            };
            if profile {
                // stderr so `--json` stdout stays machine-readable.
                eprintln!("{}", result.perf.phase_ms);
            }
            if json {
                println!("{}", serde_json::to_string_pretty(&result)?);
            } else {
                println!(
                    "algorithm           {}\nseed                {}\ntx range            {} m",
                    result.algorithm, result.seed, result.tx_range_m
                );
                println!(
                    "clusterhead changes {} (plus {} during warmup)",
                    result.clusterhead_changes,
                    result.clusterhead_changes_total - result.clusterhead_changes
                );
                println!("affiliation changes {}", result.affiliation_changes);
                println!("avg clusters        {:.2}", result.avg_clusters);
                println!(
                    "gateway fraction    {:.1}%",
                    100.0 * result.gateway_fraction
                );
                println!("mean metric M       {:.3}", result.mean_aggregate_metric);
                println!(
                    "hello traffic       {} broadcasts, {} deliveries",
                    result.hello_broadcasts, result.deliveries
                );
            }
        }
        Command::Drain { addr } => {
            let (status, body) = http::request(&addr, "POST", "/drain", "")?;
            if status != 200 {
                return Err(format!("drain failed ({status}): {body}").into());
            }
            eprintln!("server {addr} draining (in-flight cells finish, then it exits)");
        }
        Command::Sweep {
            config,
            tx_values,
            algorithms,
            seeds,
            trace,
            profile,
            out,
            resume,
            deadline_s,
            server,
        } => {
            if let Some(addr) = &server {
                return sweep_via_server(addr, &config, &tx_values, &algorithms, seeds);
            }
            let seed_list: Vec<u64> = (0..seeds).collect();
            let mut header = vec!["Tx (m)".to_string()];
            for alg in &algorithms {
                header.push(format!("{} CS", alg.name()));
                header.push(format!("{} clusters", alg.name()));
            }
            let mut table = AsciiTable::new(header);
            let mut manifests = Vec::new();
            let mut phase_total = PhaseTimings::default();
            let out_dir = out.as_deref().map(Path::new);
            for &tx in &tx_values {
                let mut row = vec![format!("{tx:.0}")];
                for &alg in &algorithms {
                    let cell_path =
                        out_dir.map(|d| d.join(format!("cell_{}_tx{tx:.0}.json", alg.name())));
                    if resume {
                        // A parseable cell file is a finished cell;
                        // a truncated or missing one reruns (writes
                        // are atomic, so truncation means pre-atomic
                        // tooling or manual editing).
                        if let Some(cell) = cell_path
                            .as_ref()
                            .and_then(|p| std::fs::read_to_string(p).ok())
                            .and_then(|text| SweepOutcome::from_json(&text))
                        {
                            eprintln!("resume: {} tx {tx:.0} already done, skipping", alg.name());
                            row.push(format!("{:.1}", cell.mean_cs));
                            row.push(format!("{:.1}", cell.mean_clusters));
                            continue;
                        }
                    }
                    let jobs: Vec<_> = seed_list
                        .iter()
                        .map(|&s| (config.with_algorithm(alg).with_tx_range(tx), s))
                        .collect();
                    let runs = if let Some(limit) = deadline_s {
                        // Supervised: a stuck or panicking run is
                        // reported and dropped from the cell instead
                        // of hanging or aborting the sweep.
                        let sup = Supervision {
                            soft_deadline: Some(Duration::from_secs_f64(limit)),
                            ..Supervision::default()
                        };
                        let mut ok = Vec::with_capacity(jobs.len());
                        for r in run_batch_supervised(&jobs, &sup) {
                            match r {
                                Ok(r) => ok.push(r),
                                Err(e) => eprintln!("warning: {} tx {tx:.0}: {e}", alg.name()),
                            }
                        }
                        ok
                    } else if let Some(dir) = &trace {
                        // Traced sweeps run sequentially: one JSONL
                        // file per (algorithm, tx, seed) cell member.
                        let dir = Path::new(dir);
                        let mut runs = Vec::with_capacity(jobs.len());
                        for (cfg, s) in &jobs {
                            let file =
                                dir.join(format!("trace_{}_tx{tx:.0}_seed{s}.jsonl", alg.name()));
                            let mut sink = JsonlSink::create(&file)?;
                            let r = run_scenario_traced(cfg, *s, &mut sink)?;
                            sink.finish()?;
                            manifests.push(manifest_for(cfg, *s, &r));
                            runs.push(r);
                        }
                        runs
                    } else {
                        run_batch(&jobs)?
                    };
                    if profile {
                        for r in &runs {
                            phase_total.accumulate(&r.perf.phase_ms);
                        }
                    }
                    if runs.is_empty() {
                        eprintln!(
                            "warning: {} tx {tx:.0}: no run survived; cell skipped",
                            alg.name()
                        );
                        row.push("-".to_string());
                        row.push("-".to_string());
                        continue;
                    }
                    let cell = summarize_cs(tx, &runs);
                    if let Some(path) = &cell_path {
                        // `to_json_pretty` is the same canonical
                        // serialization the sweepd cache stores, so
                        // an `--out` dir doubles as a warm cache.
                        write_atomic(path, cell.to_json_pretty())?;
                    }
                    row.push(format!("{:.1}", cell.mean_cs));
                    row.push(format!("{:.1}", cell.mean_clusters));
                }
                table.row(row);
            }
            print!("{}", table.render());
            if let Some(dir) = &trace {
                let mpath = write_manifests(&Path::new(dir).join("sweep.json"), &manifests)?;
                eprintln!(
                    "traces: {} files -> {dir}; manifest -> {}",
                    manifests.len(),
                    mpath.display()
                );
            }
            if profile {
                eprintln!("accumulated over all runs:\n{phase_total}");
            }
        }
    }
    Ok(())
}

/// Runs one scenario with crash recovery: resumes from the newest
/// valid snapshot in `dir` (corrupt or foreign snapshots are skipped
/// with a warning, never restored) and, when the config's checkpoint
/// cadence is on, keeps writing rotated snapshots. The result — and
/// the trace file, when tracing — is byte-identical to an
/// uninterrupted run.
fn run_with_checkpoints(
    config: &ScenarioConfig,
    seed: u64,
    dir: &Path,
    trace: Option<&str>,
) -> Result<RunResult, Box<dyn std::error::Error>> {
    let (snap, rejected) = latest_snapshot(dir);
    if rejected > 0 {
        eprintln!(
            "checkpoint: skipped {rejected} corrupt snapshot(s) in {}",
            dir.display()
        );
    }
    // Never hand a foreign snapshot to the runner: a stale directory
    // (different scenario or seed) degrades to a cold start.
    let snap = snap.filter(|s| match s.compatible_with(config, seed) {
        Ok(()) => true,
        Err(reason) => {
            eprintln!("checkpoint: ignoring snapshot ({reason}); cold start");
            false
        }
    });
    // A snapshot from an untraced run cannot resume a traced one
    // byte-exactly (no cursor to truncate the trace to).
    let snap = snap.filter(|s| {
        if trace.is_some() && s.trace_cursor().is_none() {
            eprintln!("checkpoint: snapshot has no trace cursor; cold start for a traced run");
            false
        } else {
            true
        }
    });
    if let Some(s) = &snap {
        eprintln!(
            "checkpoint: resuming at event {} (t = {:.1} s)",
            s.events_processed(),
            s.sim_now().as_secs_f64()
        );
    }
    if let Some(path) = trace {
        let mut sink = match snap.as_ref().and_then(|s| s.trace_cursor()) {
            Some(cursor) => JsonlSink::resume(path, cursor)?,
            None => JsonlSink::create(path)?,
        };
        let result = run_scenario_checkpointed(config, seed, dir, snap, &mut sink)?;
        let events = sink.lines();
        sink.finish()?;
        let manifest = manifest_for(config, seed, &result);
        let mpath = write_manifests(Path::new(path), &[manifest])?;
        eprintln!(
            "trace: {events} events -> {path}; manifest -> {}",
            mpath.display()
        );
        Ok(result)
    } else {
        Ok(run_scenario_checkpointed(
            config,
            seed,
            dir,
            snap,
            &mut NullSink,
        )?)
    }
}

/// Submits the sweep to a `mobic-sweepd` service, tails its progress,
/// and renders the same CS table from the (cached or freshly
/// computed) cells. The cells come back byte-identical to a local
/// `mobic-cli sweep`, so the rendered table is identical too.
fn sweep_via_server(
    addr: &str,
    config: &ScenarioConfig,
    tx_values: &[f64],
    algorithms: &[AlgorithmKind],
    seeds: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let spec = SweepSpec {
        base: *config,
        tx_values: tx_values.to_vec(),
        algorithms: algorithms.to_vec(),
        seeds,
        fault_panic_attempts: 0,
    };
    let (status, body) = http::request(addr, "POST", "/sweep", &spec.to_json())?;
    if status != 200 {
        return Err(format!("server rejected the sweep ({status}): {body}").into());
    }
    let response: serde_json::Value = serde_json::from_str(&body)?;
    let keys: Vec<String> = response["cells"]
        .as_array()
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str().map(String::from))
                .collect()
        })
        .unwrap_or_default();
    if keys.len() != tx_values.len() * algorithms.len() {
        return Err(format!(
            "server returned {} cell keys, expected {}",
            keys.len(),
            tx_values.len() * algorithms.len()
        )
        .into());
    }
    eprintln!(
        "server accepted {} cells ({} from cache, {} queued)",
        keys.len(),
        response["cached"],
        response["queued"]
    );
    let mut cells: Vec<Option<SweepOutcome>> = vec![None; keys.len()];
    let mut last_progress = String::new();
    loop {
        let mut pending = 0usize;
        for (i, key) in keys.iter().enumerate() {
            if cells[i].is_some() {
                continue;
            }
            let (status, body) = http::request(addr, "GET", &format!("/cell/{key}"), "")?;
            match status {
                200 => {
                    cells[i] = Some(
                        SweepOutcome::from_json(&body)
                            .ok_or_else(|| format!("cell {key}: unparseable response"))?,
                    );
                }
                404 => pending += 1,
                _ => return Err(format!("cell {key} failed on the server: {body}").into()),
            }
        }
        if pending == 0 {
            break;
        }
        if let Ok((200, status_body)) = http::request(addr, "GET", "/status", "") {
            if let Ok(v) = serde_json::from_str::<serde_json::Value>(&status_body) {
                let progress = format!(
                    "server: {} queued, {} running, {} cells pending",
                    v["queued"], v["running"], pending
                );
                if progress != last_progress {
                    eprintln!("{progress}");
                    last_progress = progress;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    let mut header = vec!["Tx (m)".to_string()];
    for alg in algorithms {
        header.push(format!("{} CS", alg.name()));
        header.push(format!("{} clusters", alg.name()));
    }
    let mut table = AsciiTable::new(header);
    for (ti, tx) in tx_values.iter().enumerate() {
        let mut row = vec![format!("{tx:.0}")];
        for ai in 0..algorithms.len() {
            // Key order mirrors the spec's expansion: tx outer,
            // algorithm inner.
            match &cells[ti * algorithms.len() + ai] {
                Some(cell) => {
                    row.push(format!("{:.1}", cell.mean_cs));
                    row.push(format!("{:.1}", cell.mean_clusters));
                }
                None => {
                    row.push("-".to_string());
                    row.push("-".to_string());
                }
            }
        }
        table.row(row);
    }
    print!("{}", table.render());
    Ok(())
}
