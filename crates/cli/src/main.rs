//! The `mobic-cli` binary: run and sweep MANET clustering scenarios
//! from the command line. See `mobic-cli help`.

use mobic_cli::{parse, usage, Command};
use mobic_metrics::AsciiTable;
use mobic_scenario::{params, run_batch, run_scenario, summarize_cs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cmd) => {
            if let Err(e) = execute(cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn execute(cmd: Command) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => print!("{}", usage()),
        Command::Table1 => print!("{}", params::render_table1()),
        Command::Run { config, seed, json } => {
            let result = run_scenario(&config, seed)?;
            if json {
                println!("{}", serde_json::to_string_pretty(&result)?);
            } else {
                println!(
                    "algorithm           {}\nseed                {}\ntx range            {} m",
                    result.algorithm, result.seed, result.tx_range_m
                );
                println!(
                    "clusterhead changes {} (plus {} during warmup)",
                    result.clusterhead_changes,
                    result.clusterhead_changes_total - result.clusterhead_changes
                );
                println!("affiliation changes {}", result.affiliation_changes);
                println!("avg clusters        {:.2}", result.avg_clusters);
                println!("gateway fraction    {:.1}%", 100.0 * result.gateway_fraction);
                println!("mean metric M       {:.3}", result.mean_aggregate_metric);
                println!(
                    "hello traffic       {} broadcasts, {} deliveries",
                    result.hello_broadcasts, result.deliveries
                );
            }
        }
        Command::Sweep {
            config,
            tx_values,
            algorithms,
            seeds,
        } => {
            let seed_list: Vec<u64> = (0..seeds).collect();
            let mut header = vec!["Tx (m)".to_string()];
            for alg in &algorithms {
                header.push(format!("{} CS", alg.name()));
                header.push(format!("{} clusters", alg.name()));
            }
            let mut table = AsciiTable::new(header);
            for &tx in &tx_values {
                let mut row = vec![format!("{tx:.0}")];
                for &alg in &algorithms {
                    let jobs: Vec<_> = seed_list
                        .iter()
                        .map(|&s| (config.with_algorithm(alg).with_tx_range(tx), s))
                        .collect();
                    let runs = run_batch(&jobs)?;
                    let out = summarize_cs(tx, &runs);
                    row.push(format!("{:.1}", out.mean_cs));
                    row.push(format!("{:.1}", out.mean_clusters));
                }
                table.row(row);
            }
            print!("{}", table.render());
        }
    }
    Ok(())
}
