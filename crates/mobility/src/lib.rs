//! Mobility models for MANET simulation.
//!
//! The paper's evaluation uses the CMU *random waypoint* generator
//! (`setdest`); this crate reimplements that model plus the group and
//! specialized models discussed in the paper's related-work and
//! future-work sections:
//!
//! * [`RandomWaypoint`] — the paper's primary model (§4.1, Table 1);
//! * [`RandomWalk`] — boundary-reflecting Brownian-style motion, cited
//!   as the basis of the path-availability framework \[16\];
//! * [`GaussMarkov`] — temporally correlated velocity, useful as a
//!   smooth-motion ablation;
//! * [`Rpgm`] — the Reference Point Group Mobility model of \[9\]
//!   (§2.2), where a logical group center drives member motion;
//! * [`Highway`] — lane-based convoy motion (§5: "cars traveling on a
//!   highway");
//! * [`Manhattan`] — urban street-grid motion with intersection turns;
//! * [`ConferenceHall`] — booth-hopping pedestrians with long pauses
//!   (§5: "attendees in a conference hall");
//! * [`Waypoints`] — an explicit scripted trace, and [`Stationary`] —
//!   no motion; both used heavily in tests.
//!
//! # Design
//!
//! Every model implements [`Mobility`], whose central method is
//! `position_at(t)`: models describe motion **analytically** as
//! piecewise-linear [`Trajectory`] legs extended lazily on demand, so
//! positions at Hello-broadcast instants are exact — there is no
//! per-tick numerical integration and therefore no integration error.
//!
//! # Examples
//!
//! ```
//! use mobic_geom::Rect;
//! use mobic_mobility::{Mobility, RandomWaypoint, RandomWaypointParams};
//! use mobic_sim::{rng::SeedSplitter, SimTime};
//!
//! let params = RandomWaypointParams {
//!     field: Rect::square(670.0),
//!     min_speed_mps: 0.1,
//!     max_speed_mps: 20.0,
//!     pause: SimTime::ZERO,
//! };
//! let mut node = RandomWaypoint::new(params, SeedSplitter::new(1).stream("mobility", 0));
//! let p0 = node.position_at(SimTime::ZERO);
//! let p1 = node.position_at(SimTime::from_secs(10));
//! assert!(params.field.contains(p0));
//! assert!(params.field.contains(p1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod conference;
mod gauss_markov;
mod highway;
mod manhattan;
mod random_walk;
mod random_waypoint;
mod rpgm;
mod scripted;
mod trajectory;

pub use conference::{ConferenceHall, ConferenceHallParams};
pub use gauss_markov::{GaussMarkov, GaussMarkovParams};
pub use highway::{Highway, HighwayParams};
pub use manhattan::{Manhattan, ManhattanParams};
pub use random_walk::{RandomWalk, RandomWalkParams};
pub use random_waypoint::{RandomWaypoint, RandomWaypointParams};
pub use rpgm::{Rpgm, RpgmGroup, RpgmParams};
pub use scripted::{Stationary, Waypoints};
pub use trajectory::{Leg, Trajectory};

use mobic_geom::Vec2;
use mobic_sim::SimTime;

/// A node's motion over simulation time.
///
/// Implementations must be **consistent**: repeated queries at the same
/// time return the same position (models extend an internal trajectory
/// lazily, they never resample the past). Queries may be made at any
/// non-decreasing *or* decreasing time within the extended horizon.
/// `Send` is a supertrait so models can be parked on worker threads
/// for trajectory pre-extension (the sharded engine's lookahead
/// windows). Models own only seeded RNG state and plain data, so this
/// costs nothing; combined with consistency it makes pre-extension
/// invisible — extending the horizon early, on any thread, can never
/// change what a later query returns.
pub trait Mobility: Send {
    /// Position of the node at simulation time `t` (meters).
    fn position_at(&mut self, t: SimTime) -> Vec2;

    /// Instantaneous velocity at time `t` (m/s). At a breakpoint
    /// between two legs, the velocity of the *incoming* leg is
    /// reported.
    fn velocity_at(&mut self, t: SimTime) -> Vec2;
}

impl<M: Mobility + ?Sized> Mobility for Box<M> {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        (**self).position_at(t)
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        (**self).velocity_at(t)
    }
}

/// Draws a speed uniformly from `(0, max]`-style ranges used by the
/// CMU scenario generator: uniform in `[min, max]`, with `min = 0`
/// mapped to an open interval so nodes never freeze forever.
pub(crate) fn sample_speed<R: rand::Rng>(rng: &mut R, min: f64, max: f64) -> f64 {
    debug_assert!(min >= 0.0 && max >= min);
    if max <= 0.0 {
        return 0.0;
    }
    if min > 0.0 {
        rng.gen_range(min..=max)
    } else {
        // (0, max]: 1 - U where U in [0, 1) gives (0, 1].
        (1.0 - rng.gen::<f64>()) * max
    }
}

/// Uniform random point inside `field`.
pub(crate) fn sample_point<R: rand::Rng>(rng: &mut R, field: mobic_geom::Rect) -> Vec2 {
    field.point_at(rng.gen::<f64>(), rng.gen::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    #[test]
    fn sample_speed_ranges() {
        let mut rng = SeedSplitter::new(1).stream("t", 0);
        for _ in 0..1000 {
            let s = sample_speed(&mut rng, 0.0, 20.0);
            assert!(s > 0.0 && s <= 20.0, "{s}");
            let s = sample_speed(&mut rng, 5.0, 10.0);
            assert!((5.0..=10.0).contains(&s), "{s}");
        }
        assert_eq!(sample_speed(&mut rng, 0.0, 0.0), 0.0);
    }

    #[test]
    fn sample_point_in_field() {
        let mut rng = SeedSplitter::new(1).stream("t", 0);
        let field = mobic_geom::Rect::new(100.0, 50.0);
        for _ in 0..1000 {
            assert!(field.contains(sample_point(&mut rng, field)));
        }
    }

    #[test]
    fn boxed_mobility_delegates() {
        let mut boxed: Box<dyn Mobility> = Box::new(Stationary::new(Vec2::new(1.0, 2.0)));
        assert_eq!(
            boxed.position_at(SimTime::from_secs(5)),
            Vec2::new(1.0, 2.0)
        );
        assert_eq!(boxed.velocity_at(SimTime::from_secs(5)), Vec2::ZERO);
    }
}
