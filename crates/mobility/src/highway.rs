//! Lane-based highway mobility (§5 of the paper: "cars traveling on a
//! highway").
//!
//! Vehicles travel along horizontal lanes spanning the field. Each
//! lane has a direction (alternating) and a nominal speed; vehicles
//! jitter around their lane speed with a first-order autoregressive
//! process and wrap around at the field edge (modeling a steady flow
//! of traffic). Vehicles in the same direction have very low relative
//! mobility — the scenario the paper predicts MOBIC will excel in.

use mobic_geom::{Rect, Vec2};
use mobic_sim::SimTime;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::{Mobility, Trajectory};

/// Parameters of the [`Highway`] model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HighwayParams {
    /// The bounding field; lanes run along x, spread across y.
    pub field: Rect,
    /// Number of lanes (≥ 1).
    pub lanes: u32,
    /// `true` for two-way traffic (odd lanes run in −x, even lanes in
    /// +x); `false` for a one-way convoy road (all lanes run in +x) —
    /// the "cars traveling on a highway" setting of the paper's §5,
    /// where relative mobility between all nodes is uniformly low.
    pub bidirectional: bool,
    /// Nominal speed of lane traffic (m/s).
    pub lane_speed_mps: f64,
    /// Standard deviation of per-vehicle speed jitter (m/s).
    pub speed_jitter: f64,
    /// Autoregressive memory of the speed jitter, in `[0, 1]`.
    pub jitter_alpha: f64,
    /// Speed update period.
    pub step: SimTime,
}

impl HighwayParams {
    /// Validates the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics on zero lanes, negative speeds, invalid alpha, or zero
    /// step.
    pub fn validate(&self) {
        assert!(self.lanes >= 1, "need at least one lane");
        assert!(
            self.lane_speed_mps >= 0.0 && self.lane_speed_mps.is_finite(),
            "lane speed must be finite and non-negative"
        );
        assert!(self.speed_jitter >= 0.0, "jitter must be non-negative");
        assert!(
            (0.0..=1.0).contains(&self.jitter_alpha),
            "jitter alpha must be in [0, 1]"
        );
        assert!(!self.step.is_zero(), "step must be positive");
    }

    /// The y-coordinate of the center of `lane` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.lanes`.
    #[must_use]
    pub fn lane_y(&self, lane: u32) -> f64 {
        assert!(lane < self.lanes, "lane {lane} out of {}", self.lanes);
        let spacing = self.field.height() / f64::from(self.lanes);
        self.field.min().y + spacing * (f64::from(lane) + 0.5)
    }

    /// Direction of `lane`: `+1.0` (east) for even lanes, `-1.0`
    /// (west) for odd lanes when bidirectional; always `+1.0` on a
    /// one-way road.
    #[must_use]
    pub fn lane_direction(&self, lane: u32) -> f64 {
        if self.bidirectional && lane % 2 == 1 {
            -1.0
        } else {
            1.0
        }
    }
}

/// A vehicle on the highway.
///
/// Wrapping at the field edge is modeled as an instantaneous teleport
/// in Euclidean space (a car leaving the observed stretch is replaced
/// by a statistically identical one entering). Link-level code must
/// therefore treat large single-step displacements as link breaks,
/// which is exactly what happens physically when a car leaves the
/// observed road segment.
///
/// # Examples
///
/// ```
/// use mobic_geom::Rect;
/// use mobic_mobility::{Highway, HighwayParams, Mobility};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let params = HighwayParams {
///     field: Rect::new(1000.0, 100.0),
///     lanes: 4,
///     bidirectional: true,
///     lane_speed_mps: 25.0,
///     speed_jitter: 2.0,
///     jitter_alpha: 0.9,
///     step: SimTime::from_secs(1),
/// };
/// let mut car = Highway::new(params, 0, SeedSplitter::new(2).stream("hwy", 0));
/// let p = car.position_at(SimTime::from_secs(30));
/// assert!(params.field.contains(p));
/// ```
#[derive(Debug, Clone)]
pub struct Highway {
    params: HighwayParams,
    lane: u32,
    traj: Trajectory,
    rng: ChaCha12Rng,
    jitter: f64,
}

impl Highway {
    /// Creates a vehicle in `lane` (0-based) at a uniform random
    /// position along the lane.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid or `lane >= params.lanes`.
    #[must_use]
    pub fn new(params: HighwayParams, lane: u32, mut rng: ChaCha12Rng) -> Self {
        params.validate();
        let x = params.field.min().x + rng.gen::<f64>() * params.field.width();
        let origin = Vec2::new(x, params.lane_y(lane));
        Highway {
            params,
            lane,
            traj: Trajectory::new(origin),
            rng,
            jitter: 0.0,
        }
    }

    /// The lane this vehicle drives in.
    #[must_use]
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// The trajectory generated so far.
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    fn gauss(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn extend_step(&mut self) {
        let p = self.params;
        let a = p.jitter_alpha;
        self.jitter = a * self.jitter + (1.0 - a * a).sqrt() * p.speed_jitter * self.gauss();
        let speed = (p.lane_speed_mps + self.jitter).max(0.0);
        let dir = p.lane_direction(self.lane);
        let velocity = Vec2::new(dir * speed, 0.0);
        let pos = self.traj.last_position();
        let dt = p.step.as_secs_f64();
        let target = pos + velocity * dt;
        if target.x >= p.field.min().x && target.x <= p.field.max().x {
            self.traj.push_velocity(velocity, p.step);
        } else {
            // Split the step at the edge, wrap, continue.
            let dist_to_edge = if dir > 0.0 {
                p.field.max().x - pos.x
            } else {
                pos.x - p.field.min().x
            };
            let t_edge = if speed > 0.0 {
                dist_to_edge / speed
            } else {
                dt
            };
            let d_edge = SimTime::from_secs_f64(t_edge.clamp(0.0, dt));
            if !d_edge.is_zero() {
                self.traj.push_velocity(velocity, d_edge);
            }
            // Teleport to the opposite edge: a zero-duration "jump"
            // realized by a fast move leg of one microsecond.
            let entry_x = if dir > 0.0 {
                p.field.min().x
            } else {
                p.field.max().x
            };
            let here = self.traj.last_position();
            let entry = Vec2::new(entry_x, here.y);
            let jump_speed = entry.distance(here) / SimTime::MICROSECOND.as_secs_f64();
            self.traj.push_move(entry, jump_speed);
            let rest = p.step.saturating_sub(d_edge + SimTime::MICROSECOND);
            if !rest.is_zero() {
                self.traj.push_velocity(velocity, rest);
            }
        }
    }

    fn ensure(&mut self, t: SimTime) {
        while self.traj.horizon() <= t {
            let before = self.traj.horizon();
            self.extend_step();
            if self.traj.horizon() == before {
                self.traj.push_pause(self.params.step);
            }
        }
    }
}

impl Mobility for Highway {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.params
            .field
            .clamp(self.traj.sample(t).expect("extended").0)
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.traj.sample(t).expect("extended").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn params() -> HighwayParams {
        HighwayParams {
            field: Rect::new(1000.0, 100.0),
            lanes: 4,
            bidirectional: true,
            lane_speed_mps: 25.0,
            speed_jitter: 2.0,
            jitter_alpha: 0.9,
            step: SimTime::from_secs(1),
        }
    }

    fn rng(i: u64) -> ChaCha12Rng {
        SeedSplitter::new(21).stream("hwy-test", i)
    }

    #[test]
    fn lane_geometry() {
        let p = params();
        assert_eq!(p.lane_y(0), 12.5);
        assert_eq!(p.lane_y(3), 87.5);
        assert_eq!(p.lane_direction(0), 1.0);
        assert_eq!(p.lane_direction(1), -1.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn invalid_lane_panics() {
        let _ = params().lane_y(4);
    }

    #[test]
    fn stays_in_field_and_lane() {
        let p = params();
        let mut car = Highway::new(p, 2, rng(0));
        let y = p.lane_y(2);
        for s in 0..600 {
            let pos = car.position_at(SimTime::from_secs(s));
            assert!(p.field.contains(pos), "escaped: {pos}");
            assert!((pos.y - y).abs() < 1e-9, "left lane: {pos}");
        }
    }

    #[test]
    fn direction_matches_lane() {
        let p = params();
        let mut east = Highway::new(p, 0, rng(1));
        let mut west = Highway::new(p, 1, rng(2));
        let t = SimTime::from_millis(500);
        assert!(east.velocity_at(t).x > 0.0);
        assert!(west.velocity_at(t).x < 0.0);
    }

    #[test]
    fn average_speed_near_lane_speed() {
        let p = params();
        let mut car = Highway::new(p, 0, rng(3));
        // Average |v| over many steps.
        let mut total = 0.0;
        let n = 500;
        for s in 0..n {
            total += car
                .velocity_at(SimTime::from_millis(s * 1000 + 500))
                .x
                .abs();
        }
        let mean = total / n as f64;
        assert!((mean - 25.0).abs() < 3.0, "mean speed {mean}");
    }

    #[test]
    fn wrapping_returns_to_entry_edge() {
        let p = HighwayParams {
            field: Rect::new(100.0, 10.0),
            lanes: 1,
            bidirectional: true,
            lane_speed_mps: 50.0,
            speed_jitter: 0.0,
            jitter_alpha: 0.0,
            step: SimTime::from_secs(1),
        };
        let mut car = Highway::new(p, 0, rng(4));
        // 50 m/s in a 100 m field: wraps every 2 s. Over 60 s the car
        // must always be inside.
        for ms in (0..60_000).step_by(100) {
            let pos = car.position_at(SimTime::from_millis(ms));
            assert!(p.field.contains(pos), "escaped: {pos} at {ms} ms");
        }
    }

    #[test]
    fn one_way_road_all_lanes_east() {
        let p = HighwayParams {
            bidirectional: false,
            ..params()
        };
        for lane in 0..4 {
            assert_eq!(p.lane_direction(lane), 1.0, "lane {lane}");
        }
        let mut car = Highway::new(p, 1, rng(9));
        assert!(car.velocity_at(SimTime::from_millis(500)).x > 0.0);
    }

    #[test]
    fn deterministic() {
        let p = params();
        let mut a = Highway::new(p, 1, rng(5));
        let mut b = Highway::new(p, 1, rng(5));
        for s in (0..300).step_by(11) {
            let t = SimTime::from_secs(s);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn same_lane_cars_have_low_relative_speed() {
        let p = params();
        let mut a = Highway::new(p, 0, rng(6));
        let mut b = Highway::new(p, 0, rng(7));
        let t = SimTime::from_secs(100);
        let rel = (a.velocity_at(t) - b.velocity_at(t)).length();
        assert!(rel < 6.0 * p.speed_jitter, "relative speed {rel}");
    }
}
