//! Gauss–Markov mobility: temporally correlated speed and heading.

use mobic_geom::{Rect, Vec2};
use mobic_sim::SimTime;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::{sample_point, Mobility, Trajectory};

/// Parameters of the [`GaussMarkov`] model.
///
/// Speed and heading evolve as first-order autoregressive processes:
///
/// `s_{n+1} = α·s_n + (1−α)·s̄ + √(1−α²)·σ_s·w_s`
///
/// and similarly for heading, with `w` standard normal. `α = 0` gives
/// memoryless (random-walk-like) motion; `α → 1` gives nearly straight
/// lines. Near field edges the mean heading is steered toward the
/// field center, the standard edge treatment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussMarkovParams {
    /// The bounding field.
    pub field: Rect,
    /// Memory parameter `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Long-run mean speed (m/s).
    pub mean_speed_mps: f64,
    /// Speed randomness (standard deviation, m/s).
    pub speed_sigma: f64,
    /// Heading randomness (standard deviation, radians).
    pub heading_sigma: f64,
    /// Update period.
    pub step: SimTime,
}

impl GaussMarkovParams {
    /// Validates the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics on invalid values (α outside `[0,1]`, negative speeds or
    /// sigmas, zero step).
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.alpha),
            "alpha must be in [0, 1], got {}",
            self.alpha
        );
        assert!(
            self.mean_speed_mps >= 0.0 && self.mean_speed_mps.is_finite(),
            "mean speed must be finite and non-negative"
        );
        assert!(
            self.speed_sigma >= 0.0 && self.heading_sigma >= 0.0,
            "sigmas must be non-negative"
        );
        assert!(!self.step.is_zero(), "step must be positive");
    }
}

/// A node moving under the Gauss–Markov model.
///
/// # Examples
///
/// ```
/// use mobic_geom::Rect;
/// use mobic_mobility::{GaussMarkov, GaussMarkovParams, Mobility};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let params = GaussMarkovParams {
///     field: Rect::square(300.0),
///     alpha: 0.85,
///     mean_speed_mps: 10.0,
///     speed_sigma: 2.0,
///     heading_sigma: 0.4,
///     step: SimTime::from_secs(1),
/// };
/// let mut m = GaussMarkov::new(params, SeedSplitter::new(5).stream("gm", 0));
/// assert!(params.field.contains(m.position_at(SimTime::from_secs(250))));
/// ```
#[derive(Debug, Clone)]
pub struct GaussMarkov {
    params: GaussMarkovParams,
    traj: Trajectory,
    rng: ChaCha12Rng,
    speed: f64,
    heading: f64,
}

impl GaussMarkov {
    /// Creates a node at a uniform random position with speed/heading
    /// initialized at their means.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    #[must_use]
    pub fn new(params: GaussMarkovParams, mut rng: ChaCha12Rng) -> Self {
        params.validate();
        let origin = sample_point(&mut rng, params.field);
        let heading = rng.gen_range(0.0..std::f64::consts::TAU);
        GaussMarkov {
            traj: Trajectory::new(origin),
            speed: params.mean_speed_mps,
            heading,
            params,
            rng,
        }
    }

    /// The trajectory generated so far.
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    /// Standard normal draw (Box–Muller; we avoid a `rand_distr`
    /// dependency for one distribution).
    fn gauss(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.rng.gen::<f64>(); // (0, 1]
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn extend_step(&mut self) {
        let p = self.params;
        let pos = self.traj.last_position();
        // Steer mean heading toward the center when near an edge
        // (within 10% of the field dimension).
        let margin_x = p.field.width() * 0.1;
        let margin_y = p.field.height() * 0.1;
        let near_edge = pos.x < p.field.min().x + margin_x
            || pos.x > p.field.max().x - margin_x
            || pos.y < p.field.min().y + margin_y
            || pos.y > p.field.max().y - margin_y;
        let mean_heading = if near_edge {
            (p.field.center() - pos).angle()
        } else {
            self.heading
        };
        let a = p.alpha;
        let root = (1.0 - a * a).sqrt();
        let ws = self.gauss();
        let wh = self.gauss();
        self.speed =
            (a * self.speed + (1.0 - a) * p.mean_speed_mps + root * p.speed_sigma * ws).max(0.0);
        self.heading = a * self.heading + (1.0 - a) * mean_heading + root * p.heading_sigma * wh;
        let velocity = Vec2::from_polar(self.speed, self.heading);
        // If the step would exit the field, clamp the endpoint and let
        // edge-steering recover on the following steps.
        let dt = p.step.as_secs_f64();
        let target = pos + velocity * dt;
        if p.field.contains(target) {
            self.traj.push_velocity(velocity, p.step);
        } else {
            let clamped = p.field.clamp(target);
            // Move toward the clamped point at the speed implied by
            // covering that distance in one step (may be slower).
            let before = self.traj.horizon();
            self.traj.push_move(clamped, clamped.distance(pos) / dt);
            if self.traj.horizon() == before {
                // Degenerate (zero-length) move: pause out the step.
                self.traj.push_pause(p.step);
            }
            // Turn toward center for the next step.
            self.heading = (p.field.center() - pos).angle();
        }
    }

    fn ensure(&mut self, t: SimTime) {
        while self.traj.horizon() <= t {
            let before = self.traj.horizon();
            self.extend_step();
            if self.traj.horizon() == before {
                self.traj.push_pause(self.params.step);
            }
        }
    }
}

impl Mobility for GaussMarkov {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.params
            .field
            .clamp(self.traj.sample(t).expect("extended").0)
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.traj.sample(t).expect("extended").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn params(alpha: f64) -> GaussMarkovParams {
        GaussMarkovParams {
            field: Rect::square(300.0),
            alpha,
            mean_speed_mps: 10.0,
            speed_sigma: 2.0,
            heading_sigma: 0.3,
            step: SimTime::from_secs(1),
        }
    }

    fn rng(i: u64) -> ChaCha12Rng {
        SeedSplitter::new(11).stream("gm-test", i)
    }

    #[test]
    fn stays_in_field() {
        let p = params(0.8);
        let mut m = GaussMarkov::new(p, rng(0));
        for s in 0..900 {
            let pos = m.position_at(SimTime::from_secs(s));
            assert!(p.field.contains(pos), "escaped at t={s}: {pos}");
        }
    }

    #[test]
    fn deterministic() {
        let p = params(0.5);
        let mut a = GaussMarkov::new(p, rng(1));
        let mut b = GaussMarkov::new(p, rng(1));
        for s in (0..300).step_by(13) {
            let t = SimTime::from_secs(s);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn high_alpha_moves_smoothly() {
        // With alpha near 1 headings barely change between steps away
        // from edges: consecutive-leg velocity angles stay close.
        let p = params(0.98);
        let mut m = GaussMarkov::new(p, rng(2));
        let _ = m.position_at(SimTime::from_secs(100));
        let legs = m.trajectory().legs();
        let mut max_turn: f64 = 0.0;
        for w in legs.windows(2) {
            if w[0].velocity.length() > 0.1 && w[1].velocity.length() > 0.1 {
                let a0 = w[0].velocity.angle();
                let a1 = w[1].velocity.angle();
                let mut d = (a1 - a0).abs();
                if d > std::f64::consts::PI {
                    d = std::f64::consts::TAU - d;
                }
                // Ignore edge-steering events (large forced turns).
                if d < 1.0 {
                    max_turn = max_turn.max(d);
                }
            }
        }
        assert!(max_turn < 1.0, "max turn {max_turn}");
    }

    #[test]
    fn mean_speed_is_tracked() {
        let p = params(0.7);
        let mut m = GaussMarkov::new(p, rng(3));
        let _ = m.position_at(SimTime::from_secs(800));
        let speeds: Vec<f64> = m
            .trajectory()
            .legs()
            .iter()
            .map(|l| l.velocity.length())
            .collect();
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        assert!(
            (mean - p.mean_speed_mps).abs() < 3.0,
            "mean speed {mean} far from {}",
            p.mean_speed_mps
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = GaussMarkov::new(
            GaussMarkovParams {
                alpha: 1.5,
                ..params(0.5)
            },
            rng(0),
        );
    }
}
