//! Reference Point Group Mobility (RPGM) — the group model of Hong et
//! al. \[9\], discussed in the paper's §2.2.
//!
//! Each group has a logical *center* whose motion defines the group's
//! overall movement; each member follows a *reference point* that moves
//! rigidly with the center, plus a bounded random local displacement.
//! Groups of nodes moving together have low relative mobility — exactly
//! the structure MOBIC is designed to exploit — so RPGM scenarios are
//! where mobility-aware clustering shines.

use std::sync::Arc;

use mobic_geom::{Rect, Vec2};
use mobic_sim::SimTime;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::{sample_point, sample_speed, Mobility, Trajectory};

/// Parameters of an RPGM group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpgmParams {
    /// The bounding field the group center moves in.
    pub field: Rect,
    /// Group-center minimum speed (m/s).
    pub min_speed_mps: f64,
    /// Group-center maximum speed (m/s).
    pub max_speed_mps: f64,
    /// Group-center pause at each waypoint.
    pub pause: SimTime,
    /// Maximum distance of a member from its reference point (m).
    pub member_radius_m: f64,
    /// How often members re-draw their local displacement.
    pub member_update: SimTime,
}

impl RpgmParams {
    /// Validates the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics on negative speeds/radius or zero member update period.
    pub fn validate(&self) {
        assert!(
            self.min_speed_mps >= 0.0 && self.max_speed_mps >= self.min_speed_mps,
            "invalid speed range"
        );
        assert!(
            self.member_radius_m >= 0.0 && self.member_radius_m.is_finite(),
            "member radius must be finite and non-negative"
        );
        assert!(
            !self.member_update.is_zero(),
            "member update period must be positive"
        );
    }
}

/// A group: the shared center trajectory, pre-generated to a fixed
/// horizon so all members can reference it immutably (and cheaply)
/// from an [`Arc`].
#[derive(Debug)]
pub struct RpgmGroup {
    params: RpgmParams,
    center: Arc<Trajectory>,
    horizon: SimTime,
    members_created: u64,
    member_seed_rng: ChaCha12Rng,
}

impl RpgmGroup {
    /// Generates a group whose center performs random waypoint motion
    /// in `params.field` up to `horizon` (queries beyond the horizon
    /// panic; pick the simulation end time).
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    #[must_use]
    pub fn new(params: RpgmParams, horizon: SimTime, mut rng: ChaCha12Rng) -> Self {
        params.validate();
        let mut traj = Trajectory::new(sample_point(&mut rng, params.field));
        while traj.horizon() <= horizon {
            if !params.pause.is_zero() {
                traj.push_pause(params.pause);
            }
            let dest = sample_point(&mut rng, params.field);
            let speed = sample_speed(&mut rng, params.min_speed_mps, params.max_speed_mps);
            let before = traj.horizon();
            traj.push_move(dest, speed);
            if traj.horizon() == before && params.pause.is_zero() {
                traj.push_pause(SimTime::MILLISECOND);
            }
        }
        RpgmGroup {
            params,
            center: Arc::new(traj),
            horizon,
            members_created: 0,
            member_seed_rng: rng,
        }
    }

    /// The group parameters.
    #[must_use]
    pub fn params(&self) -> &RpgmParams {
        &self.params
    }

    /// The shared center trajectory.
    #[must_use]
    pub fn center(&self) -> &Arc<Trajectory> {
        &self.center
    }

    /// Creates the next member of this group with its own independent
    /// local-displacement randomness.
    pub fn spawn_member(&mut self) -> Rpgm {
        self.members_created += 1;
        // Derive a member RNG by jumping the group's member-seed rng.
        let mut seed = [0u8; 32];
        self.member_seed_rng.fill(&mut seed);
        use rand_chacha::rand_core::SeedableRng;
        let rng = ChaCha12Rng::from_seed(seed);
        Rpgm::new(self.params, Arc::clone(&self.center), self.horizon, rng)
    }

    /// How many members have been spawned.
    #[must_use]
    pub fn member_count(&self) -> u64 {
        self.members_created
    }
}

/// One member node of an RPGM group.
///
/// The member's position is `center(t) + offset(t)` where `offset`
/// linearly interpolates between displacement samples drawn uniformly
/// in a disk of radius `member_radius_m` every `member_update` period —
/// continuous motion that stays within the group's footprint.
///
/// # Examples
///
/// ```
/// use mobic_geom::Rect;
/// use mobic_mobility::{Mobility, RpgmGroup, RpgmParams};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let params = RpgmParams {
///     field: Rect::square(670.0),
///     min_speed_mps: 0.0,
///     max_speed_mps: 10.0,
///     pause: SimTime::ZERO,
///     member_radius_m: 30.0,
///     member_update: SimTime::from_secs(5),
/// };
/// let horizon = SimTime::from_secs(900);
/// let mut group = RpgmGroup::new(params, horizon, SeedSplitter::new(1).stream("rpgm", 0));
/// let mut a = group.spawn_member();
/// let mut b = group.spawn_member();
/// let t = SimTime::from_secs(100);
/// // Members stay within 2×radius of each other (both within radius of center).
/// assert!(a.position_at(t).distance(b.position_at(t)) <= 2.0 * params.member_radius_m + 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct Rpgm {
    params: RpgmParams,
    center: Arc<Trajectory>,
    horizon: SimTime,
    rng: ChaCha12Rng,
    /// Offset samples at multiples of `member_update`; index k is the
    /// offset at time `k * member_update`.
    offsets: Vec<Vec2>,
}

impl Rpgm {
    fn new(
        params: RpgmParams,
        center: Arc<Trajectory>,
        horizon: SimTime,
        rng: ChaCha12Rng,
    ) -> Self {
        Rpgm {
            params,
            center,
            horizon,
            rng,
            offsets: Vec::new(),
        }
    }

    /// Uniform point in the disk of radius `member_radius_m`.
    fn draw_offset(&mut self) -> Vec2 {
        let r = self.params.member_radius_m * self.rng.gen::<f64>().sqrt();
        let a = self.rng.gen_range(0.0..std::f64::consts::TAU);
        Vec2::from_polar(r, a)
    }

    fn ensure_offsets(&mut self, k: usize) {
        while self.offsets.len() <= k {
            let o = self.draw_offset();
            self.offsets.push(o);
        }
    }

    /// The interpolated local displacement at time `t`.
    fn offset_at(&mut self, t: SimTime) -> (Vec2, Vec2) {
        let period = self.params.member_update;
        let k = (t.as_micros() / period.as_micros()) as usize;
        self.ensure_offsets(k + 1);
        let t0 = period * (k as u64);
        let frac = (t - t0).ratio(period);
        let o0 = self.offsets[k];
        let o1 = self.offsets[k + 1];
        let pos = o0.lerp(o1, frac);
        let vel = (o1 - o0) / period.as_secs_f64();
        (pos, vel)
    }

    fn center_sample(&self, t: SimTime) -> (Vec2, Vec2) {
        assert!(
            t <= self.horizon,
            "RPGM queried past its generated horizon ({} > {})",
            t,
            self.horizon
        );
        self.center
            .sample(t)
            .expect("center generated past horizon")
    }
}

impl Mobility for Rpgm {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        let (cp, _) = self.center_sample(t);
        let (op, _) = self.offset_at(t);
        cp + op
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        let (_, cv) = self.center_sample(t);
        let (_, ov) = self.offset_at(t);
        cv + ov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn params() -> RpgmParams {
        RpgmParams {
            field: Rect::square(670.0),
            min_speed_mps: 0.0,
            max_speed_mps: 10.0,
            pause: SimTime::ZERO,
            member_radius_m: 25.0,
            member_update: SimTime::from_secs(5),
        }
    }

    fn group(seed: u64) -> RpgmGroup {
        RpgmGroup::new(
            params(),
            SimTime::from_secs(900),
            SeedSplitter::new(seed).stream("rpgm-test", 0),
        )
    }

    #[test]
    fn members_stay_near_center() {
        let mut g = group(1);
        let center = Arc::clone(g.center());
        let mut m = g.spawn_member();
        for s in (0..900).step_by(10) {
            let t = SimTime::from_secs(s);
            let cp = center.sample(t).unwrap().0;
            let d = m.position_at(t).distance(cp);
            assert!(d <= params().member_radius_m + 1e-9, "member drifted {d} m");
        }
    }

    #[test]
    fn members_of_same_group_stay_close() {
        let mut g = group(2);
        let mut members: Vec<Rpgm> = (0..5).map(|_| g.spawn_member()).collect();
        assert_eq!(g.member_count(), 5);
        for s in (0..900).step_by(50) {
            let t = SimTime::from_secs(s);
            let positions: Vec<Vec2> = members.iter_mut().map(|m| m.position_at(t)).collect();
            for i in 0..positions.len() {
                for j in (i + 1)..positions.len() {
                    let d = positions[i].distance(positions[j]);
                    assert!(
                        d <= 2.0 * params().member_radius_m + 1e-9,
                        "pair {i},{j}: {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn members_have_distinct_local_motion() {
        let mut g = group(3);
        let mut a = g.spawn_member();
        let mut b = g.spawn_member();
        let t = SimTime::from_secs(123);
        assert_ne!(a.position_at(t), b.position_at(t));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut g1 = group(4);
        let mut g2 = group(4);
        let mut a = g1.spawn_member();
        let mut b = g2.spawn_member();
        for s in (0..900).step_by(37) {
            let t = SimTime::from_secs(s);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn offset_is_continuous_across_updates() {
        let mut g = group(5);
        let mut m = g.spawn_member();
        // Cross an update boundary and check displacement continuity.
        let period = params().member_update;
        let before = m.position_at(period - SimTime::MILLISECOND);
        let at = m.position_at(period);
        let max_speed =
            params().max_speed_mps + 2.0 * params().member_radius_m / period.as_secs_f64();
        assert!(
            before.distance(at) <= max_speed * 0.001 + 1e-6,
            "jump at boundary: {}",
            before.distance(at)
        );
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn query_past_horizon_panics() {
        let mut g = RpgmGroup::new(
            params(),
            SimTime::from_secs(10),
            SeedSplitter::new(6).stream("rpgm-test", 0),
        );
        let mut m = g.spawn_member();
        let _ = m.position_at(SimTime::from_secs(1000));
    }

    #[test]
    fn group_velocity_dominates_member_velocity() {
        // Member velocity = center velocity + small offset drift.
        let mut g = group(7);
        let center = Arc::clone(g.center());
        let mut m = g.spawn_member();
        let t = SimTime::from_secs(200);
        let cv = center.sample(t).unwrap().1;
        let mv = m.velocity_at(t);
        let drift = (mv - cv).length();
        let max_drift = 2.0 * params().member_radius_m / params().member_update.as_secs_f64();
        assert!(drift <= max_drift + 1e-9, "drift {drift} > {max_drift}");
    }
}
