//! Boundary-reflecting random walk.

use mobic_geom::{Rect, Vec2};
use mobic_sim::SimTime;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::{sample_point, sample_speed, Mobility, Trajectory};

/// Parameters of the [`RandomWalk`] model: at fixed epochs the node
/// picks a fresh uniform direction and speed; hitting a field boundary
/// reflects the motion like a billiard ball.
///
/// This is the classic random-walk (Brownian-style) mobility model the
/// path-availability clustering framework \[16\] builds on; we include
/// it both as a baseline mobility pattern and for robustness tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWalkParams {
    /// The bounding field.
    pub field: Rect,
    /// Minimum speed (m/s).
    pub min_speed_mps: f64,
    /// Maximum speed (m/s).
    pub max_speed_mps: f64,
    /// Duration of each constant-velocity epoch.
    pub epoch: SimTime,
}

impl RandomWalkParams {
    /// Validates the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics if speeds are invalid or the epoch is zero.
    pub fn validate(&self) {
        assert!(
            self.min_speed_mps >= 0.0 && self.min_speed_mps.is_finite(),
            "min speed must be finite and non-negative"
        );
        assert!(
            self.max_speed_mps >= self.min_speed_mps && self.max_speed_mps.is_finite(),
            "max speed must be finite and >= min speed"
        );
        assert!(!self.epoch.is_zero(), "epoch must be positive");
    }
}

/// A node moving under the boundary-reflecting random walk.
///
/// # Examples
///
/// ```
/// use mobic_geom::Rect;
/// use mobic_mobility::{Mobility, RandomWalk, RandomWalkParams};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let params = RandomWalkParams {
///     field: Rect::square(100.0),
///     min_speed_mps: 1.0,
///     max_speed_mps: 5.0,
///     epoch: SimTime::from_secs(10),
/// };
/// let mut m = RandomWalk::new(params, SeedSplitter::new(3).stream("walk", 0));
/// assert!(params.field.contains(m.position_at(SimTime::from_secs(123))));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWalk {
    params: RandomWalkParams,
    traj: Trajectory,
    rng: ChaCha12Rng,
}

impl RandomWalk {
    /// Creates a walker at a uniform random start position.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    #[must_use]
    pub fn new(params: RandomWalkParams, mut rng: ChaCha12Rng) -> Self {
        params.validate();
        let origin = sample_point(&mut rng, params.field);
        Self::with_origin(params, rng, origin)
    }

    /// Creates a walker at an explicit start position (clamped into
    /// the field).
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    #[must_use]
    pub fn with_origin(params: RandomWalkParams, rng: ChaCha12Rng, origin: Vec2) -> Self {
        params.validate();
        RandomWalk {
            traj: Trajectory::new(params.field.clamp(origin)),
            params,
            rng,
        }
    }

    /// The trajectory generated so far.
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    /// Extends the trajectory by one epoch, splitting the epoch into
    /// sub-legs at each boundary reflection so the stored trajectory
    /// remains exactly piecewise linear.
    fn extend_epoch(&mut self) {
        let speed = sample_speed(
            &mut self.rng,
            self.params.min_speed_mps,
            self.params.max_speed_mps,
        );
        let angle = self.rng.gen_range(0.0..std::f64::consts::TAU);
        let mut velocity = Vec2::from_polar(speed, angle);
        let mut remaining = self.params.epoch;
        // Guard: a zero-speed epoch is a pause.
        if speed <= 0.0 {
            self.traj.push_pause(remaining);
            return;
        }
        let field = self.params.field;
        let mut guard = 0;
        while !remaining.is_zero() {
            guard += 1;
            assert!(guard < 10_000, "reflection loop failed to converge");
            let pos = self.traj.last_position();
            let dt = remaining.as_secs_f64();
            let target = pos + velocity * dt;
            if field.contains(target) {
                self.traj.push_velocity(velocity, remaining);
                break;
            }
            // Find the first boundary crossing time.
            let t_hit = first_exit_time(field, pos, velocity).unwrap_or(dt);
            let t_hit = t_hit.clamp(0.0, dt);
            let hit_duration = SimTime::from_secs_f64(t_hit);
            if hit_duration.is_zero() {
                // Already on the wall moving outward: flip and retry.
                let p_next = pos + velocity * 1e-9;
                let (_, fx, fy) = field.reflect(p_next);
                if fx {
                    velocity.x = -velocity.x;
                }
                if fy {
                    velocity.y = -velocity.y;
                }
                if !fx && !fy {
                    // Numerically stuck; nudge via pause.
                    self.traj.push_pause(remaining);
                    break;
                }
                continue;
            }
            self.traj.push_velocity(velocity, hit_duration);
            remaining = remaining.saturating_sub(hit_duration);
            // Reflect velocity at whichever wall was hit.
            let p = self.traj.last_position();
            if p.x <= field.min().x + 1e-9 || p.x >= field.max().x - 1e-9 {
                velocity.x = -velocity.x;
            }
            if p.y <= field.min().y + 1e-9 || p.y >= field.max().y - 1e-9 {
                velocity.y = -velocity.y;
            }
        }
    }

    fn ensure(&mut self, t: SimTime) {
        while self.traj.horizon() <= t {
            self.extend_epoch();
        }
    }
}

impl Mobility for RandomWalk {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        // Clamp tiny numerical overshoot at walls.
        let p = self.traj.sample(t).expect("extended").0;
        self.params.field.clamp(p)
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.traj.sample(t).expect("extended").1
    }
}

/// Time until a point at `pos` moving with `velocity` first leaves
/// `field`, or `None` if it never does (zero velocity).
fn first_exit_time(field: Rect, pos: Vec2, velocity: Vec2) -> Option<f64> {
    let mut t_exit = f64::INFINITY;
    if velocity.x > 0.0 {
        t_exit = t_exit.min((field.max().x - pos.x) / velocity.x);
    } else if velocity.x < 0.0 {
        t_exit = t_exit.min((field.min().x - pos.x) / velocity.x);
    }
    if velocity.y > 0.0 {
        t_exit = t_exit.min((field.max().y - pos.y) / velocity.y);
    } else if velocity.y < 0.0 {
        t_exit = t_exit.min((field.min().y - pos.y) / velocity.y);
    }
    if t_exit.is_finite() {
        Some(t_exit.max(0.0))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn params() -> RandomWalkParams {
        RandomWalkParams {
            field: Rect::square(100.0),
            min_speed_mps: 1.0,
            max_speed_mps: 10.0,
            epoch: SimTime::from_secs(10),
        }
    }

    fn rng(i: u64) -> ChaCha12Rng {
        SeedSplitter::new(77).stream("walk-test", i)
    }

    #[test]
    fn stays_in_field() {
        let p = params();
        let mut m = RandomWalk::new(p, rng(0));
        for s in 0..2000 {
            let t = SimTime::from_millis(s * 500);
            let pos = m.position_at(t);
            assert!(p.field.contains(pos), "escaped at {t}: {pos}");
        }
    }

    #[test]
    fn deterministic() {
        let p = params();
        let mut a = RandomWalk::new(p, rng(4));
        let mut b = RandomWalk::new(p, rng(4));
        for s in (0..500).step_by(7) {
            let t = SimTime::from_secs(s);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn reflection_preserves_speed() {
        let p = params();
        let mut m = RandomWalk::new(p, rng(2));
        let _ = m.position_at(SimTime::from_secs(500));
        // Within each epoch the speed is constant even across
        // reflections; overall speeds bounded by max.
        for leg in m.trajectory().legs() {
            let v = leg.velocity.length();
            assert!(v <= p.max_speed_mps + 1e-9, "speed {v}");
        }
    }

    #[test]
    fn small_field_with_fast_walker_many_reflections() {
        let p = RandomWalkParams {
            field: Rect::square(5.0),
            min_speed_mps: 10.0,
            max_speed_mps: 10.0,
            epoch: SimTime::from_secs(60),
        };
        let mut m = RandomWalk::new(p, rng(3));
        for s in 0..120 {
            let pos = m.position_at(SimTime::from_secs(s));
            assert!(p.field.contains(pos), "escaped: {pos}");
        }
    }

    #[test]
    fn corner_start_does_not_wedge() {
        let p = params();
        let mut m = RandomWalk::with_origin(p, rng(5), Vec2::ZERO);
        let end = m.position_at(SimTime::from_secs(300));
        assert!(p.field.contains(end));
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn zero_epoch_panics() {
        let p = RandomWalkParams {
            epoch: SimTime::ZERO,
            ..params()
        };
        let _ = RandomWalk::new(p, rng(0));
    }
}
