//! Exact link-lifetime analysis over piecewise-linear trajectories.
//!
//! Because every mobility model in this crate produces exact
//! piecewise-linear motion, the times at which a pair of nodes enters
//! and leaves radio range can be computed in *closed form* (per
//! overlapping leg pair, the squared distance is a quadratic in `t` —
//! see [`mobic_geom::segment::LinearApproach`]). This module exposes
//! that analysis: exact link intervals, link lifetimes, and their
//! distribution over a whole scenario.
//!
//! This is the analytical counterpart of the paper's §4.2 churn
//! discussion: clusterhead changes track link volatility, and the
//! exact lifetime distribution explains *why* churn peaks at
//! mid ranges (many short-lived links) and falls at large ranges
//! (links persist).

use mobic_geom::segment::LinearApproach;
use mobic_sim::SimTime;

use crate::Trajectory;

/// A closed time interval during which two nodes are within range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkInterval {
    /// When the pair comes within range.
    pub from: SimTime,
    /// When the pair leaves range (equals `horizon` if still linked at
    /// the end of the analysis window).
    pub to: SimTime,
    /// Whether the interval was cut short by the analysis horizon
    /// (i.e. the link outlived the window).
    pub censored: bool,
}

impl LinkInterval {
    /// The interval's duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        (self.to - self.from).as_secs_f64()
    }
}

/// Computes the exact intervals during `[0, horizon]` in which the
/// two trajectories are within `range` of each other.
///
/// Both trajectories must be defined at least up to `horizon` (extend
/// the models first by sampling `position_at(horizon)`).
///
/// # Panics
///
/// Panics if `range` is not positive/finite or either trajectory's
/// generated horizon is shorter than `horizon`.
#[must_use]
pub fn link_intervals(
    a: &Trajectory,
    b: &Trajectory,
    range: f64,
    horizon: SimTime,
) -> Vec<LinkInterval> {
    assert!(range > 0.0 && range.is_finite(), "invalid range {range}");
    assert!(
        a.horizon() >= horizon && b.horizon() >= horizon,
        "trajectories must cover the analysis horizon"
    );
    // Sweep both leg lists simultaneously, intersecting leg spans.
    let mut spans: Vec<(SimTime, SimTime)> = Vec::new(); // raw in-range spans
    let (mut ia, mut ib) = (0usize, 0usize);
    let legs_a = a.legs();
    let legs_b = b.legs();
    let advance = |t: SimTime, legs: &[crate::Leg], i: &mut usize| {
        while *i < legs.len() && legs[*i].end <= t {
            *i += 1;
        }
    };
    let mut t = SimTime::ZERO;
    while t < horizon && ia < legs_a.len() && ib < legs_b.len() {
        let la = &legs_a[ia];
        let lb = &legs_b[ib];
        let start = t.max(la.start).max(lb.start);
        let end = la.end.min(lb.end).min(horizon);
        if start < end {
            // Relative motion is linear over [start, end].
            let pa = la.position_at(start);
            let pb = lb.position_at(start);
            let approach = LinearApproach::new(pa, la.velocity, pb, lb.velocity);
            if let Some((t0, t1)) = approach.within_range_interval(range) {
                let window = (end - start).as_secs_f64();
                let t0 = t0.min(window);
                let t1 = t1.min(window);
                if t1 > t0 {
                    spans.push((
                        start + SimTime::from_secs_f64(t0),
                        start + SimTime::from_secs_f64(t1),
                    ));
                }
            }
        }
        // Advance whichever leg ends first.
        t = end;
        advance(t, legs_a, &mut ia);
        advance(t, legs_b, &mut ib);
        if end == horizon {
            break;
        }
    }
    // Merge adjacent/overlapping spans (a link continuing across leg
    // boundaries produces abutting spans).
    let mut merged: Vec<LinkInterval> = Vec::new();
    const GLUE: SimTime = SimTime::MILLISECOND;
    for (from, to) in spans {
        match merged.last_mut() {
            Some(last) if from <= last.to + GLUE => {
                last.to = last.to.max(to);
            }
            _ => merged.push(LinkInterval {
                from,
                to,
                censored: false,
            }),
        }
    }
    for iv in &mut merged {
        if iv.to >= horizon {
            iv.to = horizon;
            iv.censored = true;
        }
    }
    merged
}

/// Exact link-lifetime samples (seconds) over all node pairs of a
/// scenario, excluding horizon-censored intervals (they would bias
/// the mean downward... upward — they are incomplete observations).
#[must_use]
pub fn link_lifetimes(trajectories: &[Trajectory], range: f64, horizon: SimTime) -> Vec<f64> {
    let mut out = Vec::new();
    for i in 0..trajectories.len() {
        for j in (i + 1)..trajectories.len() {
            for iv in link_intervals(&trajectories[i], &trajectories[j], range, horizon) {
                if !iv.censored {
                    out.push(iv.duration_s());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_geom::Vec2;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Straight-line pass: B crosses A's disk; entry/exit solvable by
    /// hand.
    #[test]
    fn flyby_interval_is_exact() {
        // A fixed at origin (pause leg), B moves from (-100, 30) east
        // at 10 m/s for 20 s. Range 50: |(-100+10t, 30)| = 50 →
        // (10t-100)² = 1600 → t = 6 or 14.
        let mut a = Trajectory::new(Vec2::ZERO);
        a.push_pause(secs(20));
        let mut b = Trajectory::new(Vec2::new(-100.0, 30.0));
        b.push_velocity(Vec2::new(10.0, 0.0), secs(20));
        let ivs = link_intervals(&a, &b, 50.0, secs(20));
        assert_eq!(ivs.len(), 1);
        assert!(
            (ivs[0].from.as_secs_f64() - 6.0).abs() < 1e-6,
            "{:?}",
            ivs[0]
        );
        assert!((ivs[0].to.as_secs_f64() - 14.0).abs() < 1e-6);
        assert!(!ivs[0].censored);
        assert!((ivs[0].duration_s() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn always_linked_pair_is_censored() {
        let mut a = Trajectory::new(Vec2::ZERO);
        a.push_pause(secs(100));
        let mut b = Trajectory::new(Vec2::new(10.0, 0.0));
        b.push_pause(secs(100));
        let ivs = link_intervals(&a, &b, 50.0, secs(100));
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].from, SimTime::ZERO);
        assert_eq!(ivs[0].to, secs(100));
        assert!(ivs[0].censored);
    }

    #[test]
    fn never_linked_pair_has_no_intervals() {
        let mut a = Trajectory::new(Vec2::ZERO);
        a.push_pause(secs(50));
        let mut b = Trajectory::new(Vec2::new(1000.0, 0.0));
        b.push_pause(secs(50));
        assert!(link_intervals(&a, &b, 50.0, secs(50)).is_empty());
    }

    #[test]
    fn link_surviving_leg_boundaries_is_merged() {
        // Both nodes wander but stay within 30 m across several legs.
        let mut a = Trajectory::new(Vec2::ZERO);
        a.push_move(Vec2::new(20.0, 0.0), 2.0); // 10 s
        a.push_move(Vec2::new(0.0, 0.0), 2.0); // 10 s
        a.push_pause(secs(10));
        let mut b = Trajectory::new(Vec2::new(10.0, 5.0));
        b.push_pause(secs(5));
        b.push_move(Vec2::new(15.0, 5.0), 1.0); // 5 s
        b.push_pause(secs(20));
        let ivs = link_intervals(&a, &b, 50.0, secs(30));
        assert_eq!(ivs.len(), 1, "{ivs:?}");
        assert_eq!(ivs[0].from, SimTime::ZERO);
        assert!(ivs[0].censored);
    }

    #[test]
    fn oscillating_pair_produces_multiple_intervals() {
        // B bounces toward and away from A twice.
        let mut a = Trajectory::new(Vec2::ZERO);
        a.push_pause(secs(30));
        let mut b = Trajectory::new(Vec2::new(100.0, 0.0));
        b.push_move(Vec2::new(30.0, 0.0), 10.0); // 7 s; in range (50) from t=5
        b.push_move(Vec2::new(100.0, 0.0), 10.0); // 7 s; leaves range at t=9
        b.push_move(Vec2::new(30.0, 0.0), 10.0); // 7 s; re-enters at t=19
        b.push_pause(secs(10)); // parked at x=30, in range
        let ivs = link_intervals(&a, &b, 50.0, secs(30));
        assert_eq!(ivs.len(), 2, "{ivs:?}");
        assert!((ivs[0].from.as_secs_f64() - 5.0).abs() < 1e-6);
        assert!((ivs[0].to.as_secs_f64() - 9.0).abs() < 1e-6);
        assert!(!ivs[0].censored);
        assert!((ivs[1].from.as_secs_f64() - 19.0).abs() < 1e-6);
        assert!(ivs[1].censored);
    }

    #[test]
    fn lifetime_matches_sampled_connectivity() {
        // Cross-check the exact analysis against dense sampling for a
        // random-ish pair of multi-leg trajectories.
        let mut a = Trajectory::new(Vec2::new(0.0, 0.0));
        let mut b = Trajectory::new(Vec2::new(120.0, -40.0));
        let waypoints_a = [(30.0, 40.0, 3.0), (80.0, 0.0, 7.0), (10.0, 90.0, 2.0)];
        let waypoints_b = [(0.0, 0.0, 5.0), (150.0, 30.0, 4.0), (60.0, 60.0, 6.0)];
        for &(x, y, v) in &waypoints_a {
            a.push_move(Vec2::new(x, y), v);
        }
        for &(x, y, v) in &waypoints_b {
            b.push_move(Vec2::new(x, y), v);
        }
        let horizon = a.horizon().min(b.horizon());
        let range = 60.0;
        let ivs = link_intervals(&a, &b, range, horizon);
        // Dense sampling agreement (10 ms grid).
        let step = SimTime::from_millis(10);
        let mut t = SimTime::ZERO;
        while t <= horizon {
            let pa = a.sample(t).expect("within horizon").0;
            let pb = b.sample(t).expect("within horizon").0;
            let linked = pa.distance(pb) <= range;
            let in_interval = ivs.iter().any(|iv| t >= iv.from && t <= iv.to);
            // Allow disagreement within 20 ms of an interval edge
            // (sampling granularity).
            let near_edge = ivs.iter().any(|iv| {
                t.saturating_sub(iv.from) <= SimTime::from_millis(20)
                    || iv.from.saturating_sub(t) <= SimTime::from_millis(20)
                    || t.saturating_sub(iv.to) <= SimTime::from_millis(20)
                    || iv.to.saturating_sub(t) <= SimTime::from_millis(20)
            });
            assert!(
                linked == in_interval || near_edge,
                "disagreement at {t}: sampled {linked}, exact {in_interval}"
            );
            t += step;
        }
    }

    #[test]
    fn lifetimes_over_population() {
        let mut trajs = Vec::new();
        for k in 0..4 {
            let mut tr = Trajectory::new(Vec2::new(k as f64 * 40.0, 0.0));
            tr.push_move(Vec2::new(k as f64 * 40.0, 100.0), 2.0 + k as f64);
            tr.push_pause(secs(60));
            trajs.push(tr);
        }
        let lifetimes = link_lifetimes(&trajs, 45.0, secs(60));
        for d in &lifetimes {
            assert!(*d > 0.0 && *d <= 60.0);
        }
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn short_trajectory_panics() {
        let mut a = Trajectory::new(Vec2::ZERO);
        a.push_pause(secs(5));
        let mut b = Trajectory::new(Vec2::ZERO);
        b.push_pause(secs(50));
        let _ = link_intervals(&a, &b, 10.0, secs(50));
    }
}
