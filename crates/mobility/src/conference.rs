//! Conference-hall mobility (§5 of the paper: "attendees in a
//! conference hall").
//!
//! Attendees walk at pedestrian speed between a fixed set of *booths*
//! (points of interest) and linger there for long, randomized pauses.
//! Most of the population is stationary most of the time, with low
//! relative mobility around each booth — another scenario where the
//! aggregate local mobility metric should stand out.

use mobic_geom::{Rect, Vec2};
use mobic_sim::SimTime;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::{sample_point, sample_speed, Mobility, Trajectory};

/// Parameters of the [`ConferenceHall`] model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConferenceHallParams {
    /// The hall.
    pub field: Rect,
    /// Number of booths (points of interest), ≥ 1.
    pub booths: u32,
    /// Radius around a booth within which an attendee settles (m).
    pub booth_radius_m: f64,
    /// Walking speed range (m/s); pedestrians, so ~0.5–1.5.
    pub min_speed_mps: f64,
    /// Maximum walking speed (m/s).
    pub max_speed_mps: f64,
    /// Minimum linger time at a booth.
    pub min_pause: SimTime,
    /// Maximum linger time at a booth.
    pub max_pause: SimTime,
}

impl ConferenceHallParams {
    /// Validates the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics on zero booths, invalid speed or pause ranges.
    pub fn validate(&self) {
        assert!(self.booths >= 1, "need at least one booth");
        assert!(
            self.booth_radius_m >= 0.0 && self.booth_radius_m.is_finite(),
            "booth radius must be finite and non-negative"
        );
        assert!(
            self.min_speed_mps >= 0.0 && self.max_speed_mps >= self.min_speed_mps,
            "invalid speed range"
        );
        assert!(self.max_pause >= self.min_pause, "invalid pause range");
    }
}

/// Booth layout shared by all attendees of one hall: booth positions
/// are drawn once from a dedicated RNG stream so every attendee visits
/// the same booths.
#[derive(Debug, Clone)]
pub struct ConferenceHall {
    params: ConferenceHallParams,
    booth_positions: Vec<Vec2>,
}

impl ConferenceHall {
    /// Lays out the hall: booths uniformly placed, kept
    /// `booth_radius_m` away from the walls so settle points stay
    /// inside.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    #[must_use]
    pub fn new(params: ConferenceHallParams, rng: &mut ChaCha12Rng) -> Self {
        params.validate();
        let inner = shrink(params.field, params.booth_radius_m);
        let booth_positions = (0..params.booths)
            .map(|_| sample_point(rng, inner))
            .collect();
        ConferenceHall {
            params,
            booth_positions,
        }
    }

    /// The hall parameters.
    #[must_use]
    pub fn params(&self) -> &ConferenceHallParams {
        &self.params
    }

    /// Booth center positions.
    #[must_use]
    pub fn booths(&self) -> &[Vec2] {
        &self.booth_positions
    }

    /// Creates an attendee with independent randomness, starting at a
    /// random booth.
    #[must_use]
    pub fn spawn_attendee(&self, rng: ChaCha12Rng) -> Attendee {
        Attendee::new(self.clone(), rng)
    }
}

/// Shrinks a rect by `margin` on all sides (clamping at degenerate).
fn shrink(field: Rect, margin: f64) -> Rect {
    let m = margin.min(field.width() / 2.0).min(field.height() / 2.0);
    Rect::from_corners(field.min() + Vec2::new(m, m), field.max() - Vec2::new(m, m))
}

/// One attendee walking between booths.
///
/// # Examples
///
/// ```
/// use mobic_geom::Rect;
/// use mobic_mobility::{ConferenceHall, ConferenceHallParams, Mobility};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let params = ConferenceHallParams {
///     field: Rect::square(100.0),
///     booths: 6,
///     booth_radius_m: 4.0,
///     min_speed_mps: 0.5,
///     max_speed_mps: 1.5,
///     min_pause: SimTime::from_secs(30),
///     max_pause: SimTime::from_secs(120),
/// };
/// let splitter = SeedSplitter::new(8);
/// let hall = ConferenceHall::new(params, &mut splitter.stream("hall", 0));
/// let mut alice = hall.spawn_attendee(splitter.stream("attendee", 0));
/// assert!(params.field.contains(alice.position_at(SimTime::from_secs(600))));
/// ```
#[derive(Debug, Clone)]
pub struct Attendee {
    hall: ConferenceHall,
    traj: Trajectory,
    rng: ChaCha12Rng,
}

impl Attendee {
    fn new(hall: ConferenceHall, mut rng: ChaCha12Rng) -> Self {
        let start = Self::settle_point(&hall, &mut rng);
        Attendee {
            hall,
            traj: Trajectory::new(start),
            rng,
        }
    }

    /// A random point within `booth_radius_m` of a random booth.
    fn settle_point(hall: &ConferenceHall, rng: &mut ChaCha12Rng) -> Vec2 {
        let booth = hall.booth_positions[rng.gen_range(0..hall.booth_positions.len())];
        let r = hall.params.booth_radius_m * rng.gen::<f64>().sqrt();
        let a = rng.gen_range(0.0..std::f64::consts::TAU);
        hall.params.field.clamp(booth + Vec2::from_polar(r, a))
    }

    /// The trajectory generated so far.
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    fn ensure(&mut self, t: SimTime) {
        while self.traj.horizon() <= t {
            // Linger, then walk to the next booth.
            let p = self.hall.params;
            let span = p.max_pause.saturating_sub(p.min_pause);
            let pause = if span.is_zero() {
                p.min_pause
            } else {
                p.min_pause + SimTime::from_micros(self.rng.gen_range(0..=span.as_micros()))
            };
            self.traj.push_pause(pause);
            let dest = Self::settle_point(&self.hall, &mut self.rng);
            let speed = sample_speed(&mut self.rng, p.min_speed_mps, p.max_speed_mps);
            let before = self.traj.horizon();
            self.traj.push_move(dest, speed);
            if self.traj.horizon() == before && pause.is_zero() {
                self.traj.push_pause(SimTime::MILLISECOND);
            }
        }
    }
}

impl Mobility for Attendee {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.traj.sample(t).expect("extended").0
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.traj.sample(t).expect("extended").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn params() -> ConferenceHallParams {
        ConferenceHallParams {
            field: Rect::square(100.0),
            booths: 5,
            booth_radius_m: 5.0,
            min_speed_mps: 0.5,
            max_speed_mps: 1.5,
            min_pause: SimTime::from_secs(30),
            max_pause: SimTime::from_secs(120),
        }
    }

    fn hall(seed: u64) -> ConferenceHall {
        ConferenceHall::new(params(), &mut SeedSplitter::new(seed).stream("hall", 0))
    }

    #[test]
    fn booths_inside_field() {
        let h = hall(1);
        assert_eq!(h.booths().len(), 5);
        for &b in h.booths() {
            assert!(params().field.contains(b));
        }
    }

    #[test]
    fn attendees_stay_in_hall() {
        let h = hall(2);
        let s = SeedSplitter::new(3);
        let mut a = h.spawn_attendee(s.stream("att", 0));
        for t in (0..3600).step_by(30) {
            let pos = a.position_at(SimTime::from_secs(t));
            assert!(params().field.contains(pos), "escaped: {pos}");
        }
    }

    #[test]
    fn attendees_spend_most_time_paused() {
        let h = hall(4);
        let s = SeedSplitter::new(5);
        let mut a = h.spawn_attendee(s.stream("att", 1));
        let _ = a.position_at(SimTime::from_secs(3600));
        let legs = a.trajectory().legs();
        let paused: f64 = legs
            .iter()
            .filter(|l| l.velocity == Vec2::ZERO)
            .map(|l| l.duration().as_secs_f64())
            .sum();
        let total: f64 = legs.iter().map(|l| l.duration().as_secs_f64()).sum();
        assert!(paused / total > 0.5, "paused fraction {}", paused / total);
    }

    #[test]
    fn walking_speed_is_pedestrian() {
        let h = hall(6);
        let s = SeedSplitter::new(7);
        let mut a = h.spawn_attendee(s.stream("att", 2));
        let _ = a.position_at(SimTime::from_secs(3600));
        for leg in a.trajectory().legs() {
            let v = leg.velocity.length();
            assert!(v <= 1.5 + 1e-9, "speed {v}");
        }
    }

    #[test]
    fn attendees_end_up_near_some_booth_when_paused() {
        let h = hall(8);
        let s = SeedSplitter::new(9);
        let mut a = h.spawn_attendee(s.stream("att", 3));
        let _ = a.position_at(SimTime::from_secs(3600));
        for leg in a.trajectory().legs() {
            if leg.velocity == Vec2::ZERO {
                let p = leg.from;
                let near = h
                    .booths()
                    .iter()
                    .any(|&b| b.distance(p) <= params().booth_radius_m + 1e-6);
                assert!(near, "paused far from every booth: {p}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let h1 = hall(10);
        let h2 = hall(10);
        let s = SeedSplitter::new(11);
        let mut a = h1.spawn_attendee(s.stream("att", 0));
        let mut b = h2.spawn_attendee(s.stream("att", 0));
        for t in (0..1800).step_by(60) {
            let t = SimTime::from_secs(t);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    #[should_panic(expected = "booth")]
    fn zero_booths_panics() {
        let p = ConferenceHallParams {
            booths: 0,
            ..params()
        };
        let _ = ConferenceHall::new(p, &mut SeedSplitter::new(1).stream("hall", 0));
    }
}
