//! Scripted and stationary mobility, used by tests, examples and the
//! Figure-1 schematic topology.

use mobic_geom::Vec2;
use mobic_sim::SimTime;

use crate::{Mobility, Trajectory};

/// A node that never moves.
///
/// # Examples
///
/// ```
/// use mobic_geom::Vec2;
/// use mobic_mobility::{Mobility, Stationary};
/// use mobic_sim::SimTime;
///
/// let mut n = Stationary::new(Vec2::new(3.0, 4.0));
/// assert_eq!(n.position_at(SimTime::from_secs(100)), Vec2::new(3.0, 4.0));
/// assert_eq!(n.velocity_at(SimTime::ZERO), Vec2::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    position: Vec2,
}

impl Stationary {
    /// Creates a stationary node at `position`.
    #[must_use]
    pub const fn new(position: Vec2) -> Self {
        Stationary { position }
    }

    /// The node's fixed position.
    #[must_use]
    pub const fn position(&self) -> Vec2 {
        self.position
    }
}

impl Mobility for Stationary {
    fn position_at(&mut self, _t: SimTime) -> Vec2 {
        self.position
    }

    fn velocity_at(&mut self, _t: SimTime) -> Vec2 {
        Vec2::ZERO
    }
}

/// A scripted trace through explicit timed waypoints; the node moves
/// in straight lines between consecutive waypoints and stays at the
/// last waypoint forever after.
///
/// This is the test oracle's workhorse: motions with known algebraic
/// answers (e.g. "approach at exactly 1 m/s") are scripted precisely.
///
/// # Examples
///
/// ```
/// use mobic_geom::Vec2;
/// use mobic_mobility::{Mobility, Waypoints};
/// use mobic_sim::SimTime;
///
/// let mut n = Waypoints::new(
///     Vec2::ZERO,
///     vec![
///         (SimTime::from_secs(10), Vec2::new(10.0, 0.0)),
///         (SimTime::from_secs(20), Vec2::new(10.0, 10.0)),
///     ],
/// );
/// assert_eq!(n.position_at(SimTime::from_secs(5)), Vec2::new(5.0, 0.0));
/// assert_eq!(n.position_at(SimTime::from_secs(15)), Vec2::new(10.0, 5.0));
/// // Holds the last waypoint.
/// assert_eq!(n.position_at(SimTime::from_secs(99)), Vec2::new(10.0, 10.0));
/// ```
#[derive(Debug, Clone)]
pub struct Waypoints {
    traj: Trajectory,
}

impl Waypoints {
    /// Creates a trace starting at `origin` (time zero) and passing
    /// through each `(arrival_time, position)` waypoint in order.
    ///
    /// # Panics
    ///
    /// Panics if waypoint times are not strictly increasing.
    #[must_use]
    pub fn new(origin: Vec2, waypoints: Vec<(SimTime, Vec2)>) -> Self {
        let mut traj = Trajectory::new(origin);
        for (arrive, pos) in waypoints {
            let now = traj.horizon();
            assert!(
                arrive > now,
                "waypoint times must be strictly increasing: {arrive} after {now}"
            );
            let duration = arrive - now;
            let from = traj.last_position();
            if from == pos {
                traj.push_pause(duration);
            } else {
                let speed = from.distance(pos) / duration.as_secs_f64();
                traj.push_move(pos, speed);
            }
        }
        Waypoints { traj }
    }

    /// The underlying trajectory.
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }
}

impl Mobility for Waypoints {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        match self.traj.sample(t) {
            Some((p, _)) => p,
            None => self.traj.last_position(),
        }
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        match self.traj.sample(t) {
            Some((_, v)) => v,
            None => Vec2::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_everywhere() {
        let mut s = Stationary::new(Vec2::new(-1.0, 2.0));
        for t in [0, 1, 100, 10_000] {
            assert_eq!(s.position_at(SimTime::from_secs(t)), Vec2::new(-1.0, 2.0));
        }
        assert_eq!(s.position(), Vec2::new(-1.0, 2.0));
    }

    #[test]
    fn waypoints_interpolate_linearly() {
        let mut w = Waypoints::new(
            Vec2::ZERO,
            vec![(SimTime::from_secs(4), Vec2::new(8.0, 0.0))],
        );
        assert_eq!(w.position_at(SimTime::from_secs(1)), Vec2::new(2.0, 0.0));
        assert_eq!(w.velocity_at(SimTime::from_secs(1)), Vec2::new(2.0, 0.0));
    }

    #[test]
    fn waypoints_with_same_position_pause() {
        let mut w = Waypoints::new(
            Vec2::new(5.0, 5.0),
            vec![
                (SimTime::from_secs(10), Vec2::new(5.0, 5.0)),
                (SimTime::from_secs(20), Vec2::new(15.0, 5.0)),
            ],
        );
        assert_eq!(w.position_at(SimTime::from_secs(7)), Vec2::new(5.0, 5.0));
        assert_eq!(w.velocity_at(SimTime::from_secs(7)), Vec2::ZERO);
        assert_eq!(w.position_at(SimTime::from_secs(15)), Vec2::new(10.0, 5.0));
    }

    #[test]
    fn holds_last_position() {
        let mut w = Waypoints::new(
            Vec2::ZERO,
            vec![(SimTime::from_secs(1), Vec2::new(1.0, 1.0))],
        );
        assert_eq!(w.position_at(SimTime::from_secs(100)), Vec2::new(1.0, 1.0));
        assert_eq!(w.velocity_at(SimTime::from_secs(100)), Vec2::ZERO);
    }

    #[test]
    fn empty_waypoint_list_is_stationary() {
        let mut w = Waypoints::new(Vec2::new(2.0, 3.0), vec![]);
        assert_eq!(w.position_at(SimTime::from_secs(50)), Vec2::new(2.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_times_panic() {
        let _ = Waypoints::new(
            Vec2::ZERO,
            vec![
                (SimTime::from_secs(5), Vec2::new(1.0, 0.0)),
                (SimTime::from_secs(5), Vec2::new(2.0, 0.0)),
            ],
        );
    }
}
