//! Piecewise-linear trajectories.

use mobic_geom::Vec2;
use mobic_sim::SimTime;

/// One constant-velocity segment of motion: from `start` (time) at
/// `from` (position), moving with `velocity` until `end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Leg {
    /// Start time of the leg (inclusive).
    pub start: SimTime,
    /// End time of the leg (exclusive, except for the final leg).
    pub end: SimTime,
    /// Position at `start`.
    pub from: Vec2,
    /// Constant velocity during the leg (m/s); zero for pauses.
    pub velocity: Vec2,
}

impl Leg {
    /// Position at time `t`, which the caller guarantees lies within
    /// `[start, end]`.
    #[must_use]
    pub fn position_at(&self, t: SimTime) -> Vec2 {
        debug_assert!(t >= self.start && t <= self.end);
        let dt = (t - self.start).as_secs_f64();
        self.from + self.velocity * dt
    }

    /// Position at the end of the leg.
    #[must_use]
    pub fn end_position(&self) -> Vec2 {
        self.position_at(self.end)
    }

    /// Leg duration.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        self.end - self.start
    }
}

/// A contiguous sequence of [`Leg`]s starting at time zero.
///
/// `Trajectory` is the backing store used by all mobility models: they
/// append legs lazily until the trajectory's [`horizon`](Self::horizon)
/// covers the queried time. Queries inside the horizon are answered by
/// binary search, so revisiting past times is cheap and consistent.
///
/// # Examples
///
/// ```
/// use mobic_geom::Vec2;
/// use mobic_mobility::Trajectory;
/// use mobic_sim::SimTime;
///
/// let mut tr = Trajectory::new(Vec2::ZERO);
/// tr.push_move(Vec2::new(10.0, 0.0), 2.0); // 10 m at 2 m/s = 5 s
/// tr.push_pause(SimTime::from_secs(3));
/// assert_eq!(tr.horizon(), SimTime::from_secs(8));
/// let (p, v) = tr.sample(SimTime::from_secs(2)).unwrap();
/// assert_eq!(p, Vec2::new(4.0, 0.0));
/// assert_eq!(v, Vec2::new(2.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    origin: Vec2,
    legs: Vec<Leg>,
}

impl Trajectory {
    /// Creates an empty trajectory anchored at `origin` (the position
    /// for all times until legs are appended).
    #[must_use]
    pub fn new(origin: Vec2) -> Self {
        Trajectory {
            origin,
            legs: Vec::new(),
        }
    }

    /// The time up to which the trajectory is defined. Queries beyond
    /// the horizon return `None` from [`sample`](Self::sample).
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.legs.last().map_or(SimTime::ZERO, |l| l.end)
    }

    /// Position at the end of the last leg (where the next leg will
    /// start).
    #[must_use]
    pub fn last_position(&self) -> Vec2 {
        self.legs.last().map_or(self.origin, Leg::end_position)
    }

    /// Number of legs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.legs.len()
    }

    /// `true` if no legs have been appended yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.legs.is_empty()
    }

    /// The legs, for analyses that need the raw piecewise structure
    /// (e.g. exact link-lifetime computation).
    #[must_use]
    pub fn legs(&self) -> &[Leg] {
        &self.legs
    }

    /// Appends a leg moving in a straight line to `to` at `speed` m/s.
    /// A zero or negative speed, or a zero-length move, appends
    /// nothing.
    pub fn push_move(&mut self, to: Vec2, speed: f64) {
        let from = self.last_position();
        let dist = from.distance(to);
        if speed <= 0.0 || dist <= 0.0 {
            return;
        }
        let duration = SimTime::from_secs_f64(dist / speed);
        if duration.is_zero() {
            return;
        }
        let velocity = (to - from) / duration.as_secs_f64();
        let start = self.horizon();
        self.legs.push(Leg {
            start,
            end: start + duration,
            from,
            velocity,
        });
    }

    /// Appends a stationary leg of the given duration. Zero duration
    /// appends nothing.
    pub fn push_pause(&mut self, duration: SimTime) {
        if duration.is_zero() {
            return;
        }
        let start = self.horizon();
        self.legs.push(Leg {
            start,
            end: start + duration,
            from: self.last_position(),
            velocity: Vec2::ZERO,
        });
    }

    /// Appends a leg with an explicit velocity and duration (used by
    /// models that think in velocities rather than destinations).
    /// Zero duration appends nothing.
    pub fn push_velocity(&mut self, velocity: Vec2, duration: SimTime) {
        if duration.is_zero() {
            return;
        }
        let start = self.horizon();
        self.legs.push(Leg {
            start,
            end: start + duration,
            from: self.last_position(),
            velocity,
        });
    }

    /// Position and velocity at `t`, or `None` if `t` is beyond the
    /// horizon. Times before the first leg report the origin at rest.
    #[must_use]
    pub fn sample(&self, t: SimTime) -> Option<(Vec2, Vec2)> {
        if t > self.horizon() {
            return None;
        }
        if self.legs.is_empty() {
            // Horizon is ZERO, so t == ZERO here.
            return Some((self.origin, Vec2::ZERO));
        }
        // Find the leg containing t: first leg with end >= t.
        let idx = self.legs.partition_point(|l| l.end < t);
        let leg = &self.legs[idx.min(self.legs.len() - 1)];
        Some((leg.position_at(t), leg.velocity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trajectory_reports_origin() {
        let tr = Trajectory::new(Vec2::new(5.0, 5.0));
        assert!(tr.is_empty());
        assert_eq!(tr.horizon(), SimTime::ZERO);
        assert_eq!(tr.last_position(), Vec2::new(5.0, 5.0));
        assert_eq!(
            tr.sample(SimTime::ZERO),
            Some((Vec2::new(5.0, 5.0), Vec2::ZERO))
        );
        assert_eq!(tr.sample(SimTime::MICROSECOND), None);
    }

    #[test]
    fn move_leg_midpoint() {
        let mut tr = Trajectory::new(Vec2::ZERO);
        tr.push_move(Vec2::new(20.0, 0.0), 4.0); // 5 s
        assert_eq!(tr.horizon(), SimTime::from_secs(5));
        let (p, v) = tr.sample(SimTime::from_millis(2500)).unwrap();
        assert!(p.approx_eq(Vec2::new(10.0, 0.0)));
        assert!(v.approx_eq(Vec2::new(4.0, 0.0)));
    }

    #[test]
    fn pause_then_move_continuity() {
        let mut tr = Trajectory::new(Vec2::new(1.0, 1.0));
        tr.push_pause(SimTime::from_secs(10));
        tr.push_move(Vec2::new(1.0, 11.0), 1.0);
        // During pause.
        let (p, v) = tr.sample(SimTime::from_secs(5)).unwrap();
        assert_eq!(p, Vec2::new(1.0, 1.0));
        assert_eq!(v, Vec2::ZERO);
        // End position.
        let (p, _) = tr.sample(SimTime::from_secs(20)).unwrap();
        assert!(p.approx_eq(Vec2::new(1.0, 11.0)));
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn boundary_between_legs_is_continuous() {
        let mut tr = Trajectory::new(Vec2::ZERO);
        tr.push_move(Vec2::new(10.0, 0.0), 1.0); // ends at t=10
        tr.push_move(Vec2::new(10.0, 10.0), 2.0); // ends at t=15
        let t = SimTime::from_secs(10);
        let (p, _) = tr.sample(t).unwrap();
        assert!(p.approx_eq(Vec2::new(10.0, 0.0)));
        // Just after the breakpoint, moving up.
        let (p2, v2) = tr.sample(t + SimTime::MILLISECOND).unwrap();
        assert!(p2.y > 0.0);
        assert!(v2.approx_eq(Vec2::new(0.0, 2.0)));
    }

    #[test]
    fn zero_speed_and_zero_distance_moves_ignored() {
        let mut tr = Trajectory::new(Vec2::ZERO);
        tr.push_move(Vec2::new(5.0, 0.0), 0.0);
        tr.push_move(Vec2::ZERO, 3.0);
        tr.push_pause(SimTime::ZERO);
        assert!(tr.is_empty());
    }

    #[test]
    fn velocity_legs() {
        let mut tr = Trajectory::new(Vec2::ZERO);
        tr.push_velocity(Vec2::new(1.0, -1.0), SimTime::from_secs(4));
        let (p, v) = tr.sample(SimTime::from_secs(4)).unwrap();
        assert!(p.approx_eq(Vec2::new(4.0, -4.0)));
        assert_eq!(v, Vec2::new(1.0, -1.0));
        assert_eq!(tr.last_position(), p);
    }

    #[test]
    fn sample_beyond_horizon_is_none() {
        let mut tr = Trajectory::new(Vec2::ZERO);
        tr.push_pause(SimTime::from_secs(1));
        assert!(tr.sample(SimTime::from_secs(1)).is_some());
        assert!(tr.sample(SimTime::from_micros(1_000_001)).is_none());
    }

    #[test]
    fn many_legs_binary_search() {
        let mut tr = Trajectory::new(Vec2::ZERO);
        for i in 0..100 {
            tr.push_move(Vec2::new((i + 1) as f64, 0.0), 1.0);
        }
        assert_eq!(tr.len(), 100);
        assert_eq!(tr.horizon(), SimTime::from_secs(100));
        for i in 0..100 {
            let (p, _) = tr.sample(SimTime::from_millis(i * 1000 + 500)).unwrap();
            assert!((p.x - (i as f64 + 0.5)).abs() < 1e-9, "i={i} p={p}");
        }
    }

    #[test]
    fn leg_helpers() {
        let leg = Leg {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(3),
            from: Vec2::ZERO,
            velocity: Vec2::new(2.0, 0.0),
        };
        assert_eq!(leg.duration(), SimTime::from_secs(2));
        assert!(leg.end_position().approx_eq(Vec2::new(4.0, 0.0)));
        assert!(leg
            .position_at(SimTime::from_secs(2))
            .approx_eq(Vec2::new(2.0, 0.0)));
    }
}
