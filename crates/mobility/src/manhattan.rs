//! Manhattan-grid mobility: urban movement constrained to a street
//! grid.
//!
//! Nodes travel along horizontal and vertical streets with a given
//! block spacing; at each intersection they continue straight, turn
//! left, or turn right with configurable probabilities (the classic
//! Manhattan model used in urban MANET studies). Speeds are redrawn
//! per street segment. Motion reflects at the field boundary (a
//! vehicle turns back into the grid).

use mobic_geom::{Rect, Vec2};
use mobic_sim::SimTime;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::{sample_speed, Mobility, Trajectory};

/// Parameters of the [`Manhattan`] model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManhattanParams {
    /// The bounding field; streets form a grid inside it.
    pub field: Rect,
    /// Distance between parallel streets (the block size), > 0.
    pub block_m: f64,
    /// Minimum speed (m/s).
    pub min_speed_mps: f64,
    /// Maximum speed (m/s).
    pub max_speed_mps: f64,
    /// Probability of turning (left or right, split evenly) at an
    /// intersection; `1 − p_turn` continues straight. In `[0, 1]`.
    pub p_turn: f64,
}

impl ManhattanParams {
    /// Validates the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics on non-positive block size, invalid speeds, or `p_turn`
    /// outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.block_m > 0.0 && self.block_m.is_finite(),
            "block size must be positive"
        );
        assert!(
            self.min_speed_mps >= 0.0 && self.max_speed_mps >= self.min_speed_mps,
            "invalid speed range"
        );
        assert!(
            (0.0..=1.0).contains(&self.p_turn),
            "turn probability must be in [0, 1]"
        );
    }
}

/// Axis-aligned travel direction on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heading {
    East,
    West,
    North,
    South,
}

impl Heading {
    fn vector(self) -> Vec2 {
        match self {
            Heading::East => Vec2::new(1.0, 0.0),
            Heading::West => Vec2::new(-1.0, 0.0),
            Heading::North => Vec2::new(0.0, 1.0),
            Heading::South => Vec2::new(0.0, -1.0),
        }
    }

    fn left(self) -> Heading {
        match self {
            Heading::East => Heading::North,
            Heading::North => Heading::West,
            Heading::West => Heading::South,
            Heading::South => Heading::East,
        }
    }

    fn right(self) -> Heading {
        self.left().left().left()
    }

    fn reverse(self) -> Heading {
        self.left().left()
    }
}

/// A node moving on the Manhattan street grid.
///
/// # Examples
///
/// ```
/// use mobic_geom::Rect;
/// use mobic_mobility::{Manhattan, ManhattanParams, Mobility};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let params = ManhattanParams {
///     field: Rect::square(600.0),
///     block_m: 100.0,
///     min_speed_mps: 5.0,
///     max_speed_mps: 15.0,
///     p_turn: 0.5,
/// };
/// let mut car = Manhattan::new(params, SeedSplitter::new(4).stream("man", 0));
/// let p = car.position_at(SimTime::from_secs(120));
/// assert!(params.field.contains(p));
/// ```
#[derive(Debug, Clone)]
pub struct Manhattan {
    params: ManhattanParams,
    traj: Trajectory,
    rng: ChaCha12Rng,
    heading: Heading,
}

impl Manhattan {
    /// Creates a node at a random intersection with a random heading.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    #[must_use]
    pub fn new(params: ManhattanParams, mut rng: ChaCha12Rng) -> Self {
        params.validate();
        let (cols, rows) = Self::grid_dims(&params);
        let ci = rng.gen_range(0..=cols);
        let ri = rng.gen_range(0..=rows);
        let origin = Vec2::new(
            params.field.min().x + ci as f64 * params.block_m,
            params.field.min().y + ri as f64 * params.block_m,
        );
        let origin = params.field.clamp(origin);
        let heading = match rng.gen_range(0..4) {
            0 => Heading::East,
            1 => Heading::West,
            2 => Heading::North,
            _ => Heading::South,
        };
        Manhattan {
            params,
            traj: Trajectory::new(origin),
            rng,
            heading,
        }
    }

    fn grid_dims(params: &ManhattanParams) -> (u32, u32) {
        let cols = (params.field.width() / params.block_m).floor().max(0.0) as u32;
        let rows = (params.field.height() / params.block_m).floor().max(0.0) as u32;
        (cols, rows)
    }

    /// The trajectory generated so far.
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    /// Distance from `pos` to the next intersection along `heading`.
    fn distance_to_next_intersection(&self, pos: Vec2) -> f64 {
        let p = self.params;
        let along = match self.heading {
            Heading::East => pos.x - p.field.min().x,
            Heading::West => p.field.max().x - (pos.x - p.field.min().x) - p.field.min().x,
            Heading::North => pos.y - p.field.min().y,
            Heading::South => p.field.max().y - (pos.y - p.field.min().y) - p.field.min().y,
        };
        // Distance already traveled into the current block:
        let traveled = match self.heading {
            Heading::East => (pos.x - p.field.min().x).rem_euclid(p.block_m),
            Heading::West => (p.field.max().x - pos.x).rem_euclid(p.block_m),
            Heading::North => (pos.y - p.field.min().y).rem_euclid(p.block_m),
            Heading::South => (p.field.max().y - pos.y).rem_euclid(p.block_m),
        };
        let _ = along;
        let rest = p.block_m - traveled;
        if rest < 1e-9 {
            p.block_m
        } else {
            rest
        }
    }

    /// `true` if moving from `pos` along the current heading by
    /// `dist` would leave the field.
    fn would_exit(&self, pos: Vec2, dist: f64) -> bool {
        let target = pos + self.heading.vector() * dist;
        !self.params.field.contains(target)
    }

    fn pick_turn(&mut self) {
        let r: f64 = self.rng.gen();
        if r < self.params.p_turn {
            self.heading = if self.rng.gen::<bool>() {
                self.heading.left()
            } else {
                self.heading.right()
            };
        }
    }

    fn extend_leg(&mut self) {
        let pos = self.traj.last_position();
        let dist = self.distance_to_next_intersection(pos);
        // Handle the boundary: if the next hop exits, turn (or reverse
        // in a corner).
        let mut guard = 0;
        while self.would_exit(self.traj.last_position(), dist.min(self.params.block_m)) {
            guard += 1;
            if guard > 4 {
                self.heading = self.heading.reverse();
                break;
            }
            self.heading = if self.rng.gen::<bool>() {
                self.heading.left()
            } else {
                self.heading.right()
            };
        }
        let pos = self.traj.last_position();
        let dist = self
            .distance_to_next_intersection(pos)
            .min(remaining_in_field(&self.params, pos, self.heading));
        let speed = sample_speed(
            &mut self.rng,
            self.params.min_speed_mps,
            self.params.max_speed_mps,
        );
        let target = self.params.field.clamp(pos + self.heading.vector() * dist);
        let before = self.traj.horizon();
        self.traj.push_move(target, speed);
        if self.traj.horizon() == before {
            // Degenerate (stuck in a corner or zero speed): idle briefly
            // and re-decide.
            self.traj.push_pause(SimTime::SECOND);
        }
        self.pick_turn();
    }

    fn ensure(&mut self, t: SimTime) {
        while self.traj.horizon() <= t {
            self.extend_leg();
        }
    }
}

/// Distance from `pos` to the field boundary along `heading`.
fn remaining_in_field(params: &ManhattanParams, pos: Vec2, heading: Heading) -> f64 {
    match heading {
        Heading::East => params.field.max().x - pos.x,
        Heading::West => pos.x - params.field.min().x,
        Heading::North => params.field.max().y - pos.y,
        Heading::South => pos.y - params.field.min().y,
    }
    .max(0.0)
}

impl Mobility for Manhattan {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.params
            .field
            .clamp(self.traj.sample(t).expect("extended").0)
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.traj.sample(t).expect("extended").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn params() -> ManhattanParams {
        ManhattanParams {
            field: Rect::square(600.0),
            block_m: 100.0,
            min_speed_mps: 5.0,
            max_speed_mps: 15.0,
            p_turn: 0.5,
        }
    }

    fn rng(i: u64) -> ChaCha12Rng {
        SeedSplitter::new(55).stream("man-test", i)
    }

    #[test]
    fn stays_in_field() {
        let p = params();
        let mut m = Manhattan::new(p, rng(0));
        for s in 0..900 {
            let pos = m.position_at(SimTime::from_secs(s));
            assert!(p.field.contains(pos), "escaped at {s}: {pos}");
        }
    }

    #[test]
    fn moves_only_along_axes() {
        let p = params();
        let mut m = Manhattan::new(p, rng(1));
        let _ = m.position_at(SimTime::from_secs(600));
        for leg in m.trajectory().legs() {
            let v = leg.velocity;
            assert!(
                v.x.abs() < 1e-9 || v.y.abs() < 1e-9,
                "diagonal motion: {v:?}"
            );
        }
    }

    #[test]
    fn starts_on_grid_point() {
        let p = params();
        let mut m = Manhattan::new(p, rng(2));
        let start = m.position_at(SimTime::ZERO);
        let on_grid =
            |v: f64| (v.rem_euclid(p.block_m)).min(p.block_m - v.rem_euclid(p.block_m)) < 1e-6;
        assert!(
            on_grid(start.x) && on_grid(start.y),
            "off-grid start: {start}"
        );
    }

    #[test]
    fn speeds_respect_bounds() {
        let p = params();
        let mut m = Manhattan::new(p, rng(3));
        let _ = m.position_at(SimTime::from_secs(600));
        for leg in m.trajectory().legs() {
            let v = leg.velocity.length();
            assert!(v <= p.max_speed_mps + 1e-9, "speed {v}");
        }
    }

    #[test]
    fn deterministic() {
        let p = params();
        let mut a = Manhattan::new(p, rng(4));
        let mut b = Manhattan::new(p, rng(4));
        for s in (0..600).step_by(17) {
            let t = SimTime::from_secs(s);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn headings_rotate_consistently() {
        assert_eq!(Heading::East.left(), Heading::North);
        assert_eq!(Heading::East.right(), Heading::South);
        assert_eq!(Heading::East.reverse(), Heading::West);
        assert_eq!(Heading::North.right(), Heading::East);
        for h in [Heading::East, Heading::West, Heading::North, Heading::South] {
            assert_eq!(h.left().right(), h);
            assert_eq!(h.reverse().reverse(), h);
        }
    }

    #[test]
    fn zero_turn_probability_goes_straight_until_wall() {
        let p = ManhattanParams {
            p_turn: 0.0,
            ..params()
        };
        let mut m = Manhattan::new(p, rng(6));
        let _ = m.position_at(SimTime::from_secs(300));
        // With p_turn = 0 direction changes only at walls; consecutive
        // legs away from walls share an axis.
        let legs = m.trajectory().legs();
        let mut axis_changes = 0;
        for w in legs.windows(2) {
            let a_horiz = w[0].velocity.x.abs() > 1e-9;
            let b_horiz = w[1].velocity.x.abs() > 1e-9;
            if a_horiz != b_horiz {
                axis_changes += 1;
            }
        }
        // Crossing a 600 m field at ≥5 m/s takes ≤ 120 s; 300 s can
        // hit walls only a handful of times.
        assert!(axis_changes <= 12, "too many axis changes: {axis_changes}");
    }

    #[test]
    #[should_panic(expected = "block")]
    fn invalid_block_panics() {
        let p = ManhattanParams {
            block_m: 0.0,
            ..params()
        };
        let _ = Manhattan::new(p, rng(0));
    }
}
