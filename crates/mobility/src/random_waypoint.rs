//! The random waypoint model — the paper's primary mobility model.

use mobic_geom::{Rect, Vec2};
use mobic_sim::SimTime;
use rand_chacha::ChaCha12Rng;

use crate::{sample_point, sample_speed, Mobility, Trajectory};

/// Parameters of the [`RandomWaypoint`] model, mirroring the CMU
/// `setdest` generator the paper used (Table 1): nodes repeatedly pick
/// a uniform destination in the field, travel there at a uniform random
/// speed, pause, and repeat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWaypointParams {
    /// The bounding field nodes move in.
    pub field: Rect,
    /// Minimum speed in m/s. Zero selects the classic `(0, max]`
    /// open-interval sampling.
    pub min_speed_mps: f64,
    /// Maximum speed in m/s (the paper's `MaxSpeed`: 1, 20 or 30).
    pub max_speed_mps: f64,
    /// Pause time at each waypoint (the paper's `PT`: 0 or 30 s).
    pub pause: SimTime,
}

impl RandomWaypointParams {
    /// Validates the parameter combination.
    ///
    /// # Panics
    ///
    /// Panics if speeds are negative, non-finite, or `min > max`.
    pub fn validate(&self) {
        assert!(
            self.min_speed_mps >= 0.0 && self.min_speed_mps.is_finite(),
            "min speed must be finite and non-negative"
        );
        assert!(
            self.max_speed_mps >= self.min_speed_mps && self.max_speed_mps.is_finite(),
            "max speed must be finite and >= min speed"
        );
    }
}

/// A node moving under the random waypoint model.
///
/// The initial position is drawn uniformly in the field (as `setdest`
/// does). Motion is generated lazily, one waypoint leg at a time.
///
/// # Examples
///
/// ```
/// use mobic_geom::Rect;
/// use mobic_mobility::{Mobility, RandomWaypoint, RandomWaypointParams};
/// use mobic_sim::{rng::SeedSplitter, SimTime};
///
/// let params = RandomWaypointParams {
///     field: Rect::square(670.0),
///     min_speed_mps: 0.0,
///     max_speed_mps: 20.0,
///     pause: SimTime::from_secs(30),
/// };
/// let mut m = RandomWaypoint::new(params, SeedSplitter::new(9).stream("mob", 4));
/// let p = m.position_at(SimTime::from_secs(900));
/// assert!(params.field.contains(p));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    params: RandomWaypointParams,
    traj: Trajectory,
    rng: ChaCha12Rng,
    /// Whether the next leg to generate is a pause (pauses alternate
    /// with moves when `pause > 0`).
    pause_next: bool,
}

impl RandomWaypoint {
    /// Creates a node with a uniform random start position.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid (see
    /// [`RandomWaypointParams::validate`]).
    #[must_use]
    pub fn new(params: RandomWaypointParams, mut rng: ChaCha12Rng) -> Self {
        params.validate();
        let origin = sample_point(&mut rng, params.field);
        Self::with_origin(params, rng, origin)
    }

    /// Creates a node with an explicit start position (used by tests
    /// and by scenario generators that pre-place nodes).
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid.
    #[must_use]
    pub fn with_origin(params: RandomWaypointParams, rng: ChaCha12Rng, origin: Vec2) -> Self {
        params.validate();
        RandomWaypoint {
            params,
            traj: Trajectory::new(origin),
            rng,
            // setdest starts with an (optional) initial pause.
            pause_next: !params.pause.is_zero(),
        }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &RandomWaypointParams {
        &self.params
    }

    /// The trajectory generated so far (for analyses and tests).
    #[must_use]
    pub fn trajectory(&self) -> &Trajectory {
        &self.traj
    }

    fn ensure(&mut self, t: SimTime) {
        while self.traj.horizon() <= t {
            if self.pause_next {
                self.traj.push_pause(self.params.pause);
                self.pause_next = false;
                continue;
            }
            let dest = sample_point(&mut self.rng, self.params.field);
            let speed = sample_speed(
                &mut self.rng,
                self.params.min_speed_mps,
                self.params.max_speed_mps,
            );
            let before = self.traj.horizon();
            self.traj.push_move(dest, speed);
            self.pause_next = !self.params.pause.is_zero();
            // Guard against pathological zero-progress iterations
            // (e.g. destination == current position with pause 0).
            if self.traj.horizon() == before && self.params.pause.is_zero() {
                // Force progress: wait one broadcast-scale tick.
                self.traj.push_pause(SimTime::MILLISECOND);
            }
        }
    }
}

impl Mobility for RandomWaypoint {
    fn position_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.traj.sample(t).expect("trajectory extended past t").0
    }

    fn velocity_at(&mut self, t: SimTime) -> Vec2 {
        self.ensure(t);
        self.traj.sample(t).expect("trajectory extended past t").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_sim::rng::SeedSplitter;

    fn params(pause_s: u64, max: f64) -> RandomWaypointParams {
        RandomWaypointParams {
            field: Rect::square(670.0),
            min_speed_mps: 0.0,
            max_speed_mps: max,
            pause: SimTime::from_secs(pause_s),
        }
    }

    fn rng(i: u64) -> ChaCha12Rng {
        SeedSplitter::new(42).stream("rwp-test", i)
    }

    #[test]
    fn stays_in_field_for_long_run() {
        let p = params(0, 20.0);
        let mut m = RandomWaypoint::new(p, rng(0));
        for s in 0..900 {
            let pos = m.position_at(SimTime::from_secs(s));
            assert!(p.field.contains(pos), "escaped at t={s}: {pos}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = params(30, 20.0);
        let mut a = RandomWaypoint::new(p, rng(7));
        let mut b = RandomWaypoint::new(p, rng(7));
        for s in (0..900).step_by(10) {
            let t = SimTime::from_secs(s);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn different_streams_diverge() {
        let p = params(0, 20.0);
        let mut a = RandomWaypoint::new(p, rng(0));
        let mut b = RandomWaypoint::new(p, rng(1));
        let t = SimTime::from_secs(100);
        assert_ne!(a.position_at(t), b.position_at(t));
    }

    #[test]
    fn revisiting_past_times_is_consistent() {
        let p = params(0, 20.0);
        let mut m = RandomWaypoint::new(p, rng(3));
        let t_late = SimTime::from_secs(500);
        let t_early = SimTime::from_secs(100);
        let early_first = {
            let mut m2 = RandomWaypoint::new(p, rng(3));
            m2.position_at(t_early)
        };
        let _ = m.position_at(t_late);
        assert_eq!(m.position_at(t_early), early_first);
    }

    #[test]
    fn speed_respects_max() {
        let p = params(0, 20.0);
        let mut m = RandomWaypoint::new(p, rng(5));
        let _ = m.position_at(SimTime::from_secs(900));
        for leg in m.trajectory().legs() {
            let v = leg.velocity.length();
            assert!(v <= 20.0 + 1e-9, "leg speed {v}");
        }
    }

    #[test]
    fn pause_legs_alternate_when_pause_positive() {
        let p = params(30, 20.0);
        let mut m = RandomWaypoint::new(p, rng(6));
        let _ = m.position_at(SimTime::from_secs(900));
        let legs = m.trajectory().legs();
        assert!(legs.len() >= 2);
        // First leg is the initial pause.
        assert_eq!(legs[0].velocity, Vec2::ZERO);
        assert_eq!(legs[0].duration(), SimTime::from_secs(30));
        // Moves and pauses alternate.
        for w in legs.windows(2) {
            let both_pause = w[0].velocity == Vec2::ZERO && w[1].velocity == Vec2::ZERO;
            assert!(!both_pause, "two consecutive pauses");
        }
    }

    #[test]
    fn zero_pause_generates_continuous_motion() {
        let p = params(0, 20.0);
        let mut m = RandomWaypoint::new(p, rng(8));
        let _ = m.position_at(SimTime::from_secs(300));
        let moving = m
            .trajectory()
            .legs()
            .iter()
            .filter(|l| l.velocity.length() > 0.0)
            .count();
        assert_eq!(moving, m.trajectory().len(), "no pauses expected");
    }

    #[test]
    fn velocity_matches_displacement() {
        let p = params(0, 20.0);
        let mut m = RandomWaypoint::new(p, rng(9));
        let t = SimTime::from_secs(50);
        let dt = SimTime::from_millis(10);
        let v = m.velocity_at(t);
        let p0 = m.position_at(t);
        let p1 = m.position_at(t + dt);
        let approx_v = (p1 - p0) / dt.as_secs_f64();
        // Same leg with overwhelming probability; allow breakpoint slack.
        if (approx_v - v).length() > 1e-6 {
            // Crossed a waypoint; just check magnitude bound.
            assert!(approx_v.length() <= 20.0 + 1e-6);
        }
    }

    #[test]
    fn max_speed_one_is_slow() {
        let p = params(0, 1.0);
        let mut m = RandomWaypoint::new(p, rng(10));
        let p0 = m.position_at(SimTime::from_secs(0));
        let p1 = m.position_at(SimTime::from_secs(10));
        assert!(p0.distance(p1) <= 10.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "max speed")]
    fn invalid_speed_range_panics() {
        let p = RandomWaypointParams {
            field: Rect::square(10.0),
            min_speed_mps: 5.0,
            max_speed_mps: 1.0,
            pause: SimTime::ZERO,
        };
        let _ = RandomWaypoint::new(p, rng(0));
    }

    #[test]
    fn with_origin_uses_given_start() {
        let p = params(0, 20.0);
        let origin = Vec2::new(300.0, 300.0);
        let mut m = RandomWaypoint::with_origin(p, rng(11), origin);
        assert_eq!(m.position_at(SimTime::ZERO), origin);
    }
}
