//! Spatial sharding for the parallel event loop.
//!
//! The sharded engine keeps *all* event processing and state
//! mutation on the driving thread, in exactly the sequential order
//! (see [`mobic_sim::ShardedEventQueue`] for the merge-determinism
//! argument). What runs on worker threads is the one part of the hot
//! path that is pure and embarrassingly parallel: **trajectory
//! pre-extension**. At each lookahead window boundary the runner
//!
//! 1. re-assigns shard ownership spatially — each node's owning
//!    [`GridIndex`] cell, modulo the shard count (the halo exchange:
//!    nodes migrate between shards as they move between cells);
//! 2. pushes the new owner map into the sharded queue (placement
//!    only — pop order is provably unaffected);
//! 3. forks one scoped worker per shard, each extending its nodes'
//!    mobility trajectories to the window horizon, so the event loop
//!    itself never waits on trajectory construction.
//!
//! The lookahead window is the conservative bound from distributed
//! discrete-event simulation: the minimum latency of any
//! self-rescheduling event (the hello interval, or the adaptive-BI
//! floor when adaptive pacing is on). No event processed inside a
//! window can need state beyond the horizon the workers prepared.
//!
//! Determinism: workers receive no RNG ambient state and no clock —
//! each mobility model owns its seeded stream, and the trajectory
//! contract (lazy, append-only, query-order independent) makes early
//! extension invisible to every later query. Worker count and shard
//! assignment therefore cannot influence results, which the
//! `sharded_equivalence` integration tests pin byte-for-byte.

use mobic_geom::{GridIndex, Vec2};
use mobic_mobility::Mobility;
use mobic_sim::SimTime;

use crate::{Engine, ScenarioConfig};

/// Fixed fallback shard count when `shards: 0` is configured.
///
/// Deliberately a constant, not the host's core count: results are
/// identical either way, but artifacts (manifests, configs) should
/// not silently encode the machine they ran on, and the lint rules
/// ban ambient parallelism reads in result-affecting crates. Callers
/// that want machine-sized shards (the CLI, benches) pass an explicit
/// count.
pub(crate) const DEFAULT_SHARDS: u32 = 4;

/// The shard count a run will actually use: 1 for the sequential
/// engine; otherwise the configured count (0 = [`DEFAULT_SHARDS`])
/// clamped to `[1, n_nodes]`.
pub(crate) fn effective_shards(cfg: &ScenarioConfig) -> u32 {
    if cfg.engine != Engine::Sharded {
        return 1;
    }
    let requested = if cfg.shards == 0 {
        DEFAULT_SHARDS
    } else {
        cfg.shards
    };
    requested.clamp(1, cfg.n_nodes.max(1))
}

/// The conservative lookahead window: the minimum latency of any
/// self-rescheduling event. Hello events re-arm at the beat interval
/// (or down to the adaptive floor when adaptive pacing is enabled);
/// the sampler re-arms at the beat interval. A positive floor of one
/// clock tick guards against degenerate configs stalling the window
/// loop.
pub(crate) fn lookahead_window(cfg: &ScenarioConfig) -> SimTime {
    let hello_floor = if cfg.adaptive_bi_min_s > 0.0 {
        cfg.adaptive_bi_min_s.min(cfg.bi_s)
    } else {
        cfg.bi_s
    };
    SimTime::from_secs_f64(hello_floor).max(SimTime::MICROSECOND)
}

/// Re-computes spatial shard ownership: `shard_of[i]` becomes node
/// `i`'s owning grid cell modulo the shard count (the cell lookup is
/// a partition — see [`GridIndex::cell_index`] — so every node gets
/// exactly one shard). Without an index (brute-force delivery path)
/// ownership falls back to round-robin over node ids, which is just
/// as valid: placement can never affect results, only load balance.
pub(crate) fn assign_shards(
    shard_of: &mut [u32],
    index: Option<&GridIndex>,
    positions: &[Vec2],
    n_shards: u32,
) {
    let n_shards = n_shards.max(1);
    match index {
        Some(idx) => {
            for (i, s) in shard_of.iter_mut().enumerate() {
                let cell = positions.get(i).map_or(i, |&p| idx.cell_index(p));
                *s = (cell % n_shards as usize) as u32;
            }
        }
        None => {
            for (i, s) in shard_of.iter_mut().enumerate() {
                *s = (i % n_shards as usize) as u32;
            }
        }
    }
}

/// Pre-extends every mobility trajectory to `horizon` on one scoped
/// worker thread per shard.
///
/// Pure fork-join: workers borrow disjoint subsets of the models
/// (partitioned by `shard_of`), each issues a single
/// `position_at(horizon)` query per node to force lazy trajectory
/// construction out to the horizon, and the scope joins before the
/// event loop resumes. No state other than the trajectories changes,
/// and the trajectory contract makes the extension itself invisible.
pub(crate) fn extend_trajectories(
    models: &mut [Box<dyn Mobility>],
    shard_of: &[u32],
    n_shards: u32,
    horizon: SimTime,
) {
    if models.is_empty() {
        return;
    }
    if n_shards <= 1 {
        for m in models.iter_mut() {
            let _ = m.position_at(horizon);
        }
        return;
    }
    let mut buckets: Vec<Vec<&mut Box<dyn Mobility>>> =
        (0..n_shards as usize).map(|_| Vec::new()).collect();
    for (i, m) in models.iter_mut().enumerate() {
        let s = shard_of
            .get(i)
            .map_or(0, |&s| s as usize % n_shards as usize);
        buckets[s].push(m);
    }
    // Run shard 0's bucket on the calling thread while the scoped
    // workers handle the rest; the scope joins them all before
    // returning control to the event loop.
    let mut iter = buckets.into_iter();
    let home = iter.next();
    std::thread::scope(|scope| {
        for bucket in iter {
            if bucket.is_empty() {
                continue;
            }
            scope.spawn(move || {
                for m in bucket {
                    let _ = m.position_at(horizon);
                }
            });
        }
        if let Some(bucket) = home {
            for m in bucket {
                let _ = m.position_at(horizon);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_geom::Rect;
    use mobic_sim::rng::SeedSplitter;

    #[test]
    fn effective_shards_sequential_is_one() {
        let mut cfg = ScenarioConfig::paper_table1();
        cfg.shards = 8;
        assert_eq!(effective_shards(&cfg), 1);
    }

    #[test]
    fn effective_shards_clamps_and_defaults() {
        let mut cfg = ScenarioConfig::paper_table1();
        cfg.engine = Engine::Sharded;
        assert_eq!(effective_shards(&cfg), DEFAULT_SHARDS);
        cfg.shards = 3;
        assert_eq!(effective_shards(&cfg), 3);
        cfg.shards = 10_000;
        assert_eq!(effective_shards(&cfg), cfg.n_nodes);
        cfg.n_nodes = 0;
        assert_eq!(effective_shards(&cfg), 1);
    }

    #[test]
    fn lookahead_window_tracks_hello_floor() {
        let mut cfg = ScenarioConfig::paper_table1();
        assert_eq!(lookahead_window(&cfg), SimTime::from_secs_f64(cfg.bi_s));
        cfg.adaptive_bi_min_s = 0.25;
        assert_eq!(lookahead_window(&cfg), SimTime::from_secs_f64(0.25));
        cfg.bi_s = 0.0;
        cfg.adaptive_bi_min_s = 0.0;
        assert_eq!(lookahead_window(&cfg), SimTime::MICROSECOND);
    }

    #[test]
    fn assign_shards_is_a_partition_with_and_without_index() {
        let positions = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(669.9, 669.9),
            Vec2::new(335.0, 335.0),
            Vec2::new(670.0, 0.0), // field edge
        ];
        let idx = GridIndex::build(Rect::new(670.0, 670.0), 250.0, &positions);
        let mut spatial = vec![u32::MAX; positions.len()];
        assign_shards(&mut spatial, Some(&idx), &positions, 3);
        for &s in &spatial {
            assert!(s < 3);
        }
        // Spatial locality: nodes in the same cell share a shard.
        assert_eq!(spatial[0], (idx.cell_index(positions[0]) % 3) as u32);
        let mut rr = vec![u32::MAX; positions.len()];
        assign_shards(&mut rr, None, &positions, 3);
        assert_eq!(rr, vec![0, 1, 2, 0]);
    }

    #[test]
    fn trajectory_pre_extension_is_invisible() {
        // Two identically seeded model sets: one pre-extended in
        // shard buckets on worker threads, one queried lazily. Every
        // later position query must agree exactly.
        let cfg = ScenarioConfig::paper_table1();
        let field = Rect::new(cfg.field_w_m, cfg.field_h_m);
        let build = || {
            let splitter = SeedSplitter::new(42);
            crate::runner::build_mobility(&cfg, field, &splitter)
        };
        let mut eager = build();
        let mut lazy = build();
        let shard_of: Vec<u32> = (0..eager.len() as u32).map(|i| i % 4).collect();
        extend_trajectories(&mut eager, &shard_of, 4, SimTime::from_secs(90));
        for t in [0u64, 13, 45, 90, 30] {
            let at = SimTime::from_secs(t);
            for (a, b) in eager.iter_mut().zip(lazy.iter_mut()) {
                assert_eq!(a.position_at(at), b.position_at(at));
                assert_eq!(a.velocity_at(at), b.velocity_at(at));
            }
        }
    }
}
