//! Scenario configuration, generation, and the end-to-end simulation
//! runner.
//!
//! This crate is the counterpart of the paper's §4.1 "Simulation
//! Environment and Parameters": it owns the [`ScenarioConfig`]
//! (Table 1), builds the full stack — mobility models, radio, delivery
//! engine, neighbor tables, clustering nodes — and drives the
//! discrete-event loop for the configured simulation time, producing a
//! [`RunResult`] with every metric the figures need.
//!
//! Every run is a pure function of `(config, seed)`. The config's
//! *execution* knobs — `fast_path` (spatial-index delivery),
//! `recluster` (dirty-set incremental elections), `engine`/`shards`
//! (the sharded parallel event loop), `scheduler` (calendar-queue
//! future-event list), and `delivery` (vectorized propagation kernel
//! with batched loss draws) — change how that function is evaluated,
//! never its value: each is covered by an equivalence test asserting
//! byte-identical results and traces. Above single runs,
//! the sweep layer provides parallel batches,
//! the supervised executor ([`run_batch_supervised`]) that turns
//! panicking or stuck jobs into typed [`JobError`]s, and the
//! [`SweepSpec`]/[`SweepCell`] grid expansion with content-addressed
//! cell keys ([`cell_key`]) shared by `mobic-cli sweep` and the
//! `mobic-sweepd` service.
//!
//! # Examples
//!
//! Reproduce one data point of Figure 3 (in miniature):
//!
//! ```
//! use mobic_core::AlgorithmKind;
//! use mobic_scenario::{run_scenario, ScenarioConfig};
//!
//! let mut cfg = ScenarioConfig::paper_table1();
//! cfg.n_nodes = 15;          // keep the doctest fast
//! cfg.sim_time_s = 60.0;
//! cfg.tx_range_m = 200.0;
//! cfg.algorithm = AlgorithmKind::Mobic;
//! let result = run_scenario(&cfg, 1).expect("valid config");
//! assert!(result.hello_broadcasts > 0);
//! assert!(result.avg_clusters >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod params;
mod runner;
mod shard;
mod snapshot;
mod sweep;

pub use config::{
    AuditMode, CheckpointPolicy, ConfigError, DeliveryPath, Engine, FastPath, FaultPlan,
    FaultTarget, LossKind, MobilityKind, PropagationKind, Recluster, ScenarioConfig, Scheduler,
};
pub use runner::{
    config_hash_for, manifest_for, run_scenario, run_scenario_checkpointed,
    run_scenario_instrumented, run_scenario_observed, run_scenario_resumed, run_scenario_traced,
    run_scenario_until, AuditSummary, FaultCounters, HealingStats, RunError, RunOutcome, RunPerf,
    RunResult, SampleView,
};
pub use snapshot::{
    latest_snapshot, load_snapshot, save_snapshot, semantic_config_hash, write_rotated,
    SimSnapshot, SnapshotError, SNAPSHOT_SCHEMA,
};
pub use sweep::{
    cell_key, run_batch, run_batch_manifested, run_batch_supervised, run_batch_supervised_stats,
    run_cell, run_cell_recoverable, run_cell_stats, summarize_cs, BatchStats, CellRecovery,
    JobError, SpecError, Supervision, SweepCell, SweepOutcome, SweepSpec,
};
