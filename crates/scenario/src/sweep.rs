//! Multi-run parameter sweeps with thread-level parallelism.

use mobic_metrics::OnlineStats;
use mobic_trace::RunManifest;
use serde::{Deserialize, Serialize};

use crate::{manifest_for, run_scenario, ConfigError, RunResult, ScenarioConfig};

/// Runs every `(config, seed)` job, using all available cores, and
/// returns results **in input order** (the parallelism is
/// unobservable).
///
/// # Errors
///
/// Returns the first configuration error. All configs are validated
/// up front so no work is wasted on a doomed batch; should a worker's
/// `run_scenario` still fail at runtime, its error is propagated back
/// (in input order) instead of panicking inside the scoped thread and
/// aborting the whole process.
pub fn run_batch(jobs: &[(ScenarioConfig, u64)]) -> Result<Vec<RunResult>, ConfigError> {
    for (cfg, _) in jobs {
        cfg.validate()?;
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<Result<RunResult, ConfigError>>> =
        (0..jobs.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<Result<RunResult, ConfigError>>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (cfg, seed) = &jobs[i];
                let result = run_scenario(cfg, *seed);
                **slots[i].lock().expect("slot poisoned") = Some(result);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

/// Like [`run_batch`], but additionally returns one [`RunManifest`]
/// per job (in the same input order), ready to be written next to the
/// batch's results artifact via [`mobic_trace::write_manifests`].
///
/// Manifests are pure functions of each `(config, seed, result)`
/// triple, so the parallel execution stays unobservable here too.
///
/// # Errors
///
/// Propagates errors exactly as [`run_batch`] does.
pub fn run_batch_manifested(
    jobs: &[(ScenarioConfig, u64)],
) -> Result<(Vec<RunResult>, Vec<RunManifest>), ConfigError> {
    let results = run_batch(jobs)?;
    let manifests = jobs
        .iter()
        .zip(&results)
        .map(|((cfg, seed), r)| manifest_for(cfg, *seed, r))
        .collect();
    Ok((results, manifests))
}

/// Aggregated outcome of one sweep cell (one algorithm at one
/// parameter point, across seeds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The swept x-value (e.g. transmission range in meters).
    pub x: f64,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Mean steady-state clusterhead changes (`CS`).
    pub mean_cs: f64,
    /// Standard error of `CS` across seeds.
    pub stderr_cs: f64,
    /// Mean steady-state cluster count.
    pub mean_clusters: f64,
    /// Mean gateway fraction.
    pub mean_gateway_fraction: f64,
    /// The raw per-seed `CS` samples (for significance testing).
    pub cs_samples: Vec<f64>,
}

/// Aggregates a group of runs (same cell, different seeds) into a
/// [`SweepOutcome`] keyed by `x`.
///
/// # Panics
///
/// Panics if `runs` is empty or mixes algorithms.
#[must_use]
pub fn summarize_cs(x: f64, runs: &[RunResult]) -> SweepOutcome {
    assert!(!runs.is_empty(), "cannot summarize zero runs");
    let algorithm = runs[0].algorithm;
    assert!(
        runs.iter().all(|r| r.algorithm == algorithm),
        "mixed algorithms in one sweep cell"
    );
    let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
    let clusters: OnlineStats = runs.iter().map(|r| r.avg_clusters).collect();
    let gw: OnlineStats = runs.iter().map(|r| r.gateway_fraction).collect();
    SweepOutcome {
        x,
        algorithm: algorithm.name().to_string(),
        runs: runs.len(),
        mean_cs: cs.mean(),
        stderr_cs: cs.std_error(),
        mean_clusters: clusters.mean(),
        mean_gateway_fraction: gw.mean(),
        cs_samples: runs.iter().map(|r| r.clusterhead_changes as f64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::AlgorithmKind;

    fn tiny(alg: AlgorithmKind, tx: f64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_table1();
        c.n_nodes = 8;
        c.sim_time_s = 30.0;
        c.tx_range_m = tx;
        c.algorithm = alg;
        c
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..6)
            .map(|s| (tiny(AlgorithmKind::Mobic, 150.0 + 10.0 * s as f64), s))
            .collect();
        let batch = run_batch(&jobs).unwrap();
        for (i, (cfg, seed)) in jobs.iter().enumerate() {
            let solo = run_scenario(cfg, *seed).unwrap();
            assert_eq!(batch[i].deliveries, solo.deliveries, "job {i}");
            assert_eq!(batch[i].tx_range_m, cfg.tx_range_m);
        }
    }

    #[test]
    fn batch_rejects_invalid_configs_upfront() {
        let mut bad = tiny(AlgorithmKind::Mobic, 100.0);
        bad.n_nodes = 0;
        let jobs = vec![(tiny(AlgorithmKind::Mobic, 100.0), 1), (bad, 2)];
        assert!(run_batch(&jobs).is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn manifested_batch_pairs_each_job_with_its_manifest() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..4)
            .map(|s| (tiny(AlgorithmKind::Mobic, 150.0 + 25.0 * s as f64), 100 + s))
            .collect();
        let (results, manifests) = run_batch_manifested(&jobs).unwrap();
        assert_eq!(results.len(), jobs.len());
        assert_eq!(manifests.len(), jobs.len());
        for (i, m) in manifests.iter().enumerate() {
            assert_eq!(m.seed, jobs[i].1, "job {i}");
            assert_eq!(m.counters.deliveries, results[i].deliveries, "job {i}");
            assert_eq!(m.counters.hello_broadcasts, results[i].hello_broadcasts);
        }
        // Distinct configs hash distinctly.
        assert_ne!(manifests[0].config_hash, manifests[1].config_hash);
    }

    #[test]
    fn summarize_aggregates_across_seeds() {
        let cfg = tiny(AlgorithmKind::Lcc, 200.0);
        let runs: Vec<RunResult> = (0..3)
            .map(|s| run_scenario(&cfg, s).unwrap())
            .collect();
        let out = summarize_cs(200.0, &runs);
        assert_eq!(out.runs, 3);
        assert_eq!(out.cs_samples.len(), 3);
        assert_eq!(out.algorithm, "lcc");
        assert_eq!(out.x, 200.0);
        let mean = runs
            .iter()
            .map(|r| r.clusterhead_changes as f64)
            .sum::<f64>()
            / 3.0;
        assert!((out.mean_cs - mean).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn summarize_rejects_empty() {
        let _ = summarize_cs(0.0, &[]);
    }
}
