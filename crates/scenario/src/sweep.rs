//! Multi-run parameter sweeps with thread-level parallelism, the
//! supervised batch executor that survives panicking or stuck jobs,
//! and the sweep-spec layer (grid expansion + content-addressed cell
//! keys) shared by `mobic-cli sweep` and the `mobic-sweepd` service.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::mpsc;
use std::time::Duration;

use mobic_core::AlgorithmKind;
use mobic_metrics::OnlineStats;
use mobic_trace::{NullSink, RunManifest, Stopwatch};
use serde::{Deserialize, Serialize};

use crate::{
    config_hash_for, latest_snapshot, manifest_for, run_scenario, run_scenario_checkpointed,
    CheckpointPolicy, RunError, RunResult, ScenarioConfig,
};

/// A batch job failure, carrying enough context to pinpoint the job
/// without re-deriving it: its index in the input slice and the
/// content hash of its configuration (as in run manifests).
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// Index of the failing job in the input slice.
    pub index: usize,
    /// Canonical config hash of the failing job (see
    /// [`config_hash_for`]).
    pub config_hash: String,
    /// What went wrong.
    pub error: RunError,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} ({}): {}",
            self.index, self.config_hash, self.error
        )
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Knobs for [`run_batch_supervised`].
///
/// `soft_deadline` is the production control; the two `*_on` fields
/// are deliberate fault hooks used by the test suite and the CI smoke
/// to prove the supervisor isolates misbehaving jobs.
#[derive(Debug, Clone, Copy)]
pub struct Supervision {
    /// Soft per-job wall-clock deadline. A job still running past it
    /// is reported as [`RunError::TimedOut`] and its worker thread is
    /// abandoned (it finishes in the background; its late result is
    /// discarded). `None` disables the watchdog.
    pub soft_deadline: Option<Duration>,
    /// How long the batch waits at the end for abandoned (timed-out)
    /// worker threads to finish before counting them as leaked in
    /// [`BatchStats::leaked_workers`]. Healthy workers have already
    /// exited by then, so this only delays batches that actually
    /// abandoned a thread.
    pub join_grace: Duration,
    /// Fault hook: the job at this index panics instead of running.
    pub panic_on: Option<usize>,
    /// Fault hook: the job at this index sleeps this long before
    /// running (used to trip the watchdog deterministically).
    pub delay_on: Option<(usize, Duration)>,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            soft_deadline: None,
            join_grace: Duration::from_millis(200),
            panic_on: None,
            delay_on: None,
        }
    }
}

/// Thread-accounting for one supervised batch (see
/// [`run_batch_supervised_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Worker threads still running after the end-of-batch grace
    /// period: each was abandoned by the soft-deadline watchdog and
    /// keeps holding memory until its (discarded) run completes. A
    /// nonzero count across many batches signals the deadline is set
    /// below real run times.
    pub leaked_workers: u32,
}

/// Runs every `(config, seed)` job, using all available cores, and
/// returns results **in input order** (the parallelism is
/// unobservable). An empty slice returns `Ok(vec![])` without
/// spawning a single thread.
///
/// # Errors
///
/// Returns the first failing job as a [`JobError`] naming its index
/// and config hash. All configs are validated up front so no work is
/// wasted on a doomed batch; should a worker's `run_scenario` still
/// fail at runtime (e.g. a strict audit), its error is propagated
/// back (in input order) instead of panicking inside the scoped
/// thread and aborting the whole process. For per-job error isolation
/// — panics and stuck jobs included — use [`run_batch_supervised`].
pub fn run_batch(jobs: &[(ScenarioConfig, u64)]) -> Result<Vec<RunResult>, JobError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    for (i, (cfg, _)) in jobs.iter().enumerate() {
        cfg.validate().map_err(|e| JobError {
            index: i,
            config_hash: config_hash_for(cfg),
            error: e.into(),
        })?;
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(jobs.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<Result<RunResult, RunError>>> =
        (0..jobs.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<Result<RunResult, RunError>>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (cfg, seed) = &jobs[i];
                let result = run_scenario(cfg, *seed);
                // A poisoned slot only means another worker panicked
                // mid-store; the `Option` write below is still sound,
                // so recover the guard instead of propagating.
                **slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            // Scoped threads fill every slot before the scope returns;
            // an empty one would mean a worker died without reporting,
            // which surfaces as a structured error rather than an
            // abort of the whole batch.
            r.unwrap_or_else(|| {
                Err(RunError::Panicked {
                    message: "worker thread exited without storing a result".to_string(),
                })
            })
            .map_err(|error| JobError {
                index: i,
                config_hash: config_hash_for(&jobs[i].0),
                error,
            })
        })
        .collect()
}

/// Like [`run_batch`], but additionally returns one [`RunManifest`]
/// per job (in the same input order), ready to be written next to the
/// batch's results artifact via [`mobic_trace::write_manifests`].
///
/// Manifests are pure functions of each `(config, seed, result)`
/// triple, so the parallel execution stays unobservable here too.
///
/// # Errors
///
/// Propagates errors exactly as [`run_batch`] does.
pub fn run_batch_manifested(
    jobs: &[(ScenarioConfig, u64)],
) -> Result<(Vec<RunResult>, Vec<RunManifest>), JobError> {
    let results = run_batch(jobs)?;
    let manifests = jobs
        .iter()
        .zip(&results)
        .map(|((cfg, seed), r)| manifest_for(cfg, *seed, r))
        .collect();
    Ok((results, manifests))
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The supervised batch executor: every job runs under
/// [`catch_unwind`] on its own worker thread, watched by a soft
/// deadline, and **every** job gets a verdict — a panicking or stuck
/// job becomes a per-job [`JobError`] while the healthy jobs' results
/// return normally, in input order.
///
/// Contrast with [`run_batch`], which aborts the whole batch on the
/// first failure and lets panics propagate: this is the entry point
/// for long unattended sweeps where one poisoned cell must not take
/// down the campaign. Timed-out worker threads are abandoned, not
/// killed — they finish in the background and their late results are
/// discarded, so a pathological job can hold memory until it
/// completes, but never the batch.
///
/// An empty `jobs` slice returns an empty vector without spawning a
/// single thread.
pub fn run_batch_supervised(
    jobs: &[(ScenarioConfig, u64)],
    supervision: &Supervision,
) -> Vec<Result<RunResult, JobError>> {
    run_batch_supervised_stats(jobs, supervision).0
}

/// [`run_batch_supervised`] plus thread accounting: the same verdicts,
/// and a [`BatchStats`] saying how many abandoned worker threads were
/// still running when the batch ended.
///
/// Every spawned thread is tracked; at batch end each one is joined,
/// waiting up to [`Supervision::join_grace`] for stragglers. A thread
/// that outlives the grace is *leaked* — left to finish in the
/// background with its late result discarded — and counted, so
/// operators (`mobic-sweepd`'s `/status`, the CLI sweep loop) can see
/// resource pressure instead of silently accumulating zombies.
pub fn run_batch_supervised_stats(
    jobs: &[(ScenarioConfig, u64)],
    supervision: &Supervision,
) -> (Vec<Result<RunResult, JobError>>, BatchStats) {
    let n_jobs = jobs.len();
    if n_jobs == 0 {
        return (Vec::new(), BatchStats::default());
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n_jobs);
    let job_error = |i: usize, error: RunError| JobError {
        index: i,
        config_hash: config_hash_for(&jobs[i].0),
        error,
    };
    let (send, recv) = mpsc::channel::<(usize, Result<RunResult, RunError>)>();
    let spawn_job = |i: usize| -> std::thread::JoinHandle<()> {
        let (cfg, seed) = jobs[i]; // `ScenarioConfig` is `Copy`
        let sender = send.clone();
        let panics = supervision.panic_on == Some(i);
        let delay = supervision
            .delay_on
            .and_then(|(j, d)| (j == i).then_some(d));
        std::thread::spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(d) = delay {
                    std::thread::sleep(d);
                }
                assert!(!panics, "supervision fault hook: deliberate panic");
                run_scenario(&cfg, seed)
            }));
            let message = match outcome {
                Ok(r) => r,
                Err(payload) => Err(RunError::Panicked {
                    message: panic_message(payload.as_ref()),
                }),
            };
            // The supervisor may have already timed this job out and
            // stopped listening; a dead channel is fine.
            let _ = sender.send((i, message));
        })
    };

    let mut results: Vec<Option<Result<RunResult, JobError>>> = (0..n_jobs).map(|_| None).collect();
    // (job index, per-job stopwatch) of every live worker.
    let mut running: Vec<(usize, Stopwatch)> = Vec::new();
    // Every spawned thread, live or abandoned, for the end-of-batch
    // join below.
    let mut spawned: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut next = 0usize;
    while results.iter().any(Option::is_none) {
        while next < n_jobs && running.len() < workers {
            spawned.push(spawn_job(next));
            running.push((next, Stopwatch::start()));
            next += 1;
        }
        let message = match supervision.soft_deadline {
            None => recv.recv().ok(),
            Some(limit) => {
                // Sleep until the first message or the earliest
                // running job's deadline, whichever comes first.
                let earliest = running
                    .iter()
                    .map(|&(_, started)| started.remaining_of(limit))
                    .min()
                    .unwrap_or(Duration::from_millis(10));
                match recv.recv_timeout(earliest) {
                    Ok(m) => Some(m),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        match message {
            Some((i, r)) => {
                running.retain(|&(j, _)| j != i);
                if results[i].is_none() {
                    // A late result for an already timed-out job is
                    // discarded: the verdict stands.
                    results[i] = Some(r.map_err(|e| job_error(i, e)));
                }
            }
            None => {
                // Timeouts only fire with a deadline configured; a
                // `None` message without one means the channel closed
                // (impossible while we hold `send`, but the fallback
                // below turns it into per-job errors, not an abort).
                let Some(limit) = supervision.soft_deadline else {
                    break;
                };
                let overdue: Vec<usize> = running
                    .iter()
                    .filter(|&&(_, started)| started.remaining_of(limit).is_zero())
                    .map(|&(i, _)| i)
                    .collect();
                for i in overdue {
                    running.retain(|&(j, _)| j != i);
                    results[i] = Some(Err(job_error(
                        i,
                        RunError::TimedOut {
                            limit_s: limit.as_secs_f64(),
                        },
                    )));
                }
            }
        }
    }
    // Batch end: reap every thread we spawned. Healthy workers have
    // already exited, so joining them is instant; abandoned
    // (timed-out) ones get one shared grace window to wind down
    // before being counted as leaked. Verdicts are final either way —
    // late results were discarded above.
    let grace = Stopwatch::start();
    let mut leaked_workers = 0u32;
    for handle in spawned {
        while !handle.is_finished() && !grace.remaining_of(supervision.join_grace).is_zero() {
            std::thread::sleep(Duration::from_millis(1));
        }
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            leaked_workers += 1;
        }
    }
    let verdicts = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            // Every job normally has a verdict by now; the only way to
            // miss one is the supervisor channel closing early, which
            // becomes a structured per-job error.
            r.unwrap_or_else(|| {
                Err(job_error(
                    i,
                    RunError::Panicked {
                        message: "supervisor channel closed before a verdict arrived".to_string(),
                    },
                ))
            })
        })
        .collect();
    (verdicts, BatchStats { leaked_workers })
}

/// Aggregated outcome of one sweep cell (one algorithm at one
/// parameter point, across seeds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The swept x-value (e.g. transmission range in meters).
    pub x: f64,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Mean steady-state clusterhead changes (`CS`).
    pub mean_cs: f64,
    /// Standard error of `CS` across seeds.
    pub stderr_cs: f64,
    /// Mean steady-state cluster count.
    pub mean_clusters: f64,
    /// Mean gateway fraction.
    pub mean_gateway_fraction: f64,
    /// The raw per-seed `CS` samples (for significance testing).
    pub cs_samples: Vec<f64>,
}

/// Aggregates a group of runs (same cell, different seeds) into a
/// [`SweepOutcome`] keyed by `x`.
///
/// # Panics
///
/// Panics if `runs` is empty or mixes algorithms.
#[must_use]
pub fn summarize_cs(x: f64, runs: &[RunResult]) -> SweepOutcome {
    assert!(!runs.is_empty(), "cannot summarize zero runs");
    let algorithm = runs[0].algorithm;
    assert!(
        runs.iter().all(|r| r.algorithm == algorithm),
        "mixed algorithms in one sweep cell"
    );
    let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
    let clusters: OnlineStats = runs.iter().map(|r| r.avg_clusters).collect();
    let gw: OnlineStats = runs.iter().map(|r| r.gateway_fraction).collect();
    SweepOutcome {
        x,
        algorithm: algorithm.name().to_string(),
        runs: runs.len(),
        mean_cs: cs.mean(),
        stderr_cs: cs.std_error(),
        mean_clusters: clusters.mean(),
        mean_gateway_fraction: gw.mean(),
        cs_samples: runs.iter().map(|r| r.clusterhead_changes as f64).collect(),
    }
}

impl SweepOutcome {
    /// The canonical serialization of a sweep cell — the **exact**
    /// bytes `mobic-cli sweep --out` writes and the `mobic-sweepd`
    /// cache stores/serves, so "cached cell" and "directly computed
    /// cell" can be compared with `==` on strings.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        // Plain data; serialization is infallible in practice, and an
        // empty string (which never parses back) beats aborting a
        // sweep should that ever change.
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parses a cell file's contents. Returns `None` for anything that
    /// is not a complete, well-formed cell — a truncated or corrupted
    /// file is indistinguishable from a missing one, which is what
    /// makes resume/cache logic safe: damaged cells are recomputed,
    /// never served.
    #[must_use]
    pub fn from_json(text: &str) -> Option<SweepOutcome> {
        serde_json::from_str(text).ok()
    }
}

/// Content address of one sweep cell: the FNV-1a hash of the cell's
/// canonical config JSON (same canonicalization as
/// [`config_hash_for`]) concatenated with its seed list.
///
/// Two cells collide only if they agree on **every** config field
/// (algorithm and swept value included — both live inside
/// [`ScenarioConfig`]) *and* run the same seeds — in which case they
/// are the same computation and sharing the cached result is the
/// point. Distinctness over the paper's experiment grids is asserted
/// exhaustively in `tests/sweepd_cache.rs`.
#[must_use]
pub fn cell_key(config: &ScenarioConfig, seeds: &[u64]) -> String {
    let value = serde_json::to_value(config).unwrap_or(serde_json::Value::Null);
    let mut keyed = serde_json::to_string(&value).unwrap_or_default();
    for s in seeds {
        keyed.push(',');
        keyed.push_str(&s.to_string());
    }
    mobic_trace::config_hash(&keyed)
}

/// A malformed or invalid sweep spec (bad JSON, empty grid, or a cell
/// whose scenario fails validation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid sweep spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A declarative sweep: the JSON payload of `POST /sweep` on
/// `mobic-sweepd`, and the same grid `mobic-cli sweep` expands
/// locally.
///
/// Expansion order is fixed (outer loop over `tx_values`, inner loop
/// over `algorithms`, seeds `0..seeds` per cell) so a spec's cell
/// list — and therefore the order of keys in a submit response — is
/// deterministic and identical to the CLI's own sweep loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Base scenario; each cell overrides `tx_range_m` and
    /// `algorithm`.
    pub base: ScenarioConfig,
    /// Swept transmission ranges in meters (the x-axis).
    pub tx_values: Vec<f64>,
    /// Algorithms compared at every x.
    pub algorithms: Vec<AlgorithmKind>,
    /// Seeds per cell: every cell runs master seeds `0..seeds`.
    pub seeds: u64,
    /// Deliberate fault hook for the service's retry path: each cell's
    /// first `fault_panic_attempts` executions panic inside the
    /// supervised batch before running cleanly. Test/CI only; omitted
    /// from serialization when zero, so real specs are unaffected.
    /// The hook is **not** part of any cell's content address — a
    /// cell's identity is `(config, seeds)` alone.
    #[serde(default, skip_serializing_if = "u32_is_zero")]
    pub fault_panic_attempts: u32,
}

/// `skip_serializing_if` helper for [`SweepSpec::fault_panic_attempts`].
fn u32_is_zero(v: &u32) -> bool {
    *v == 0
}

impl SweepSpec {
    /// Checks the grid is non-empty and every expanded cell config
    /// validates.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the first problem.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.tx_values.is_empty() {
            return Err(SpecError("tx_values must be non-empty".to_string()));
        }
        if self.algorithms.is_empty() {
            return Err(SpecError("algorithms must be non-empty".to_string()));
        }
        if self.seeds == 0 {
            return Err(SpecError("seeds must be at least 1".to_string()));
        }
        for cell in self.cells() {
            cell.config
                .validate()
                .map_err(|e| SpecError(format!("cell {}: {e}", cell.key())))?;
        }
        Ok(())
    }

    /// Expands the grid into cells, in the canonical order (see the
    /// type docs).
    #[must_use]
    pub fn cells(&self) -> Vec<SweepCell> {
        let seeds: Vec<u64> = (0..self.seeds).collect();
        let mut cells = Vec::with_capacity(self.tx_values.len() * self.algorithms.len());
        for &tx in &self.tx_values {
            for &alg in &self.algorithms {
                cells.push(SweepCell {
                    config: self.base.with_algorithm(alg).with_tx_range(tx),
                    x: tx,
                    seeds: seeds.clone(),
                });
            }
        }
        cells
    }

    /// Serializes the spec as the `POST /sweep` JSON payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// Parses and validates a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed JSON or an invalid grid.
    pub fn from_json(text: &str) -> Result<SweepSpec, SpecError> {
        let spec: SweepSpec =
            serde_json::from_str(text).map_err(|e| SpecError(format!("bad JSON: {e}")))?;
        spec.validate()?;
        Ok(spec)
    }
}

/// One expanded sweep cell: a fully-resolved scenario (algorithm and
/// tx already applied) plus the seed list it aggregates over.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The cell's complete scenario configuration.
    pub config: ScenarioConfig,
    /// The swept x-value (redundant with `config.tx_range_m`, kept
    /// explicit because [`SweepOutcome::x`] echoes it).
    pub x: f64,
    /// Master seeds aggregated by this cell.
    pub seeds: Vec<u64>,
}

impl SweepCell {
    /// The cell's content address (see [`cell_key`]).
    #[must_use]
    pub fn key(&self) -> String {
        cell_key(&self.config, &self.seeds)
    }

    /// The pre-service (`mobic-cli sweep --out`) file name of this
    /// cell — `cell_<algorithm>_tx<x>.json` — which the sweepd cache
    /// also recognizes so an old `--out` directory warms it.
    #[must_use]
    pub fn legacy_file_name(&self) -> String {
        format!("cell_{}_tx{:.0}.json", self.config.algorithm.name(), self.x)
    }
}

/// Computes one cell under supervision: runs every seed, then
/// aggregates with [`summarize_cs`]. The result is identical — byte
/// for byte once serialized via [`SweepOutcome::to_json_pretty`] — to
/// what `mobic-cli sweep` computes for the same cell, because both
/// paths run the same `(config, seed)` jobs through `run_scenario`
/// and the same aggregation.
///
/// # Errors
///
/// Returns the first failing seed's [`JobError`] (config, panic,
/// timeout, or strict-audit verdicts); the cell has no partial
/// outcome — callers retry or park it.
pub fn run_cell(cell: &SweepCell, supervision: &Supervision) -> Result<SweepOutcome, JobError> {
    run_cell_stats(cell, supervision).0
}

/// [`run_cell`] plus the batch's [`BatchStats`], so services can
/// account for leaked worker threads per cell.
pub fn run_cell_stats(
    cell: &SweepCell,
    supervision: &Supervision,
) -> (Result<SweepOutcome, JobError>, BatchStats) {
    let jobs: Vec<(ScenarioConfig, u64)> = cell.seeds.iter().map(|&s| (cell.config, s)).collect();
    let (verdicts, stats) = run_batch_supervised_stats(&jobs, supervision);
    let mut runs = Vec::with_capacity(verdicts.len());
    for r in verdicts {
        match r {
            Ok(run) => runs.push(run),
            Err(e) => return (Err(e), stats),
        }
    }
    (Ok(summarize_cs(cell.x, &runs)), stats)
}

/// Crash-recovery counters of one [`run_cell_recoverable`] attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellRecovery {
    /// Seeds that resumed from a valid snapshot instead of starting
    /// cold.
    pub resumed: u32,
    /// Snapshots that could not be used — corrupt files skipped by
    /// [`latest_snapshot`] plus snapshots rejected by the
    /// `(config, seed)` compatibility gate — each degrading to an
    /// older snapshot or a cold start, never to restored-bad-state.
    pub fallbacks: u32,
}

/// Computes one cell with crash-safe checkpointing: every seed runs
/// through [`run_scenario_checkpointed`](crate::run_scenario_checkpointed),
/// publishing rotated snapshots under `ckpt_dir/seed-<seed>/` at the
/// cadence in `policy`, and — after a crash or a kill — resuming each
/// seed from its newest snapshot that passes the integrity and
/// compatibility gates (degrading to older snapshots, then to a cold
/// start). The aggregated [`SweepOutcome`] is byte-identical to what
/// [`run_cell`] computes for the same cell, whether or not any seed
/// resumed: checkpointing changes how the value is evaluated, never
/// the value.
///
/// Seeds run sequentially on the caller's thread (a sweepd worker *is*
/// the unit of parallelism), honoring the [`Supervision`] fault hooks
/// (`panic_on`, `delay_on`) so the service's retry path stays
/// testable; the soft-deadline watchdog does not apply here — on this
/// path a long cell is survivable by construction, because a killed
/// attempt resumes from its snapshots instead of being thrown away.
///
/// On success the cell's snapshot directory is removed (the result is
/// cached; the snapshots are dead weight). On failure it is kept so
/// the retry resumes rather than recomputes.
pub fn run_cell_recoverable(
    cell: &SweepCell,
    supervision: &Supervision,
    ckpt_dir: &Path,
    policy: CheckpointPolicy,
) -> (Result<SweepOutcome, JobError>, CellRecovery) {
    let mut recovery = CellRecovery::default();
    let mut runs = Vec::with_capacity(cell.seeds.len());
    for (i, &seed) in cell.seeds.iter().enumerate() {
        let mut cfg = cell.config;
        cfg.checkpoint = policy;
        let seed_dir = ckpt_dir.join(format!("seed-{seed}"));
        let (snapshot, rejected) = latest_snapshot(&seed_dir);
        recovery.fallbacks += rejected;
        let resume = match snapshot {
            Some(s) if s.compatible_with(&cfg, seed).is_ok() => {
                recovery.resumed += 1;
                Some(s)
            }
            Some(_) => {
                // A stale directory from a different cell layout; a
                // cold start is always correct.
                recovery.fallbacks += 1;
                None
            }
            None => None,
        };
        let panics = supervision.panic_on == Some(i);
        let delay = supervision
            .delay_on
            .and_then(|(j, d)| (j == i).then_some(d));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(d) = delay {
                std::thread::sleep(d);
            }
            assert!(!panics, "supervision fault hook: deliberate panic");
            run_scenario_checkpointed(&cfg, seed, &seed_dir, resume, &mut NullSink)
        }));
        let result = match outcome {
            Ok(r) => r,
            Err(payload) => Err(RunError::Panicked {
                message: panic_message(payload.as_ref()),
            }),
        };
        match result {
            Ok(run) => runs.push(run),
            Err(error) => {
                // Keep the snapshot directory: the retry resumes this
                // seed instead of recomputing the whole cell.
                let err = JobError {
                    index: i,
                    config_hash: config_hash_for(&cell.config),
                    error,
                };
                return (Err(err), recovery);
            }
        }
    }
    // The cell is done and its outcome will be cached; the snapshots
    // have served their purpose. Best-effort cleanup only — a leftover
    // directory is re-validated (and rejected) on any future reuse.
    let _ = std::fs::remove_dir_all(ckpt_dir);
    (Ok(summarize_cs(cell.x, &runs)), recovery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::AlgorithmKind;

    fn tiny(alg: AlgorithmKind, tx: f64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_table1();
        c.n_nodes = 8;
        c.sim_time_s = 30.0;
        c.tx_range_m = tx;
        c.algorithm = alg;
        c
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..6)
            .map(|s| (tiny(AlgorithmKind::Mobic, 150.0 + 10.0 * s as f64), s))
            .collect();
        let batch = run_batch(&jobs).unwrap();
        for (i, (cfg, seed)) in jobs.iter().enumerate() {
            let solo = run_scenario(cfg, *seed).unwrap();
            assert_eq!(batch[i].deliveries, solo.deliveries, "job {i}");
            assert_eq!(batch[i].tx_range_m, cfg.tx_range_m);
        }
    }

    #[test]
    fn batch_rejects_invalid_configs_upfront_with_context() {
        let mut bad = tiny(AlgorithmKind::Mobic, 100.0);
        bad.n_nodes = 0;
        let jobs = vec![(tiny(AlgorithmKind::Mobic, 100.0), 1), (bad, 2)];
        let err = run_batch(&jobs).unwrap_err();
        assert_eq!(err.index, 1, "the error must name the failing job");
        assert_eq!(err.config_hash, crate::config_hash_for(&bad));
        assert!(matches!(err.error, RunError::Config(_)));
        // The rendered error carries index and hash for log grepping.
        let text = err.to_string();
        assert!(text.contains("job 1"), "{text}");
        assert!(text.contains("fnv1a64:"), "{text}");
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[]).unwrap().is_empty());
        assert!(run_batch_supervised(&[], &Supervision::default()).is_empty());
    }

    #[test]
    fn manifested_batch_pairs_each_job_with_its_manifest() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..4)
            .map(|s| (tiny(AlgorithmKind::Mobic, 150.0 + 25.0 * s as f64), 100 + s))
            .collect();
        let (results, manifests) = run_batch_manifested(&jobs).unwrap();
        assert_eq!(results.len(), jobs.len());
        assert_eq!(manifests.len(), jobs.len());
        for (i, m) in manifests.iter().enumerate() {
            assert_eq!(m.seed, jobs[i].1, "job {i}");
            assert_eq!(m.counters.deliveries, results[i].deliveries, "job {i}");
            assert_eq!(m.counters.hello_broadcasts, results[i].hello_broadcasts);
        }
        // Distinct configs hash distinctly.
        assert_ne!(manifests[0].config_hash, manifests[1].config_hash);
    }

    #[test]
    fn summarize_aggregates_across_seeds() {
        let cfg = tiny(AlgorithmKind::Lcc, 200.0);
        let runs: Vec<RunResult> = (0..3).map(|s| run_scenario(&cfg, s).unwrap()).collect();
        let out = summarize_cs(200.0, &runs);
        assert_eq!(out.runs, 3);
        assert_eq!(out.cs_samples.len(), 3);
        assert_eq!(out.algorithm, "lcc");
        assert_eq!(out.x, 200.0);
        let mean = runs
            .iter()
            .map(|r| r.clusterhead_changes as f64)
            .sum::<f64>()
            / 3.0;
        assert!((out.mean_cs - mean).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn summarize_rejects_empty() {
        let _ = summarize_cs(0.0, &[]);
    }

    #[test]
    fn sweep_outcomes_round_trip_through_json() {
        // `SweepOutcome` doubles as the per-cell resume artifact, so
        // a full serde round trip must preserve it.
        let cfg = tiny(AlgorithmKind::Mobic, 200.0);
        let runs: Vec<RunResult> = (0..2).map(|s| run_scenario(&cfg, s).unwrap()).collect();
        let out = summarize_cs(200.0, &runs);
        let json = serde_json::to_string(&out).unwrap();
        let back: SweepOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.runs, out.runs);
        assert_eq!(back.algorithm, out.algorithm);
        assert_eq!(back.cs_samples, out.cs_samples);
    }

    #[test]
    fn supervised_batch_matches_unsupervised_results() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..5)
            .map(|s| (tiny(AlgorithmKind::Mobic, 150.0 + 10.0 * s as f64), s))
            .collect();
        let plain = run_batch(&jobs).unwrap();
        let supervised = run_batch_supervised(&jobs, &Supervision::default());
        assert_eq!(supervised.len(), jobs.len());
        for (i, r) in supervised.iter().enumerate() {
            let r = r.as_ref().expect("healthy job");
            assert_eq!(r.deliveries, plain[i].deliveries, "job {i}");
            assert_eq!(r.final_roles, plain[i].final_roles, "job {i}");
        }
    }

    #[test]
    fn supervised_batch_isolates_a_panicking_job() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..4)
            .map(|s| (tiny(AlgorithmKind::Mobic, 200.0), s))
            .collect();
        let sup = Supervision {
            panic_on: Some(2),
            ..Supervision::default()
        };
        let results = run_batch_supervised(&jobs, &sup);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 2);
                assert!(
                    matches!(&e.error, RunError::Panicked { message } if message.contains("deliberate")),
                    "{e}"
                );
            } else {
                assert!(r.is_ok(), "job {i} must survive the panic");
            }
        }
    }

    #[test]
    fn supervised_batch_times_out_a_stuck_job_and_finishes_the_rest() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..3)
            .map(|s| (tiny(AlgorithmKind::Mobic, 200.0), s))
            .collect();
        let sup = Supervision {
            soft_deadline: Some(std::time::Duration::from_secs(5)),
            delay_on: Some((1, std::time::Duration::from_secs(60))),
            ..Supervision::default()
        };
        let results = run_batch_supervised(&jobs, &sup);
        let e = results[1].as_ref().unwrap_err();
        assert_eq!(e.index, 1);
        assert!(
            matches!(e.error, RunError::TimedOut { limit_s } if (limit_s - 5.0).abs() < 1e-9),
            "{e}"
        );
        assert!(results[0].is_ok());
        assert!(results[2].is_ok());
    }

    fn tiny_spec() -> SweepSpec {
        let mut base = ScenarioConfig::paper_table1();
        base.n_nodes = 8;
        base.sim_time_s = 30.0;
        SweepSpec {
            base,
            tx_values: vec![150.0, 200.0],
            algorithms: vec![AlgorithmKind::Lcc, AlgorithmKind::Mobic],
            seeds: 2,
            fault_panic_attempts: 0,
        }
    }

    #[test]
    fn spec_expands_tx_outer_alg_inner_with_all_seeds() {
        let spec = tiny_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        // Order must match the CLI sweep loop: tx outer, algorithm
        // inner.
        let expect = [
            (150.0, AlgorithmKind::Lcc),
            (150.0, AlgorithmKind::Mobic),
            (200.0, AlgorithmKind::Lcc),
            (200.0, AlgorithmKind::Mobic),
        ];
        for (cell, (tx, alg)) in cells.iter().zip(expect) {
            assert_eq!(cell.x, tx);
            assert_eq!(cell.config.tx_range_m, tx);
            assert_eq!(cell.config.algorithm, alg);
            assert_eq!(cell.seeds, vec![0, 1]);
        }
    }

    #[test]
    fn spec_round_trips_through_json_and_validates() {
        let spec = tiny_spec();
        let json = spec.to_json();
        let back = SweepSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        // The fault hook is test-only and must not appear in real
        // specs' serialization (it would be noise in operator logs).
        assert!(!json.contains("fault_panic_attempts"), "{json}");

        let mut faulty = spec.clone();
        faulty.fault_panic_attempts = 1;
        let json = faulty.to_json();
        assert!(json.contains("fault_panic_attempts"), "{json}");
        assert_eq!(SweepSpec::from_json(&json).unwrap(), faulty);
    }

    #[test]
    fn spec_rejects_empty_grids_and_bad_cells() {
        let mut spec = tiny_spec();
        spec.tx_values.clear();
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.algorithms.clear();
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.seeds = 0;
        assert!(spec.validate().is_err());

        let mut spec = tiny_spec();
        spec.base.n_nodes = 0;
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("cell fnv1a64:"), "{err}");

        assert!(SweepSpec::from_json("{not json").is_err());
    }

    #[test]
    fn cell_keys_are_distinct_across_the_grid_and_stable() {
        let spec = tiny_spec();
        let cells = spec.cells();
        let keys: Vec<String> = cells.iter().map(SweepCell::key).collect();
        for (i, a) in keys.iter().enumerate() {
            assert!(a.starts_with("fnv1a64:"), "{a}");
            for (j, b) in keys.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "cells {i} and {j} collide");
                }
            }
        }
        // Same cell, same key — and the seed list is part of the
        // address, so more seeds means a different cell.
        assert_eq!(keys[0], cells[0].key());
        let mut wider = cells[0].clone();
        wider.seeds.push(2);
        assert_ne!(keys[0], wider.key());
    }

    #[test]
    fn legacy_file_name_matches_the_cli_naming() {
        let spec = tiny_spec();
        let names: Vec<String> = spec
            .cells()
            .iter()
            .map(SweepCell::legacy_file_name)
            .collect();
        assert_eq!(
            names,
            [
                "cell_lcc_tx150.json",
                "cell_mobic_tx150.json",
                "cell_lcc_tx200.json",
                "cell_mobic_tx200.json",
            ]
        );
    }

    #[test]
    fn run_cell_matches_the_manual_batch_plus_summarize_path() {
        let spec = tiny_spec();
        let cell = &spec.cells()[1]; // mobic @ 150 m
        let via_cell = run_cell(cell, &Supervision::default()).unwrap();
        let jobs: Vec<(ScenarioConfig, u64)> =
            cell.seeds.iter().map(|&s| (cell.config, s)).collect();
        let runs = run_batch(&jobs).unwrap();
        let manual = summarize_cs(cell.x, &runs);
        // Byte-identity of the serialized artifacts is the standing
        // contract between the CLI and the sweepd cache.
        assert_eq!(via_cell.to_json_pretty(), manual.to_json_pretty());
        assert_eq!(
            SweepOutcome::from_json(&manual.to_json_pretty())
                .unwrap()
                .to_json_pretty(),
            manual.to_json_pretty()
        );
        assert!(SweepOutcome::from_json("{\"x\": 150.0").is_none());
    }

    #[test]
    fn run_cell_propagates_a_panicking_seed_as_a_job_error() {
        let spec = tiny_spec();
        let cell = &spec.cells()[0];
        let sup = Supervision {
            panic_on: Some(0),
            ..Supervision::default()
        };
        let err = run_cell(cell, &sup).unwrap_err();
        assert_eq!(err.index, 0);
        assert!(matches!(err.error, RunError::Panicked { .. }));
    }

    #[test]
    fn supervised_batch_reports_config_errors_per_job() {
        let mut bad = tiny(AlgorithmKind::Mobic, 100.0);
        bad.n_nodes = 0;
        let jobs = vec![(tiny(AlgorithmKind::Mobic, 100.0), 1), (bad, 2)];
        let results = run_batch_supervised(&jobs, &Supervision::default());
        assert!(results[0].is_ok(), "healthy job must complete");
        let e = results[1].as_ref().unwrap_err();
        assert_eq!(e.index, 1);
        assert!(matches!(e.error, RunError::Config(_)));
    }

    #[test]
    fn healthy_batches_leak_no_worker_threads() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..3)
            .map(|s| (tiny(AlgorithmKind::Mobic, 180.0), s))
            .collect();
        let (results, stats) = run_batch_supervised_stats(&jobs, &Supervision::default());
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(stats, BatchStats::default());
    }

    /// A fresh per-test checkpoint root under the OS temp dir.
    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mobic-sweep-ckpt-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fast_policy() -> CheckpointPolicy {
        CheckpointPolicy {
            every_s: 1e-9,
            keep: 2,
        }
    }

    #[test]
    fn recoverable_cell_matches_run_cell_and_cleans_up() {
        let spec = tiny_spec();
        let cell = &spec.cells()[0];
        let dir = ckpt_dir("clean");
        let (outcome, recovery) =
            run_cell_recoverable(cell, &Supervision::default(), &dir, fast_policy());
        let recovered = outcome.expect("cell must complete").to_json_pretty();
        let direct = run_cell(cell, &Supervision::default())
            .expect("direct run")
            .to_json_pretty();
        assert_eq!(recovered, direct, "checkpointing must not change bytes");
        assert_eq!(recovery.resumed, 0, "nothing to resume on a cold cell");
        assert!(
            !dir.exists(),
            "a completed cell must remove its snapshot directory"
        );
    }

    #[test]
    fn recoverable_cell_resumes_after_a_crash_with_identical_bytes() {
        let spec = tiny_spec();
        let cell = &spec.cells()[1];
        let dir = ckpt_dir("crash");
        // First attempt: seed 0 completes (leaving snapshots behind is
        // irrelevant — it re-verifies), then the fault hook crashes
        // the attempt at seed index 1, exactly like a killed worker.
        let crash = Supervision {
            panic_on: Some(1),
            ..Supervision::default()
        };
        let (outcome, _) = run_cell_recoverable(cell, &crash, &dir, fast_policy());
        let err = outcome.expect_err("the fault hook must crash the attempt");
        assert_eq!(err.index, 1);
        assert!(matches!(err.error, RunError::Panicked { .. }));
        assert!(dir.exists(), "a failed attempt must keep its snapshots");

        // The retry resumes seed 0 from its snapshot instead of
        // recomputing it, and the final bytes are the uninterrupted
        // cell's bytes.
        let (outcome, recovery) =
            run_cell_recoverable(cell, &Supervision::default(), &dir, fast_policy());
        let resumed = outcome.expect("retry must complete").to_json_pretty();
        let direct = run_cell(cell, &Supervision::default())
            .expect("direct run")
            .to_json_pretty();
        assert_eq!(resumed, direct, "resume must not change bytes");
        assert!(recovery.resumed >= 1, "seed 0 must resume from snapshot");
        assert!(!dir.exists(), "completion must remove the snapshots");
    }

    #[test]
    fn recoverable_cell_degrades_to_cold_start_on_corrupt_snapshots() {
        let spec = tiny_spec();
        let cell = &spec.cells()[0];
        let dir = ckpt_dir("corrupt");
        // A corrupt snapshot for seed 0: one bogus .ckpt file that
        // fails the integrity gate.
        let seed_dir = dir.join("seed-0");
        std::fs::create_dir_all(&seed_dir).unwrap();
        std::fs::write(seed_dir.join("ckpt-00000000000000000099.ckpt"), b"garbage").unwrap();
        let (outcome, recovery) =
            run_cell_recoverable(cell, &Supervision::default(), &dir, fast_policy());
        let recovered = outcome.expect("cell must complete").to_json_pretty();
        let direct = run_cell(cell, &Supervision::default())
            .expect("direct run")
            .to_json_pretty();
        assert_eq!(recovered, direct, "corruption must cost bytes nothing");
        assert_eq!(recovery.resumed, 0, "garbage must never be restored");
        assert!(recovery.fallbacks >= 1, "the rejection must be counted");
    }
}
