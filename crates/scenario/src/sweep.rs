//! Multi-run parameter sweeps with thread-level parallelism, plus the
//! supervised batch executor that survives panicking or stuck jobs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::Duration;

use mobic_metrics::OnlineStats;
use mobic_trace::{RunManifest, Stopwatch};
use serde::{Deserialize, Serialize};

use crate::{config_hash_for, manifest_for, run_scenario, RunError, RunResult, ScenarioConfig};

/// A batch job failure, carrying enough context to pinpoint the job
/// without re-deriving it: its index in the input slice and the
/// content hash of its configuration (as in run manifests).
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// Index of the failing job in the input slice.
    pub index: usize,
    /// Canonical config hash of the failing job (see
    /// [`config_hash_for`]).
    pub config_hash: String,
    /// What went wrong.
    pub error: RunError,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} ({}): {}",
            self.index, self.config_hash, self.error
        )
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Knobs for [`run_batch_supervised`].
///
/// `soft_deadline` is the production control; the two `*_on` fields
/// are deliberate fault hooks used by the test suite and the CI smoke
/// to prove the supervisor isolates misbehaving jobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Supervision {
    /// Soft per-job wall-clock deadline. A job still running past it
    /// is reported as [`RunError::TimedOut`] and its worker thread is
    /// abandoned (it finishes in the background; its late result is
    /// discarded). `None` disables the watchdog.
    pub soft_deadline: Option<Duration>,
    /// Fault hook: the job at this index panics instead of running.
    pub panic_on: Option<usize>,
    /// Fault hook: the job at this index sleeps this long before
    /// running (used to trip the watchdog deterministically).
    pub delay_on: Option<(usize, Duration)>,
}

/// Runs every `(config, seed)` job, using all available cores, and
/// returns results **in input order** (the parallelism is
/// unobservable). An empty slice returns `Ok(vec![])` without
/// spawning a single thread.
///
/// # Errors
///
/// Returns the first failing job as a [`JobError`] naming its index
/// and config hash. All configs are validated up front so no work is
/// wasted on a doomed batch; should a worker's `run_scenario` still
/// fail at runtime (e.g. a strict audit), its error is propagated
/// back (in input order) instead of panicking inside the scoped
/// thread and aborting the whole process. For per-job error isolation
/// — panics and stuck jobs included — use [`run_batch_supervised`].
pub fn run_batch(jobs: &[(ScenarioConfig, u64)]) -> Result<Vec<RunResult>, JobError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    for (i, (cfg, _)) in jobs.iter().enumerate() {
        cfg.validate().map_err(|e| JobError {
            index: i,
            config_hash: config_hash_for(cfg),
            error: e.into(),
        })?;
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(jobs.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<Result<RunResult, RunError>>> =
        (0..jobs.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<Result<RunResult, RunError>>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (cfg, seed) = &jobs[i];
                let result = run_scenario(cfg, *seed);
                // A poisoned slot only means another worker panicked
                // mid-store; the `Option` write below is still sound,
                // so recover the guard instead of propagating.
                **slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
            });
        }
    });
    drop(slots);
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            // Scoped threads fill every slot before the scope returns;
            // an empty one would mean a worker died without reporting,
            // which surfaces as a structured error rather than an
            // abort of the whole batch.
            r.unwrap_or_else(|| {
                Err(RunError::Panicked {
                    message: "worker thread exited without storing a result".to_string(),
                })
            })
            .map_err(|error| JobError {
                index: i,
                config_hash: config_hash_for(&jobs[i].0),
                error,
            })
        })
        .collect()
}

/// Like [`run_batch`], but additionally returns one [`RunManifest`]
/// per job (in the same input order), ready to be written next to the
/// batch's results artifact via [`mobic_trace::write_manifests`].
///
/// Manifests are pure functions of each `(config, seed, result)`
/// triple, so the parallel execution stays unobservable here too.
///
/// # Errors
///
/// Propagates errors exactly as [`run_batch`] does.
pub fn run_batch_manifested(
    jobs: &[(ScenarioConfig, u64)],
) -> Result<(Vec<RunResult>, Vec<RunManifest>), JobError> {
    let results = run_batch(jobs)?;
    let manifests = jobs
        .iter()
        .zip(&results)
        .map(|((cfg, seed), r)| manifest_for(cfg, *seed, r))
        .collect();
    Ok((results, manifests))
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The supervised batch executor: every job runs under
/// [`catch_unwind`] on its own worker thread, watched by a soft
/// deadline, and **every** job gets a verdict — a panicking or stuck
/// job becomes a per-job [`JobError`] while the healthy jobs' results
/// return normally, in input order.
///
/// Contrast with [`run_batch`], which aborts the whole batch on the
/// first failure and lets panics propagate: this is the entry point
/// for long unattended sweeps where one poisoned cell must not take
/// down the campaign. Timed-out worker threads are abandoned, not
/// killed — they finish in the background and their late results are
/// discarded, so a pathological job can hold memory until it
/// completes, but never the batch.
///
/// An empty `jobs` slice returns an empty vector without spawning a
/// single thread.
pub fn run_batch_supervised(
    jobs: &[(ScenarioConfig, u64)],
    supervision: &Supervision,
) -> Vec<Result<RunResult, JobError>> {
    let n_jobs = jobs.len();
    if n_jobs == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n_jobs);
    let job_error = |i: usize, error: RunError| JobError {
        index: i,
        config_hash: config_hash_for(&jobs[i].0),
        error,
    };
    let (send, recv) = mpsc::channel::<(usize, Result<RunResult, RunError>)>();
    let spawn_job = |i: usize| {
        let (cfg, seed) = jobs[i]; // `ScenarioConfig` is `Copy`
        let sender = send.clone();
        let panics = supervision.panic_on == Some(i);
        let delay = supervision
            .delay_on
            .and_then(|(j, d)| (j == i).then_some(d));
        std::thread::spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(d) = delay {
                    std::thread::sleep(d);
                }
                assert!(!panics, "supervision fault hook: deliberate panic");
                run_scenario(&cfg, seed)
            }));
            let message = match outcome {
                Ok(r) => r,
                Err(payload) => Err(RunError::Panicked {
                    message: panic_message(payload.as_ref()),
                }),
            };
            // The supervisor may have already timed this job out and
            // stopped listening; a dead channel is fine.
            let _ = sender.send((i, message));
        });
    };

    let mut results: Vec<Option<Result<RunResult, JobError>>> = (0..n_jobs).map(|_| None).collect();
    // (job index, per-job stopwatch) of every live worker.
    let mut running: Vec<(usize, Stopwatch)> = Vec::new();
    let mut next = 0usize;
    while results.iter().any(Option::is_none) {
        while next < n_jobs && running.len() < workers {
            spawn_job(next);
            running.push((next, Stopwatch::start()));
            next += 1;
        }
        let message = match supervision.soft_deadline {
            None => recv.recv().ok(),
            Some(limit) => {
                // Sleep until the first message or the earliest
                // running job's deadline, whichever comes first.
                let earliest = running
                    .iter()
                    .map(|&(_, started)| started.remaining_of(limit))
                    .min()
                    .unwrap_or(Duration::from_millis(10));
                match recv.recv_timeout(earliest) {
                    Ok(m) => Some(m),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        match message {
            Some((i, r)) => {
                running.retain(|&(j, _)| j != i);
                if results[i].is_none() {
                    // A late result for an already timed-out job is
                    // discarded: the verdict stands.
                    results[i] = Some(r.map_err(|e| job_error(i, e)));
                }
            }
            None => {
                // Timeouts only fire with a deadline configured; a
                // `None` message without one means the channel closed
                // (impossible while we hold `send`, but the fallback
                // below turns it into per-job errors, not an abort).
                let Some(limit) = supervision.soft_deadline else {
                    break;
                };
                let overdue: Vec<usize> = running
                    .iter()
                    .filter(|&&(_, started)| started.remaining_of(limit).is_zero())
                    .map(|&(i, _)| i)
                    .collect();
                for i in overdue {
                    running.retain(|&(j, _)| j != i);
                    results[i] = Some(Err(job_error(
                        i,
                        RunError::TimedOut {
                            limit_s: limit.as_secs_f64(),
                        },
                    )));
                }
            }
        }
    }
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            // Every job normally has a verdict by now; the only way to
            // miss one is the supervisor channel closing early, which
            // becomes a structured per-job error.
            r.unwrap_or_else(|| {
                Err(job_error(
                    i,
                    RunError::Panicked {
                        message: "supervisor channel closed before a verdict arrived".to_string(),
                    },
                ))
            })
        })
        .collect()
}

/// Aggregated outcome of one sweep cell (one algorithm at one
/// parameter point, across seeds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The swept x-value (e.g. transmission range in meters).
    pub x: f64,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of seeds aggregated.
    pub runs: usize,
    /// Mean steady-state clusterhead changes (`CS`).
    pub mean_cs: f64,
    /// Standard error of `CS` across seeds.
    pub stderr_cs: f64,
    /// Mean steady-state cluster count.
    pub mean_clusters: f64,
    /// Mean gateway fraction.
    pub mean_gateway_fraction: f64,
    /// The raw per-seed `CS` samples (for significance testing).
    pub cs_samples: Vec<f64>,
}

/// Aggregates a group of runs (same cell, different seeds) into a
/// [`SweepOutcome`] keyed by `x`.
///
/// # Panics
///
/// Panics if `runs` is empty or mixes algorithms.
#[must_use]
pub fn summarize_cs(x: f64, runs: &[RunResult]) -> SweepOutcome {
    assert!(!runs.is_empty(), "cannot summarize zero runs");
    let algorithm = runs[0].algorithm;
    assert!(
        runs.iter().all(|r| r.algorithm == algorithm),
        "mixed algorithms in one sweep cell"
    );
    let cs: OnlineStats = runs.iter().map(|r| r.clusterhead_changes as f64).collect();
    let clusters: OnlineStats = runs.iter().map(|r| r.avg_clusters).collect();
    let gw: OnlineStats = runs.iter().map(|r| r.gateway_fraction).collect();
    SweepOutcome {
        x,
        algorithm: algorithm.name().to_string(),
        runs: runs.len(),
        mean_cs: cs.mean(),
        stderr_cs: cs.std_error(),
        mean_clusters: clusters.mean(),
        mean_gateway_fraction: gw.mean(),
        cs_samples: runs.iter().map(|r| r.clusterhead_changes as f64).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::AlgorithmKind;

    fn tiny(alg: AlgorithmKind, tx: f64) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_table1();
        c.n_nodes = 8;
        c.sim_time_s = 30.0;
        c.tx_range_m = tx;
        c.algorithm = alg;
        c
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..6)
            .map(|s| (tiny(AlgorithmKind::Mobic, 150.0 + 10.0 * s as f64), s))
            .collect();
        let batch = run_batch(&jobs).unwrap();
        for (i, (cfg, seed)) in jobs.iter().enumerate() {
            let solo = run_scenario(cfg, *seed).unwrap();
            assert_eq!(batch[i].deliveries, solo.deliveries, "job {i}");
            assert_eq!(batch[i].tx_range_m, cfg.tx_range_m);
        }
    }

    #[test]
    fn batch_rejects_invalid_configs_upfront_with_context() {
        let mut bad = tiny(AlgorithmKind::Mobic, 100.0);
        bad.n_nodes = 0;
        let jobs = vec![(tiny(AlgorithmKind::Mobic, 100.0), 1), (bad, 2)];
        let err = run_batch(&jobs).unwrap_err();
        assert_eq!(err.index, 1, "the error must name the failing job");
        assert_eq!(err.config_hash, crate::config_hash_for(&bad));
        assert!(matches!(err.error, RunError::Config(_)));
        // The rendered error carries index and hash for log grepping.
        let text = err.to_string();
        assert!(text.contains("job 1"), "{text}");
        assert!(text.contains("fnv1a64:"), "{text}");
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[]).unwrap().is_empty());
        assert!(run_batch_supervised(&[], &Supervision::default()).is_empty());
    }

    #[test]
    fn manifested_batch_pairs_each_job_with_its_manifest() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..4)
            .map(|s| (tiny(AlgorithmKind::Mobic, 150.0 + 25.0 * s as f64), 100 + s))
            .collect();
        let (results, manifests) = run_batch_manifested(&jobs).unwrap();
        assert_eq!(results.len(), jobs.len());
        assert_eq!(manifests.len(), jobs.len());
        for (i, m) in manifests.iter().enumerate() {
            assert_eq!(m.seed, jobs[i].1, "job {i}");
            assert_eq!(m.counters.deliveries, results[i].deliveries, "job {i}");
            assert_eq!(m.counters.hello_broadcasts, results[i].hello_broadcasts);
        }
        // Distinct configs hash distinctly.
        assert_ne!(manifests[0].config_hash, manifests[1].config_hash);
    }

    #[test]
    fn summarize_aggregates_across_seeds() {
        let cfg = tiny(AlgorithmKind::Lcc, 200.0);
        let runs: Vec<RunResult> = (0..3).map(|s| run_scenario(&cfg, s).unwrap()).collect();
        let out = summarize_cs(200.0, &runs);
        assert_eq!(out.runs, 3);
        assert_eq!(out.cs_samples.len(), 3);
        assert_eq!(out.algorithm, "lcc");
        assert_eq!(out.x, 200.0);
        let mean = runs
            .iter()
            .map(|r| r.clusterhead_changes as f64)
            .sum::<f64>()
            / 3.0;
        assert!((out.mean_cs - mean).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn summarize_rejects_empty() {
        let _ = summarize_cs(0.0, &[]);
    }

    #[test]
    fn sweep_outcomes_round_trip_through_json() {
        // `SweepOutcome` doubles as the per-cell resume artifact, so
        // a full serde round trip must preserve it.
        let cfg = tiny(AlgorithmKind::Mobic, 200.0);
        let runs: Vec<RunResult> = (0..2).map(|s| run_scenario(&cfg, s).unwrap()).collect();
        let out = summarize_cs(200.0, &runs);
        let json = serde_json::to_string(&out).unwrap();
        let back: SweepOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.runs, out.runs);
        assert_eq!(back.algorithm, out.algorithm);
        assert_eq!(back.cs_samples, out.cs_samples);
    }

    #[test]
    fn supervised_batch_matches_unsupervised_results() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..5)
            .map(|s| (tiny(AlgorithmKind::Mobic, 150.0 + 10.0 * s as f64), s))
            .collect();
        let plain = run_batch(&jobs).unwrap();
        let supervised = run_batch_supervised(&jobs, &Supervision::default());
        assert_eq!(supervised.len(), jobs.len());
        for (i, r) in supervised.iter().enumerate() {
            let r = r.as_ref().expect("healthy job");
            assert_eq!(r.deliveries, plain[i].deliveries, "job {i}");
            assert_eq!(r.final_roles, plain[i].final_roles, "job {i}");
        }
    }

    #[test]
    fn supervised_batch_isolates_a_panicking_job() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..4)
            .map(|s| (tiny(AlgorithmKind::Mobic, 200.0), s))
            .collect();
        let sup = Supervision {
            panic_on: Some(2),
            ..Supervision::default()
        };
        let results = run_batch_supervised(&jobs, &sup);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.index, 2);
                assert!(
                    matches!(&e.error, RunError::Panicked { message } if message.contains("deliberate")),
                    "{e}"
                );
            } else {
                assert!(r.is_ok(), "job {i} must survive the panic");
            }
        }
    }

    #[test]
    fn supervised_batch_times_out_a_stuck_job_and_finishes_the_rest() {
        let jobs: Vec<(ScenarioConfig, u64)> = (0..3)
            .map(|s| (tiny(AlgorithmKind::Mobic, 200.0), s))
            .collect();
        let sup = Supervision {
            soft_deadline: Some(std::time::Duration::from_secs(5)),
            delay_on: Some((1, std::time::Duration::from_secs(60))),
            ..Supervision::default()
        };
        let results = run_batch_supervised(&jobs, &sup);
        let e = results[1].as_ref().unwrap_err();
        assert_eq!(e.index, 1);
        assert!(
            matches!(e.error, RunError::TimedOut { limit_s } if (limit_s - 5.0).abs() < 1e-9),
            "{e}"
        );
        assert!(results[0].is_ok());
        assert!(results[2].is_ok());
    }

    #[test]
    fn supervised_batch_reports_config_errors_per_job() {
        let mut bad = tiny(AlgorithmKind::Mobic, 100.0);
        bad.n_nodes = 0;
        let jobs = vec![(tiny(AlgorithmKind::Mobic, 100.0), 1), (bad, 2)];
        let results = run_batch_supervised(&jobs, &Supervision::default());
        assert!(results[0].is_ok(), "healthy job must complete");
        let e = results[1].as_ref().unwrap_err();
        assert_eq!(e.index, 1);
        assert!(matches!(e.error, RunError::Config(_)));
    }
}
