//! The paper's Table 1, as data.

use mobic_metrics::AsciiTable;

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Parameter symbol (e.g. "BI").
    pub symbol: &'static str,
    /// Meaning.
    pub meaning: &'static str,
    /// Value(s), verbatim from the paper.
    pub value: &'static str,
}

/// The simulation parameters of Table 1, verbatim.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            symbol: "N",
            meaning: "Number of Nodes",
            value: "50",
        },
        Table1Row {
            symbol: "m x n",
            meaning: "Size of the scenario",
            value: "670^2, 1000^2 m^2",
        },
        Table1Row {
            symbol: "MaxSpeed",
            meaning: "Maximum Speed",
            value: "1, 20, 30 m/sec",
        },
        Table1Row {
            symbol: "Tx",
            meaning: "Transmission Range",
            value: "10 - 250 m",
        },
        Table1Row {
            symbol: "PT",
            meaning: "Pause Times",
            value: "0, 30 sec",
        },
        Table1Row {
            symbol: "BI",
            meaning: "Broadcast Interval",
            value: "2.0 sec",
        },
        Table1Row {
            symbol: "TP",
            meaning: "Timeout Period",
            value: "3.0 sec",
        },
        Table1Row {
            symbol: "CCI",
            meaning: "Cluster Contention Interval",
            value: "4.0 sec",
        },
        Table1Row {
            symbol: "S",
            meaning: "Simulation Time",
            value: "900 sec",
        },
    ]
}

/// Renders Table 1 as an ASCII table, ready to print.
#[must_use]
pub fn render_table1() -> String {
    let mut t = AsciiTable::new(["Parameter", "Meaning", "Value"]);
    for row in table1() {
        t.row([row.symbol, row.meaning, row.value]);
    }
    t.render()
}

/// The transmission-range sweep the paper's Figures 3–5 use
/// (10–250 m).
#[must_use]
pub fn tx_sweep_values() -> Vec<f64> {
    vec![
        10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_all_nine_parameters() {
        let rows = table1();
        assert_eq!(rows.len(), 9);
        let symbols: Vec<&str> = rows.iter().map(|r| r.symbol).collect();
        for s in ["N", "Tx", "PT", "BI", "TP", "CCI", "S"] {
            assert!(symbols.contains(&s), "missing {s}");
        }
    }

    #[test]
    fn rendered_table_contains_values() {
        let rendered = render_table1();
        for needle in ["50", "2.0 sec", "4.0 sec", "900 sec", "Broadcast Interval"] {
            assert!(rendered.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn sweep_covers_paper_range() {
        let v = tx_sweep_values();
        assert_eq!(*v.first().unwrap(), 10.0);
        assert_eq!(*v.last().unwrap(), 250.0);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn config_defaults_agree_with_table1() {
        let c = crate::ScenarioConfig::paper_table1();
        assert_eq!(c.n_nodes.to_string(), table1()[0].value);
        assert!(table1()[5].value.starts_with(&format!("{:.1}", c.bi_s)));
        assert!(table1()[6].value.starts_with(&format!("{:.1}", c.tp_s)));
        assert!(table1()[7].value.starts_with(&format!("{:.1}", c.cci_s)));
    }
}
