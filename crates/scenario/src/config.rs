//! Scenario configuration (the paper's Table 1) and validation.

use std::error::Error;
use std::fmt;

use mobic_core::AlgorithmKind;
use serde::{Deserialize, Serialize};

/// Which mobility model drives the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilityKind {
    /// Random waypoint (the paper's model) with the config's speed
    /// range and pause time.
    RandomWaypoint,
    /// Boundary-reflecting random walk with the given epoch length.
    RandomWalk {
        /// Seconds between direction changes.
        epoch_s: f64,
    },
    /// Gauss–Markov with the given memory parameter.
    GaussMarkov {
        /// Velocity memory `α ∈ [0, 1]`.
        alpha: f64,
    },
    /// Reference Point Group Mobility: nodes split evenly into
    /// `groups` groups whose centers do random waypoint.
    Rpgm {
        /// Number of groups (≥ 1).
        groups: u32,
        /// Maximum member displacement from the group reference (m).
        member_radius_m: f64,
    },
    /// Highway convoys (§5): lanes along the x axis, speeds around
    /// the config's `max_speed_mps`.
    Highway {
        /// Number of lanes (≥ 1).
        lanes: u32,
        /// Two-way traffic (alternating lane directions) vs a one-way
        /// convoy road.
        bidirectional: bool,
    },
    /// Conference hall (§5): booth-hopping pedestrians; speeds capped
    /// at walking pace regardless of `max_speed_mps`.
    ConferenceHall {
        /// Number of booths (≥ 1).
        booths: u32,
    },
    /// Manhattan street grid with the given block size; vehicles use
    /// the config's speed range.
    Manhattan {
        /// Block (street spacing) size in meters.
        block_m: f64,
        /// Turn probability at intersections, in `[0, 1]`.
        p_turn: f64,
    },
    /// No motion at all (placement only) — useful for convergence
    /// tests and as the zero-mobility control.
    Stationary,
}

/// Which propagation model the radio uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PropagationKind {
    /// Friis free space (`1/d²`) — the paper's §3.1 assumption and
    /// our default.
    FreeSpace,
    /// ns-2's two-ray ground model (Friis below the crossover
    /// distance, `1/d⁴` beyond).
    TwoRayGround,
    /// Log-distance with the given path-loss exponent.
    LogDistance {
        /// Path-loss exponent (2 = free space, 4 ≈ obstructed).
        exponent: f64,
    },
    /// Free space plus log-normal shadowing of the given σ (dB) —
    /// the robustness extension the paper excludes.
    ShadowedFreeSpace {
        /// Shadowing standard deviation in dB.
        sigma_db: f64,
    },
    /// Free space plus Nakagami-m fast fading (m = 1 is Rayleigh).
    NakagamiFreeSpace {
        /// Fading figure `m ≥ 0.5`; larger = calmer channel.
        m: f64,
    },
}

impl PropagationKind {
    /// Whether the configured model's path loss is a pure function of
    /// distance (see [`mobic_radio::Propagation::is_deterministic`]).
    /// Mirrors the runtime capability so configs can be validated
    /// without instantiating a radio.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        match *self {
            PropagationKind::FreeSpace
            | PropagationKind::TwoRayGround
            | PropagationKind::LogDistance { .. } => true,
            // σ = 0 shadowing degenerates to plain free space.
            PropagationKind::ShadowedFreeSpace { sigma_db } => sigma_db == 0.0,
            PropagationKind::NakagamiFreeSpace { .. } => false,
        }
    }
}

/// Whether the scenario runner may use the spatial-index broadcast
/// fast path (see `run_scenario`'s module docs for the contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FastPath {
    /// Use the indexed path whenever the propagation model is
    /// deterministic, otherwise fall back to the brute-force scan.
    /// The default: always correct, fast when possible.
    #[default]
    Auto,
    /// Require the indexed path; [`ScenarioConfig::validate`] rejects
    /// the config if the propagation model is stochastic.
    On,
    /// Always use the brute-force scan (reference behavior).
    Off,
}

/// Whether the scenario runner may skip clustering evaluations it can
/// prove are no-ops (dirty-set incremental reclustering).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recluster {
    /// Skip a node's election when its neighbor table is unchanged
    /// since the last evaluation and its state machine is provably
    /// time-independent in its current role. The default: results are
    /// bit-identical to `Full`, just cheaper.
    #[default]
    Incremental,
    /// Run every election unconditionally (reference behavior).
    Full,
}

/// Which event-loop engine executes the run.
///
/// Both engines are required to produce **byte-identical** results —
/// `RunResult` JSON and JSONL traces — for every `(config, seed)`;
/// the sharded engine only changes *where* work happens (per-shard
/// event heaps, worker-thread trajectory pre-extension at lookahead
/// windows), never *what* is computed. See DESIGN.md § "Sharded
/// execution" and `tests/sharded_equivalence.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Engine {
    /// Single event heap, everything on the caller's thread (the
    /// reference behavior and the default).
    #[default]
    Sequential,
    /// Spatially sharded event storage ([`GridIndex`] cell ownership,
    /// re-assigned at hello-interval windows) with worker-thread
    /// trajectory pre-extension and a deterministic merge.
    ///
    /// [`GridIndex`]: mobic_geom::GridIndex
    Sharded,
}

impl Engine {
    /// `true` for the default sequential engine (used to keep the
    /// field out of serialized configs, so config hashes of existing
    /// scenarios are unchanged).
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        *self == Engine::Sequential
    }
}

/// Which future-event-list structure backs the event loop.
///
/// Like [`Engine`], this is an execution knob: both schedulers must
/// pop events in exactly the same `(time, seq)` order, so results and
/// traces are **byte-identical** for every `(config, seed)` — pinned
/// by `tests/scheduler_equivalence.rs`. The calendar queue only
/// changes the constant factor of push/pop for the near-periodic
/// hello workload. Composes with both engines: under
/// [`Engine::Sharded`] each shard store becomes a calendar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Scheduler {
    /// Binary-heap future-event list (the reference behavior and the
    /// default).
    #[default]
    Heap,
    /// Bucketed calendar queue with the bucket width derived from
    /// `bi_s` and capacity from `n_nodes` — O(1) amortized push/pop
    /// for the self-rescheduling hello workload.
    Calendar,
}

impl Scheduler {
    /// `true` for the default heap scheduler (used to keep the field
    /// out of serialized configs, so config hashes of existing
    /// scenarios are unchanged).
    #[must_use]
    pub fn is_heap(&self) -> bool {
        *self == Scheduler::Heap
    }
}

/// Which per-candidate delivery computation the broadcast path uses.
///
/// Another execution knob with a byte-identity contract: the
/// vectorized kernel computes the identical per-candidate float
/// sequence (distance → mean path loss → received power → threshold)
/// as the scalar `consider()` stage, batches loss-model draws in the
/// same candidate order, and commits deliveries in the same order —
/// so `Auto` and `Scalar` runs are byte-identical (also pinned by
/// `tests/scheduler_equivalence.rs`). Stochastic propagation models
/// always take the scalar route regardless of this knob, because
/// their per-candidate RNG draws are inherently sequential.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DeliveryPath {
    /// Use the chunked branch-free kernel with batched loss draws
    /// whenever the propagation model is deterministic (the default).
    #[default]
    Auto,
    /// Always use the per-candidate scalar stage (reference
    /// behavior).
    Scalar,
}

impl DeliveryPath {
    /// `true` for the default auto path (used to keep the field out
    /// of serialized configs, so config hashes of existing scenarios
    /// are unchanged).
    #[must_use]
    pub fn is_auto(&self) -> bool {
        *self == DeliveryPath::Auto
    }
}

/// Periodic crash-safe checkpointing of long runs (see
/// `run_scenario_checkpointed` and OPERATIONS.md § "Checkpointing and
/// crash recovery").
///
/// When on, a rotated snapshot (`ckpt-<events>.ckpt`) is published
/// atomically roughly every `every_s` *wall-clock* seconds; a crashed
/// run resumes from the newest snapshot that passes its integrity
/// hash and produces byte-identical results. The snapshot *content*
/// is a pure function of `(config, seed, events)` — only the firing
/// instants depend on wall-clock, so checkpointing is an execution
/// knob like `engine` or `scheduler`: off by default, omitted from
/// serialization, and excluded from the snapshot compatibility gate.
///
/// The directory snapshots land in is *not* part of the config — it
/// is an invocation concern (a CLI flag, a sweep-worker path), like
/// trace and result paths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct CheckpointPolicy {
    /// Wall-clock seconds between snapshots; `0` (the default)
    /// disables checkpointing.
    pub every_s: f64,
    /// How many rotated snapshots to keep (newest first). At least
    /// one must be kept when checkpointing is on; two (the default)
    /// survive a crash *during* a snapshot write on filesystems
    /// without atomic rename durability.
    pub keep: u32,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_s: 0.0,
            keep: 2,
        }
    }
}

impl CheckpointPolicy {
    /// `true` when checkpointing is disabled (used to keep the field
    /// out of serialized configs, so config hashes of existing
    /// scenarios are unchanged).
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.every_s == 0.0
    }
}

/// How the periodic in-run Theorem-1 audit reacts to violations
/// (see `mobic-core::invariants`). The audit runs at every sampling
/// instant after warmup and checks the *alive* population's cluster
/// structure against a unit-disk adjacency at the nominal range.
///
/// Note that the distributed protocol violates Theorem 1 *transiently
/// by design* (CCI deferral keeps contending heads adjacent for a
/// while; members hold affiliations until the timeout period expires
/// them), so `Warn` is an observability tool and `Strict` is meant
/// for converged/stationary scenarios where the theorem must hold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AuditMode {
    /// No auditing (the default): zero cost, byte-identical results.
    #[default]
    Off,
    /// Count violations and emit each one as an
    /// `invariant_violation` trace event; the run completes normally.
    Warn,
    /// Abort the run with a structured error (never a panic) at the
    /// first sampling instant that observes any violation.
    Strict,
}

impl AuditMode {
    /// `true` for [`AuditMode::Off`] — used to skip serialization so
    /// pre-audit configs keep their `config_hash`.
    #[must_use]
    pub fn is_off(&self) -> bool {
        *self == AuditMode::Off
    }
}

/// Who a scheduled crash or impairment hits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultTarget {
    /// A uniformly random alive node (drawn from the dedicated
    /// `"faults"` seed stream at fire time).
    #[default]
    Any,
    /// The alive clusterhead with the most alive members (ties broken
    /// by lowest id) — the worst-case crash for cluster healing. If no
    /// clusterhead is alive when the fault fires, it is a no-op.
    Clusterhead,
}

/// A deterministic, seeded node-lifecycle fault plan.
///
/// The plan is *generative*: it says how many faults of each kind to
/// inject inside the window, and the runner derives every fire time
/// and victim from the run's master seed (its own `"faults"` stream,
/// so an empty plan leaves all other random streams — and therefore
/// all existing results — bit-identical). Fault kinds:
///
/// * **crashes** — fail-stop: the node goes silent forever; neighbors
///   expire it naturally after the timeout period.
/// * **recoveries** — crash + revival after
///   [`recovery_after_s`](Self::recovery_after_s): the node comes back
///   with its neighbor table and role state wiped (hello sequence
///   numbers continue, so unexpired neighbor entries accept its first
///   new hellos).
/// * **late joins** — the node is withheld at setup and first powers
///   on at its scheduled join time.
/// * **deaf / mute spells** — one-sided interface impairments lasting
///   [`spell_s`](Self::spell_s): a deaf node's receptions are dropped,
///   a mute node's transmissions are suppressed.
///
/// All fields have serde defaults, so partial plans deserialize and
/// configs from before the field existed load unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultPlan {
    /// Number of permanent fail-stop crashes.
    pub crashes: u32,
    /// Number of crash-with-recovery faults.
    pub recoveries: u32,
    /// Downtime before a recovered node revives, in seconds.
    pub recovery_after_s: f64,
    /// Number of nodes withheld at setup that join mid-run.
    pub late_joins: u32,
    /// Number of deaf (rx-dropped) impairment spells.
    pub deaf_spells: u32,
    /// Number of mute (tx-suppressed) impairment spells.
    pub mute_spells: u32,
    /// Duration of each impairment spell, in seconds.
    pub spell_s: f64,
    /// Injection window start, in seconds.
    pub from_s: f64,
    /// Injection window end, in seconds; `0` means the end of the
    /// simulation.
    pub until_s: f64,
    /// Victim selection policy for crashes, recoveries, and spells
    /// (late-join victims are always drawn uniformly at setup).
    pub target: FaultTarget,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            crashes: 0,
            recoveries: 0,
            recovery_after_s: 10.0,
            late_joins: 0,
            deaf_spells: 0,
            mute_spells: 0,
            spell_s: 5.0,
            from_s: 0.0,
            until_s: 0.0,
            target: FaultTarget::Any,
        }
    }
}

impl FaultPlan {
    /// `true` if the plan schedules nothing. An empty plan is
    /// guaranteed to leave the run bit-identical to a fault-free
    /// build, and is skipped during serialization so pre-fault configs
    /// keep their `config_hash`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.crashes == 0
            && self.recoveries == 0
            && self.late_joins == 0
            && self.deaf_spells == 0
            && self.mute_spells == 0
    }

    /// Total number of scheduled fault *injections* (revivals and
    /// restorations ride along and are not counted).
    #[must_use]
    pub fn injections(&self) -> u32 {
        self.crashes + self.recoveries + self.late_joins + self.deaf_spells + self.mute_spells
    }
}

/// Which packet-loss model applies on top of range filtering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// No loss — the paper's operating point.
    None,
    /// Independent loss with probability `p` per packet.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott burst loss (mildly bursty preset).
    BurstyPreset,
}

/// The full description of one simulation scenario — every knob of
/// the paper's Table 1 plus the extensions.
///
/// Construct via [`ScenarioConfig::paper_table1`] and override fields,
/// or fill the struct directly. Validate (or just call
/// [`run_scenario`](crate::run_scenario), which validates first).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of nodes `N` (Table 1: 50).
    pub n_nodes: u32,
    /// Field width in meters (Table 1: 670 or 1000).
    pub field_w_m: f64,
    /// Field height in meters.
    pub field_h_m: f64,
    /// Maximum node speed in m/s (Table 1: 1, 20, 30).
    pub max_speed_mps: f64,
    /// Minimum node speed in m/s (0 = classic open interval).
    pub min_speed_mps: f64,
    /// Pause time at waypoints in seconds (Table 1: 0, 30).
    pub pause_s: f64,
    /// Nominal transmission range in meters (Table 1: 10–250).
    pub tx_range_m: f64,
    /// Broadcast interval `BI` in seconds (Table 1: 2).
    pub bi_s: f64,
    /// Neighbor timeout period `TP` in seconds (Table 1: 3).
    pub tp_s: f64,
    /// Cluster contention interval `CCI` in seconds (Table 1: 4).
    pub cci_s: f64,
    /// Total simulated time `S` in seconds (Table 1: 900).
    pub sim_time_s: f64,
    /// Measurement warmup: transitions and cluster counts before this
    /// time are excluded from steady-state metrics (the initial
    /// election is not "churn"). Default 20 s.
    pub warmup_s: f64,
    /// Clustering algorithm under test.
    pub algorithm: AlgorithmKind,
    /// Mobility model.
    pub mobility: MobilityKind,
    /// Propagation model.
    pub propagation: PropagationKind,
    /// Packet-loss model.
    pub loss: LossKind,
    /// EWMA history weight for the metric (§5 extension); `None` is
    /// the paper's memoryless metric.
    pub history_alpha: Option<f64>,
    /// Patience before an orphaned undecided node self-elects
    /// (see [`mobic_core::ClusterConfig::undecided_patience`]).
    pub undecided_patience_s: f64,
    /// How pairwise samples fold into `M` (paper: variance about
    /// zero; robust variants are ablation extensions).
    pub metric_aggregation: mobic_core::metric::MetricAggregation,
    /// Metric quantization step in dB² (see
    /// [`mobic_core::ClusterConfig::metric_quantum`]); 0 disables.
    pub metric_quantum: f64,
    /// Mobility-adaptive broadcast interval (§5 extension): when set,
    /// a node's next hello comes after
    /// `clamp(bi · pivot/(pivot + M), adaptive_bi_min_s, bi)` seconds
    /// with `pivot = 2 dB²` — mobile neighborhoods refresh faster,
    /// calm ones stay at the base rate. `0.0` (default) disables
    /// adaptation (the paper's fixed `BI`).
    pub adaptive_bi_min_s: f64,
    /// Hello packet airtime in seconds, enabling a vulnerable-window
    /// MAC collision approximation: a reception arriving within this
    /// time of the previous arrival at the same receiver is destroyed.
    /// `0` (the default) disables collisions — the paper's operating
    /// point ("we only consider transmissions that are successfully
    /// received by the MAC layer"). A 2001-era WaveLAN hello of ~60
    /// bytes at 2 Mb/s is ~0.25 ms.
    pub packet_time_s: f64,
    /// Whether the event loop may use the spatial-index broadcast
    /// fast path. Defaults to [`FastPath::Auto`]; results are
    /// bit-identical either way.
    #[serde(default)]
    pub fast_path: FastPath,
    /// Whether the event loop may skip provably no-op clustering
    /// evaluations. Defaults to [`Recluster::Incremental`]; results
    /// are bit-identical either way.
    #[serde(default)]
    pub recluster: Recluster,
    /// Node-lifecycle fault injection plan. Defaults to the empty
    /// plan, which is bit-identical to a fault-free run and omitted
    /// from serialization (so existing configs keep their
    /// `config_hash`).
    #[serde(default, skip_serializing_if = "FaultPlan::is_empty")]
    pub faults: FaultPlan,
    /// Periodic in-run Theorem-1 invariant auditing. Defaults to
    /// [`AuditMode::Off`] (zero cost, omitted from serialization).
    #[serde(default, skip_serializing_if = "AuditMode::is_off")]
    pub audit: AuditMode,
    /// Which event loop executes the run. Defaults to
    /// [`Engine::Sequential`] (omitted from serialization, so existing
    /// configs keep their `config_hash`); [`Engine::Sharded`] must be
    /// byte-identical and exists purely for wall-clock scaling.
    #[serde(default, skip_serializing_if = "Engine::is_sequential")]
    pub engine: Engine,
    /// Worker-shard count for the sharded engine; `0` (the default,
    /// omitted from serialization) picks a fixed fallback so results
    /// never depend on the host's core count. Ignored by the
    /// sequential engine. Clamped to `[1, n_nodes]` at run time.
    #[serde(default, skip_serializing_if = "shards_is_zero")]
    pub shards: u32,
    /// Which future-event-list structure backs the event loop.
    /// Defaults to [`Scheduler::Heap`] (omitted from serialization, so
    /// existing configs keep their `config_hash`);
    /// [`Scheduler::Calendar`] must be byte-identical and exists
    /// purely for per-event cost.
    #[serde(default, skip_serializing_if = "Scheduler::is_heap")]
    pub scheduler: Scheduler,
    /// Which per-candidate delivery computation broadcasts use.
    /// Defaults to [`DeliveryPath::Auto`] (omitted from serialization,
    /// so existing configs keep their `config_hash`); results are
    /// bit-identical either way.
    #[serde(default, skip_serializing_if = "DeliveryPath::is_auto")]
    pub delivery: DeliveryPath,

    /// Periodic crash-safe checkpointing. Defaults to off (omitted
    /// from serialization, so existing configs keep their
    /// `config_hash`); results are bit-identical either way.
    #[serde(default, skip_serializing_if = "CheckpointPolicy::is_off")]
    pub checkpoint: CheckpointPolicy,
}

/// `skip_serializing_if` helper for [`ScenarioConfig::shards`].
fn shards_is_zero(v: &u32) -> bool {
    *v == 0
}

impl ScenarioConfig {
    /// The paper's primary configuration (Table 1, 670 m × 670 m,
    /// MaxSpeed 20 m/s, PT 0, Tx 250 m, MOBIC).
    #[must_use]
    pub fn paper_table1() -> Self {
        ScenarioConfig {
            n_nodes: 50,
            field_w_m: 670.0,
            field_h_m: 670.0,
            max_speed_mps: 20.0,
            min_speed_mps: 0.0,
            pause_s: 0.0,
            tx_range_m: 250.0,
            bi_s: 2.0,
            tp_s: 3.0,
            cci_s: 4.0,
            sim_time_s: 900.0,
            warmup_s: 20.0,
            algorithm: AlgorithmKind::Mobic,
            mobility: MobilityKind::RandomWaypoint,
            propagation: PropagationKind::FreeSpace,
            loss: LossKind::None,
            history_alpha: None,
            metric_aggregation: mobic_core::metric::MetricAggregation::Var0,
            undecided_patience_s: 4.0,
            metric_quantum: 0.0,
            adaptive_bi_min_s: 0.0,
            packet_time_s: 0.0,
            fast_path: FastPath::Auto,
            recluster: Recluster::Incremental,
            faults: FaultPlan::default(),
            audit: AuditMode::Off,
            engine: Engine::Sequential,
            shards: 0,
            scheduler: Scheduler::Heap,
            delivery: DeliveryPath::Auto,
            checkpoint: CheckpointPolicy::default(),
        }
    }

    /// The §4.3 sparse variant: same as
    /// [`paper_table1`](Self::paper_table1) but on the 1000 m × 1000 m
    /// field.
    #[must_use]
    pub fn paper_sparse() -> Self {
        ScenarioConfig {
            field_w_m: 1000.0,
            field_h_m: 1000.0,
            ..Self::paper_table1()
        }
    }

    /// Returns the config with a different algorithm (sweep helper).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns the config with a different transmission range (sweep
    /// helper).
    #[must_use]
    pub fn with_tx_range(mut self, tx_range_m: f64) -> Self {
        self.tx_range_m = tx_range_m;
        self
    }

    /// Checks every parameter for sanity.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        use ConfigError::*;
        if self.n_nodes == 0 {
            return Err(NoNodes);
        }
        for (name, v) in [
            ("field_w_m", self.field_w_m),
            ("field_h_m", self.field_h_m),
            ("tx_range_m", self.tx_range_m),
            ("bi_s", self.bi_s),
            ("tp_s", self.tp_s),
            ("sim_time_s", self.sim_time_s),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(NonPositive {
                    field: name,
                    value: v,
                });
            }
        }
        for (name, v) in [
            ("max_speed_mps", self.max_speed_mps),
            ("min_speed_mps", self.min_speed_mps),
            ("pause_s", self.pause_s),
            ("cci_s", self.cci_s),
            ("warmup_s", self.warmup_s),
            ("undecided_patience_s", self.undecided_patience_s),
            ("metric_quantum", self.metric_quantum),
            ("packet_time_s", self.packet_time_s),
            ("adaptive_bi_min_s", self.adaptive_bi_min_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(Negative {
                    field: name,
                    value: v,
                });
            }
        }
        if self.min_speed_mps > self.max_speed_mps {
            return Err(SpeedRange {
                min: self.min_speed_mps,
                max: self.max_speed_mps,
            });
        }
        if self.tp_s < self.bi_s {
            return Err(TimeoutBelowBroadcast {
                tp: self.tp_s,
                bi: self.bi_s,
            });
        }
        if self.adaptive_bi_min_s > self.bi_s {
            return Err(AdaptiveBiAboveBase {
                min: self.adaptive_bi_min_s,
                bi: self.bi_s,
            });
        }
        if self.warmup_s >= self.sim_time_s {
            return Err(WarmupTooLong {
                warmup: self.warmup_s,
                sim_time: self.sim_time_s,
            });
        }
        match self.mobility {
            MobilityKind::RandomWalk { epoch_s } if epoch_s <= 0.0 => {
                return Err(NonPositive {
                    field: "mobility.epoch_s",
                    value: epoch_s,
                })
            }
            MobilityKind::GaussMarkov { alpha } if !(0.0..=1.0).contains(&alpha) => {
                return Err(UnitInterval {
                    field: "mobility.alpha",
                    value: alpha,
                })
            }
            MobilityKind::Rpgm {
                groups,
                member_radius_m,
            } => {
                if groups == 0 {
                    return Err(NonPositive {
                        field: "mobility.groups",
                        value: 0.0,
                    });
                }
                if !(member_radius_m >= 0.0 && member_radius_m.is_finite()) {
                    return Err(Negative {
                        field: "mobility.member_radius_m",
                        value: member_radius_m,
                    });
                }
            }
            MobilityKind::Highway { lanes: 0, .. } => {
                return Err(NonPositive {
                    field: "mobility.lanes",
                    value: 0.0,
                })
            }
            MobilityKind::ConferenceHall { booths: 0 } => {
                return Err(NonPositive {
                    field: "mobility.booths",
                    value: 0.0,
                })
            }
            MobilityKind::Manhattan { block_m, p_turn } => {
                if !(block_m > 0.0 && block_m.is_finite()) {
                    return Err(NonPositive {
                        field: "mobility.block_m",
                        value: block_m,
                    });
                }
                if !(0.0..=1.0).contains(&p_turn) {
                    return Err(UnitInterval {
                        field: "mobility.p_turn",
                        value: p_turn,
                    });
                }
            }
            _ => {}
        }
        match self.propagation {
            PropagationKind::LogDistance { exponent }
                if !(exponent > 0.0 && exponent.is_finite()) =>
            {
                return Err(NonPositive {
                    field: "propagation.exponent",
                    value: exponent,
                })
            }
            PropagationKind::ShadowedFreeSpace { sigma_db }
                if !(sigma_db >= 0.0 && sigma_db.is_finite()) =>
            {
                return Err(Negative {
                    field: "propagation.sigma_db",
                    value: sigma_db,
                })
            }
            PropagationKind::NakagamiFreeSpace { m } if !(m >= 0.5 && m.is_finite()) => {
                return Err(NonPositive {
                    field: "propagation.m",
                    value: m,
                })
            }
            _ => {}
        }
        if let LossKind::Bernoulli { p } = self.loss {
            if !(0.0..=1.0).contains(&p) {
                return Err(UnitInterval {
                    field: "loss.p",
                    value: p,
                });
            }
        }
        if let Some(alpha) = self.history_alpha {
            if !(0.0..1.0).contains(&alpha) {
                return Err(UnitInterval {
                    field: "history_alpha",
                    value: alpha,
                });
            }
        }
        if self.fast_path == FastPath::On && !self.propagation.is_deterministic() {
            return Err(FastPathUnsupported {
                propagation: self.propagation,
            });
        }
        if !self.faults.is_empty() {
            let fp = &self.faults;
            for (name, v) in [
                ("faults.recovery_after_s", fp.recovery_after_s),
                ("faults.spell_s", fp.spell_s),
                ("faults.from_s", fp.from_s),
                ("faults.until_s", fp.until_s),
            ] {
                if !(v >= 0.0 && v.is_finite()) {
                    return Err(Negative {
                        field: name,
                        value: v,
                    });
                }
            }
            if fp.recoveries > 0 && fp.recovery_after_s == 0.0 {
                return Err(NonPositive {
                    field: "faults.recovery_after_s",
                    value: 0.0,
                });
            }
            if fp.deaf_spells + fp.mute_spells > 0 && fp.spell_s == 0.0 {
                return Err(NonPositive {
                    field: "faults.spell_s",
                    value: 0.0,
                });
            }
            if fp.late_joins > self.n_nodes {
                return Err(TooManyLateJoins {
                    late_joins: fp.late_joins,
                    n_nodes: self.n_nodes,
                });
            }
            let until = if fp.until_s == 0.0 {
                self.sim_time_s
            } else {
                fp.until_s
            };
            if fp.from_s >= until || fp.from_s >= self.sim_time_s {
                return Err(FaultWindowEmpty {
                    from: fp.from_s,
                    until,
                });
            }
        }
        if !(self.checkpoint.every_s >= 0.0 && self.checkpoint.every_s.is_finite()) {
            return Err(Negative {
                field: "checkpoint.every_s",
                value: self.checkpoint.every_s,
            });
        }
        if !self.checkpoint.is_off() && self.checkpoint.keep == 0 {
            return Err(NonPositive {
                field: "checkpoint.keep",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// A rejected [`ScenarioConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `n_nodes` was zero.
    NoNodes,
    /// A field that must be strictly positive was not.
    NonPositive {
        /// Offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// A field that must be non-negative was negative (or non-finite).
    Negative {
        /// Offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// `min_speed > max_speed`.
    SpeedRange {
        /// Configured minimum speed.
        min: f64,
        /// Configured maximum speed.
        max: f64,
    },
    /// `TP < BI` — every neighbor would expire between hellos.
    TimeoutBelowBroadcast {
        /// Configured timeout period.
        tp: f64,
        /// Configured broadcast interval.
        bi: f64,
    },
    /// The adaptive hello floor exceeds the base broadcast interval.
    AdaptiveBiAboveBase {
        /// Configured adaptive floor.
        min: f64,
        /// Configured base broadcast interval.
        bi: f64,
    },
    /// Warmup does not leave a measurement window.
    WarmupTooLong {
        /// Configured warmup.
        warmup: f64,
        /// Configured simulation length.
        sim_time: f64,
    },
    /// A probability/fraction field left `[0, 1]`.
    UnitInterval {
        /// Offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// `fast_path: On` with a stochastic propagation model — the
    /// indexed path would miss receivers beyond the nominal range.
    FastPathUnsupported {
        /// The offending propagation model.
        propagation: PropagationKind,
    },
    /// The fault plan withholds more late-joiners than there are
    /// nodes.
    TooManyLateJoins {
        /// Configured number of late joins.
        late_joins: u32,
        /// Configured population size.
        n_nodes: u32,
    },
    /// The fault-injection window contains no time: `from_s` is at or
    /// past the effective window end (or past the simulation end).
    FaultWindowEmpty {
        /// Configured window start.
        from: f64,
        /// Effective window end (`until_s`, or `sim_time_s` when
        /// `until_s` is 0).
        until: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "scenario needs at least one node"),
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be non-negative and finite, got {value}")
            }
            ConfigError::SpeedRange { min, max } => {
                write!(f, "min speed {min} exceeds max speed {max}")
            }
            ConfigError::TimeoutBelowBroadcast { tp, bi } => write!(
                f,
                "timeout period {tp} s below broadcast interval {bi} s: neighbors would always expire"
            ),
            ConfigError::AdaptiveBiAboveBase { min, bi } => write!(
                f,
                "adaptive hello floor {min} s exceeds the base broadcast interval {bi} s"
            ),
            ConfigError::WarmupTooLong { warmup, sim_time } => write!(
                f,
                "warmup {warmup} s leaves no measurement window in {sim_time} s"
            ),
            ConfigError::UnitInterval { field, value } => {
                write!(f, "{field} must lie in [0, 1], got {value}")
            }
            ConfigError::FastPathUnsupported { propagation } => write!(
                f,
                "fast_path: On requires a deterministic propagation model, got {propagation:?}"
            ),
            ConfigError::TooManyLateJoins { late_joins, n_nodes } => write!(
                f,
                "faults.late_joins {late_joins} exceeds the population of {n_nodes} nodes"
            ),
            ConfigError::FaultWindowEmpty { from, until } => write!(
                f,
                "fault window [{from} s, {until} s) contains no simulated time"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        assert_eq!(ScenarioConfig::paper_table1().validate(), Ok(()));
        assert_eq!(ScenarioConfig::paper_sparse().validate(), Ok(()));
    }

    #[test]
    fn paper_table1_matches_paper() {
        let c = ScenarioConfig::paper_table1();
        assert_eq!(c.n_nodes, 50);
        assert_eq!((c.field_w_m, c.field_h_m), (670.0, 670.0));
        assert_eq!(c.bi_s, 2.0);
        assert_eq!(c.tp_s, 3.0);
        assert_eq!(c.cci_s, 4.0);
        assert_eq!(c.sim_time_s, 900.0);
        let sparse = ScenarioConfig::paper_sparse();
        assert_eq!((sparse.field_w_m, sparse.field_h_m), (1000.0, 1000.0));
    }

    #[test]
    fn builder_helpers() {
        let c = ScenarioConfig::paper_table1()
            .with_algorithm(AlgorithmKind::Lcc)
            .with_tx_range(100.0);
        assert_eq!(c.algorithm, AlgorithmKind::Lcc);
        assert_eq!(c.tx_range_m, 100.0);
    }

    #[test]
    fn rejects_zero_nodes() {
        let mut c = ScenarioConfig::paper_table1();
        c.n_nodes = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoNodes));
    }

    #[test]
    fn rejects_bad_speed_range() {
        let mut c = ScenarioConfig::paper_table1();
        c.min_speed_mps = 25.0;
        assert!(matches!(c.validate(), Err(ConfigError::SpeedRange { .. })));
    }

    #[test]
    fn rejects_tp_below_bi() {
        let mut c = ScenarioConfig::paper_table1();
        c.tp_s = 1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::TimeoutBelowBroadcast { .. })
        ));
    }

    #[test]
    fn rejects_warmup_overrun() {
        let mut c = ScenarioConfig::paper_table1();
        c.warmup_s = 900.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::WarmupTooLong { .. })
        ));
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut c = ScenarioConfig::paper_table1();
        c.loss = LossKind::Bernoulli { p: 1.5 };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::UnitInterval { .. })
        ));
        let mut c = ScenarioConfig::paper_table1();
        c.history_alpha = Some(1.0);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::UnitInterval { .. })
        ));
    }

    #[test]
    fn rejects_bad_mobility_params() {
        let mut c = ScenarioConfig::paper_table1();
        c.mobility = MobilityKind::Rpgm {
            groups: 0,
            member_radius_m: 10.0,
        };
        assert!(c.validate().is_err());
        c.mobility = MobilityKind::GaussMarkov { alpha: 2.0 };
        assert!(c.validate().is_err());
        c.mobility = MobilityKind::Highway {
            lanes: 0,
            bidirectional: true,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_non_finite_fields() {
        let mut c = ScenarioConfig::paper_table1();
        c.tx_range_m = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::paper_table1();
        c.field_w_m = f64::INFINITY;
        assert!(c.validate().is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ConfigError::TimeoutBelowBroadcast { tp: 1.0, bi: 2.0 };
        assert!(e.to_string().contains("timeout"));
        let e = ConfigError::UnitInterval {
            field: "loss.p",
            value: 2.0,
        };
        assert!(e.to_string().contains("loss.p"));
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = ScenarioConfig::paper_table1();
        let json = serde_json::to_string(&c).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn fast_path_defaults_to_auto_and_deserializes_when_absent() {
        assert_eq!(ScenarioConfig::paper_table1().fast_path, FastPath::Auto);
        // Configs serialized before the field existed must still load.
        let mut json: serde_json::Value =
            serde_json::to_value(ScenarioConfig::paper_table1()).unwrap();
        json.as_object_mut().unwrap().remove("fast_path");
        let back: ScenarioConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back.fast_path, FastPath::Auto);
    }

    #[test]
    fn recluster_defaults_to_incremental_and_deserializes_when_absent() {
        assert_eq!(
            ScenarioConfig::paper_table1().recluster,
            Recluster::Incremental
        );
        // Configs serialized before the field existed must still load.
        let mut json: serde_json::Value =
            serde_json::to_value(ScenarioConfig::paper_table1()).unwrap();
        json.as_object_mut().unwrap().remove("recluster");
        let back: ScenarioConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back.recluster, Recluster::Incremental);
    }

    #[test]
    fn faults_and_audit_default_off_and_deserialize_when_absent() {
        let c = ScenarioConfig::paper_table1();
        assert!(c.faults.is_empty());
        assert_eq!(c.audit, AuditMode::Off);
        // Configs serialized before the fields existed must still load.
        let mut json: serde_json::Value = serde_json::to_value(c).unwrap();
        let obj = json.as_object_mut().unwrap();
        assert!(
            !obj.contains_key("faults") && !obj.contains_key("audit"),
            "inert fields must not be serialized (config_hash stability)"
        );
        obj.remove("faults");
        obj.remove("audit");
        let back: ScenarioConfig = serde_json::from_value(json).unwrap();
        assert!(back.faults.is_empty());
        assert_eq!(back.audit, AuditMode::Off);
        assert_eq!(back, c);
    }

    #[test]
    fn engine_defaults_sequential_and_deserializes_when_absent() {
        let c = ScenarioConfig::paper_table1();
        assert_eq!(c.engine, Engine::Sequential);
        assert!(c.engine.is_sequential());
        assert_eq!(c.shards, 0);
        // Configs serialized before the fields existed must still load,
        // and the defaults must stay invisible to serialization so the
        // config_hash of every existing scenario is unchanged.
        let mut json: serde_json::Value = serde_json::to_value(c).unwrap();
        let obj = json.as_object_mut().unwrap();
        assert!(
            !obj.contains_key("engine") && !obj.contains_key("shards"),
            "default engine fields must not be serialized (config_hash stability)"
        );
        obj.remove("engine");
        obj.remove("shards");
        let back: ScenarioConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back.engine, Engine::Sequential);
        assert_eq!(back.shards, 0);
        assert_eq!(back, c);
    }

    #[test]
    fn sharded_engine_round_trips_in_snake_case() {
        let mut c = ScenarioConfig::paper_table1();
        c.engine = Engine::Sharded;
        c.shards = 4;
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains(r#""engine":"sharded""#), "{json}");
        assert!(json.contains(r#""shards":4"#), "{json}");
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        assert!(!back.engine.is_sequential());
        c.validate().unwrap();
    }

    #[test]
    fn scheduler_and_delivery_default_and_deserialize_when_absent() {
        let c = ScenarioConfig::paper_table1();
        assert_eq!(c.scheduler, Scheduler::Heap);
        assert!(c.scheduler.is_heap());
        assert_eq!(c.delivery, DeliveryPath::Auto);
        assert!(c.delivery.is_auto());
        // Configs serialized before the fields existed must still load,
        // and the defaults must stay invisible to serialization so the
        // config_hash of every existing scenario is unchanged.
        let mut json: serde_json::Value = serde_json::to_value(c).unwrap();
        let obj = json.as_object_mut().unwrap();
        assert!(
            !obj.contains_key("scheduler") && !obj.contains_key("delivery"),
            "default microarchitecture fields must not be serialized (config_hash stability)"
        );
        obj.remove("scheduler");
        obj.remove("delivery");
        let back: ScenarioConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back.scheduler, Scheduler::Heap);
        assert_eq!(back.delivery, DeliveryPath::Auto);
        assert_eq!(back, c);
    }

    #[test]
    fn checkpoint_defaults_off_and_deserializes_when_absent() {
        let c = ScenarioConfig::paper_table1();
        assert!(c.checkpoint.is_off());
        assert_eq!(c.checkpoint, CheckpointPolicy::default());
        // Configs serialized before the field existed must still load,
        // and the off default must stay invisible to serialization so
        // the config_hash of every existing scenario is unchanged.
        let mut json: serde_json::Value = serde_json::to_value(c).unwrap();
        let obj = json.as_object_mut().unwrap();
        assert!(
            !obj.contains_key("checkpoint"),
            "default checkpoint policy must not be serialized (config_hash stability)"
        );
        obj.remove("checkpoint");
        let back: ScenarioConfig = serde_json::from_value(json).unwrap();
        assert!(back.checkpoint.is_off());
        assert_eq!(back, c);
    }

    #[test]
    fn checkpoint_round_trips_and_validates() {
        let mut c = ScenarioConfig::paper_table1();
        c.checkpoint = CheckpointPolicy {
            every_s: 30.0,
            keep: 3,
        };
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains(r#""checkpoint""#), "{json}");
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        c.validate().unwrap();

        c.checkpoint.keep = 0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                field: "checkpoint.keep",
                ..
            })
        ));
        c.checkpoint = CheckpointPolicy {
            every_s: -1.0,
            keep: 2,
        };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::Negative {
                field: "checkpoint.every_s",
                ..
            })
        ));
        // keep is ignored while checkpointing is off.
        c.checkpoint = CheckpointPolicy {
            every_s: 0.0,
            keep: 0,
        };
        c.validate().unwrap();
    }

    #[test]
    fn calendar_scheduler_round_trips_in_snake_case() {
        let mut c = ScenarioConfig::paper_table1();
        c.scheduler = Scheduler::Calendar;
        c.delivery = DeliveryPath::Scalar;
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains(r#""scheduler":"calendar""#), "{json}");
        assert!(json.contains(r#""delivery":"scalar""#), "{json}");
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        assert!(!back.scheduler.is_heap());
        assert!(!back.delivery.is_auto());
        c.validate().unwrap();
    }

    #[test]
    fn partial_fault_plans_deserialize_with_field_defaults() {
        let json = r#"{"crashes": 2, "target": "clusterhead"}"#;
        let plan: FaultPlan = serde_json::from_str(json).unwrap();
        assert_eq!(plan.crashes, 2);
        assert_eq!(plan.target, FaultTarget::Clusterhead);
        assert_eq!(plan.recoveries, 0);
        assert_eq!(plan.recovery_after_s, 10.0);
        assert!(!plan.is_empty());
        assert_eq!(plan.injections(), 2);
    }

    #[test]
    fn non_empty_fault_plans_round_trip_through_config_json() {
        let mut c = ScenarioConfig::paper_table1();
        c.faults.crashes = 3;
        c.faults.from_s = 30.0;
        c.audit = AuditMode::Warn;
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("\"faults\""), "{json}");
        assert!(json.contains("\"audit\""), "{json}");
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn validates_fault_plans() {
        let base = ScenarioConfig::paper_table1();

        let mut c = base;
        c.faults.recoveries = 1;
        c.faults.recovery_after_s = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                field: "faults.recovery_after_s",
                ..
            })
        ));

        let mut c = base;
        c.faults.deaf_spells = 1;
        c.faults.spell_s = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                field: "faults.spell_s",
                ..
            })
        ));

        let mut c = base;
        c.faults.late_joins = c.n_nodes + 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::TooManyLateJoins { .. })
        ));

        let mut c = base;
        c.faults.crashes = 1;
        c.faults.from_s = 1000.0; // past sim end
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FaultWindowEmpty { .. })
        ));

        let mut c = base;
        c.faults.crashes = 1;
        c.faults.from_s = 50.0;
        c.faults.until_s = 40.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FaultWindowEmpty { .. })
        ));

        let mut c = base;
        c.faults.crashes = 1;
        c.faults.recovery_after_s = f64::NAN;
        assert!(matches!(c.validate(), Err(ConfigError::Negative { .. })));

        // A sane plan validates; an empty plan never blocks validation
        // even with nonsense durations (the plan is inert).
        let mut c = base;
        c.faults.crashes = 2;
        c.faults.recoveries = 1;
        c.faults.late_joins = 3;
        c.faults.from_s = 30.0;
        assert_eq!(c.validate(), Ok(()));
        let mut c = base;
        c.faults.spell_s = 0.0;
        assert_eq!(c.validate(), Ok(()));
        assert!(ConfigError::FaultWindowEmpty {
            from: 5.0,
            until: 4.0
        }
        .to_string()
        .contains("fault window"));
    }

    #[test]
    fn propagation_determinism_mirrors_runtime_flags() {
        assert!(PropagationKind::FreeSpace.is_deterministic());
        assert!(PropagationKind::TwoRayGround.is_deterministic());
        assert!(PropagationKind::LogDistance { exponent: 3.0 }.is_deterministic());
        assert!(PropagationKind::ShadowedFreeSpace { sigma_db: 0.0 }.is_deterministic());
        assert!(!PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 }.is_deterministic());
        assert!(!PropagationKind::NakagamiFreeSpace { m: 3.0 }.is_deterministic());
    }

    #[test]
    fn rejects_forced_fast_path_with_stochastic_propagation() {
        let mut c = ScenarioConfig::paper_table1();
        c.fast_path = FastPath::On;
        assert_eq!(c.validate(), Ok(()));
        c.propagation = PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FastPathUnsupported { .. })
        ));
        // Auto silently falls back instead of erroring.
        c.fast_path = FastPath::Auto;
        assert_eq!(c.validate(), Ok(()));
        let e = ConfigError::FastPathUnsupported {
            propagation: PropagationKind::NakagamiFreeSpace { m: 3.0 },
        };
        assert!(e.to_string().contains("deterministic"));
    }
}
