//! Scenario configuration (the paper's Table 1) and validation.

use std::error::Error;
use std::fmt;

use mobic_core::AlgorithmKind;
use serde::{Deserialize, Serialize};

/// Which mobility model drives the nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MobilityKind {
    /// Random waypoint (the paper's model) with the config's speed
    /// range and pause time.
    RandomWaypoint,
    /// Boundary-reflecting random walk with the given epoch length.
    RandomWalk {
        /// Seconds between direction changes.
        epoch_s: f64,
    },
    /// Gauss–Markov with the given memory parameter.
    GaussMarkov {
        /// Velocity memory `α ∈ [0, 1]`.
        alpha: f64,
    },
    /// Reference Point Group Mobility: nodes split evenly into
    /// `groups` groups whose centers do random waypoint.
    Rpgm {
        /// Number of groups (≥ 1).
        groups: u32,
        /// Maximum member displacement from the group reference (m).
        member_radius_m: f64,
    },
    /// Highway convoys (§5): lanes along the x axis, speeds around
    /// the config's `max_speed_mps`.
    Highway {
        /// Number of lanes (≥ 1).
        lanes: u32,
        /// Two-way traffic (alternating lane directions) vs a one-way
        /// convoy road.
        bidirectional: bool,
    },
    /// Conference hall (§5): booth-hopping pedestrians; speeds capped
    /// at walking pace regardless of `max_speed_mps`.
    ConferenceHall {
        /// Number of booths (≥ 1).
        booths: u32,
    },
    /// Manhattan street grid with the given block size; vehicles use
    /// the config's speed range.
    Manhattan {
        /// Block (street spacing) size in meters.
        block_m: f64,
        /// Turn probability at intersections, in `[0, 1]`.
        p_turn: f64,
    },
    /// No motion at all (placement only) — useful for convergence
    /// tests and as the zero-mobility control.
    Stationary,
}

/// Which propagation model the radio uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PropagationKind {
    /// Friis free space (`1/d²`) — the paper's §3.1 assumption and
    /// our default.
    FreeSpace,
    /// ns-2's two-ray ground model (Friis below the crossover
    /// distance, `1/d⁴` beyond).
    TwoRayGround,
    /// Log-distance with the given path-loss exponent.
    LogDistance {
        /// Path-loss exponent (2 = free space, 4 ≈ obstructed).
        exponent: f64,
    },
    /// Free space plus log-normal shadowing of the given σ (dB) —
    /// the robustness extension the paper excludes.
    ShadowedFreeSpace {
        /// Shadowing standard deviation in dB.
        sigma_db: f64,
    },
    /// Free space plus Nakagami-m fast fading (m = 1 is Rayleigh).
    NakagamiFreeSpace {
        /// Fading figure `m ≥ 0.5`; larger = calmer channel.
        m: f64,
    },
}

impl PropagationKind {
    /// Whether the configured model's path loss is a pure function of
    /// distance (see [`mobic_radio::Propagation::is_deterministic`]).
    /// Mirrors the runtime capability so configs can be validated
    /// without instantiating a radio.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        match *self {
            PropagationKind::FreeSpace
            | PropagationKind::TwoRayGround
            | PropagationKind::LogDistance { .. } => true,
            // σ = 0 shadowing degenerates to plain free space.
            PropagationKind::ShadowedFreeSpace { sigma_db } => sigma_db == 0.0,
            PropagationKind::NakagamiFreeSpace { .. } => false,
        }
    }
}

/// Whether the scenario runner may use the spatial-index broadcast
/// fast path (see `run_scenario`'s module docs for the contract).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FastPath {
    /// Use the indexed path whenever the propagation model is
    /// deterministic, otherwise fall back to the brute-force scan.
    /// The default: always correct, fast when possible.
    #[default]
    Auto,
    /// Require the indexed path; [`ScenarioConfig::validate`] rejects
    /// the config if the propagation model is stochastic.
    On,
    /// Always use the brute-force scan (reference behavior).
    Off,
}

/// Whether the scenario runner may skip clustering evaluations it can
/// prove are no-ops (dirty-set incremental reclustering).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recluster {
    /// Skip a node's election when its neighbor table is unchanged
    /// since the last evaluation and its state machine is provably
    /// time-independent in its current role. The default: results are
    /// bit-identical to `Full`, just cheaper.
    #[default]
    Incremental,
    /// Run every election unconditionally (reference behavior).
    Full,
}

/// Which packet-loss model applies on top of range filtering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// No loss — the paper's operating point.
    None,
    /// Independent loss with probability `p` per packet.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Gilbert–Elliott burst loss (mildly bursty preset).
    BurstyPreset,
}

/// The full description of one simulation scenario — every knob of
/// the paper's Table 1 plus the extensions.
///
/// Construct via [`ScenarioConfig::paper_table1`] and override fields,
/// or fill the struct directly. Validate (or just call
/// [`run_scenario`](crate::run_scenario), which validates first).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of nodes `N` (Table 1: 50).
    pub n_nodes: u32,
    /// Field width in meters (Table 1: 670 or 1000).
    pub field_w_m: f64,
    /// Field height in meters.
    pub field_h_m: f64,
    /// Maximum node speed in m/s (Table 1: 1, 20, 30).
    pub max_speed_mps: f64,
    /// Minimum node speed in m/s (0 = classic open interval).
    pub min_speed_mps: f64,
    /// Pause time at waypoints in seconds (Table 1: 0, 30).
    pub pause_s: f64,
    /// Nominal transmission range in meters (Table 1: 10–250).
    pub tx_range_m: f64,
    /// Broadcast interval `BI` in seconds (Table 1: 2).
    pub bi_s: f64,
    /// Neighbor timeout period `TP` in seconds (Table 1: 3).
    pub tp_s: f64,
    /// Cluster contention interval `CCI` in seconds (Table 1: 4).
    pub cci_s: f64,
    /// Total simulated time `S` in seconds (Table 1: 900).
    pub sim_time_s: f64,
    /// Measurement warmup: transitions and cluster counts before this
    /// time are excluded from steady-state metrics (the initial
    /// election is not "churn"). Default 20 s.
    pub warmup_s: f64,
    /// Clustering algorithm under test.
    pub algorithm: AlgorithmKind,
    /// Mobility model.
    pub mobility: MobilityKind,
    /// Propagation model.
    pub propagation: PropagationKind,
    /// Packet-loss model.
    pub loss: LossKind,
    /// EWMA history weight for the metric (§5 extension); `None` is
    /// the paper's memoryless metric.
    pub history_alpha: Option<f64>,
    /// Patience before an orphaned undecided node self-elects
    /// (see [`mobic_core::ClusterConfig::undecided_patience`]).
    pub undecided_patience_s: f64,
    /// How pairwise samples fold into `M` (paper: variance about
    /// zero; robust variants are ablation extensions).
    pub metric_aggregation: mobic_core::metric::MetricAggregation,
    /// Metric quantization step in dB² (see
    /// [`mobic_core::ClusterConfig::metric_quantum`]); 0 disables.
    pub metric_quantum: f64,
    /// Mobility-adaptive broadcast interval (§5 extension): when set,
    /// a node's next hello comes after
    /// `clamp(bi · pivot/(pivot + M), adaptive_bi_min_s, bi)` seconds
    /// with `pivot = 2 dB²` — mobile neighborhoods refresh faster,
    /// calm ones stay at the base rate. `0.0` (default) disables
    /// adaptation (the paper's fixed `BI`).
    pub adaptive_bi_min_s: f64,
    /// Hello packet airtime in seconds, enabling a vulnerable-window
    /// MAC collision approximation: a reception arriving within this
    /// time of the previous arrival at the same receiver is destroyed.
    /// `0` (the default) disables collisions — the paper's operating
    /// point ("we only consider transmissions that are successfully
    /// received by the MAC layer"). A 2001-era WaveLAN hello of ~60
    /// bytes at 2 Mb/s is ~0.25 ms.
    pub packet_time_s: f64,
    /// Whether the event loop may use the spatial-index broadcast
    /// fast path. Defaults to [`FastPath::Auto`]; results are
    /// bit-identical either way.
    #[serde(default)]
    pub fast_path: FastPath,
    /// Whether the event loop may skip provably no-op clustering
    /// evaluations. Defaults to [`Recluster::Incremental`]; results
    /// are bit-identical either way.
    #[serde(default)]
    pub recluster: Recluster,
}

impl ScenarioConfig {
    /// The paper's primary configuration (Table 1, 670 m × 670 m,
    /// MaxSpeed 20 m/s, PT 0, Tx 250 m, MOBIC).
    #[must_use]
    pub fn paper_table1() -> Self {
        ScenarioConfig {
            n_nodes: 50,
            field_w_m: 670.0,
            field_h_m: 670.0,
            max_speed_mps: 20.0,
            min_speed_mps: 0.0,
            pause_s: 0.0,
            tx_range_m: 250.0,
            bi_s: 2.0,
            tp_s: 3.0,
            cci_s: 4.0,
            sim_time_s: 900.0,
            warmup_s: 20.0,
            algorithm: AlgorithmKind::Mobic,
            mobility: MobilityKind::RandomWaypoint,
            propagation: PropagationKind::FreeSpace,
            loss: LossKind::None,
            history_alpha: None,
            metric_aggregation: mobic_core::metric::MetricAggregation::Var0,
            undecided_patience_s: 4.0,
            metric_quantum: 0.0,
            adaptive_bi_min_s: 0.0,
            packet_time_s: 0.0,
            fast_path: FastPath::Auto,
            recluster: Recluster::Incremental,
        }
    }

    /// The §4.3 sparse variant: same as
    /// [`paper_table1`](Self::paper_table1) but on the 1000 m × 1000 m
    /// field.
    #[must_use]
    pub fn paper_sparse() -> Self {
        ScenarioConfig {
            field_w_m: 1000.0,
            field_h_m: 1000.0,
            ..Self::paper_table1()
        }
    }

    /// Returns the config with a different algorithm (sweep helper).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Returns the config with a different transmission range (sweep
    /// helper).
    #[must_use]
    pub fn with_tx_range(mut self, tx_range_m: f64) -> Self {
        self.tx_range_m = tx_range_m;
        self
    }

    /// Checks every parameter for sanity.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        use ConfigError::*;
        if self.n_nodes == 0 {
            return Err(NoNodes);
        }
        for (name, v) in [
            ("field_w_m", self.field_w_m),
            ("field_h_m", self.field_h_m),
            ("tx_range_m", self.tx_range_m),
            ("bi_s", self.bi_s),
            ("tp_s", self.tp_s),
            ("sim_time_s", self.sim_time_s),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(NonPositive {
                    field: name,
                    value: v,
                });
            }
        }
        for (name, v) in [
            ("max_speed_mps", self.max_speed_mps),
            ("min_speed_mps", self.min_speed_mps),
            ("pause_s", self.pause_s),
            ("cci_s", self.cci_s),
            ("warmup_s", self.warmup_s),
            ("undecided_patience_s", self.undecided_patience_s),
            ("metric_quantum", self.metric_quantum),
            ("packet_time_s", self.packet_time_s),
            ("adaptive_bi_min_s", self.adaptive_bi_min_s),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(Negative {
                    field: name,
                    value: v,
                });
            }
        }
        if self.min_speed_mps > self.max_speed_mps {
            return Err(SpeedRange {
                min: self.min_speed_mps,
                max: self.max_speed_mps,
            });
        }
        if self.tp_s < self.bi_s {
            return Err(TimeoutBelowBroadcast {
                tp: self.tp_s,
                bi: self.bi_s,
            });
        }
        if self.adaptive_bi_min_s > self.bi_s {
            return Err(AdaptiveBiAboveBase {
                min: self.adaptive_bi_min_s,
                bi: self.bi_s,
            });
        }
        if self.warmup_s >= self.sim_time_s {
            return Err(WarmupTooLong {
                warmup: self.warmup_s,
                sim_time: self.sim_time_s,
            });
        }
        match self.mobility {
            MobilityKind::RandomWalk { epoch_s } if epoch_s <= 0.0 => {
                return Err(NonPositive {
                    field: "mobility.epoch_s",
                    value: epoch_s,
                })
            }
            MobilityKind::GaussMarkov { alpha } if !(0.0..=1.0).contains(&alpha) => {
                return Err(UnitInterval {
                    field: "mobility.alpha",
                    value: alpha,
                })
            }
            MobilityKind::Rpgm { groups, member_radius_m } => {
                if groups == 0 {
                    return Err(NonPositive {
                        field: "mobility.groups",
                        value: 0.0,
                    });
                }
                if !(member_radius_m >= 0.0 && member_radius_m.is_finite()) {
                    return Err(Negative {
                        field: "mobility.member_radius_m",
                        value: member_radius_m,
                    });
                }
            }
            MobilityKind::Highway { lanes: 0, .. } => {
                return Err(NonPositive {
                    field: "mobility.lanes",
                    value: 0.0,
                })
            }
            MobilityKind::ConferenceHall { booths: 0 } => {
                return Err(NonPositive {
                    field: "mobility.booths",
                    value: 0.0,
                })
            }
            MobilityKind::Manhattan { block_m, p_turn } => {
                if !(block_m > 0.0 && block_m.is_finite()) {
                    return Err(NonPositive {
                        field: "mobility.block_m",
                        value: block_m,
                    });
                }
                if !(0.0..=1.0).contains(&p_turn) {
                    return Err(UnitInterval {
                        field: "mobility.p_turn",
                        value: p_turn,
                    });
                }
            }
            _ => {}
        }
        match self.propagation {
            PropagationKind::LogDistance { exponent } if !(exponent > 0.0 && exponent.is_finite()) => {
                return Err(NonPositive {
                    field: "propagation.exponent",
                    value: exponent,
                })
            }
            PropagationKind::ShadowedFreeSpace { sigma_db }
                if !(sigma_db >= 0.0 && sigma_db.is_finite()) =>
            {
                return Err(Negative {
                    field: "propagation.sigma_db",
                    value: sigma_db,
                })
            }
            PropagationKind::NakagamiFreeSpace { m } if !(m >= 0.5 && m.is_finite()) => {
                return Err(NonPositive {
                    field: "propagation.m",
                    value: m,
                })
            }
            _ => {}
        }
        if let LossKind::Bernoulli { p } = self.loss {
            if !(0.0..=1.0).contains(&p) {
                return Err(UnitInterval {
                    field: "loss.p",
                    value: p,
                });
            }
        }
        if let Some(alpha) = self.history_alpha {
            if !(0.0..1.0).contains(&alpha) {
                return Err(UnitInterval {
                    field: "history_alpha",
                    value: alpha,
                });
            }
        }
        if self.fast_path == FastPath::On && !self.propagation.is_deterministic() {
            return Err(FastPathUnsupported {
                propagation: self.propagation,
            });
        }
        Ok(())
    }
}

/// A rejected [`ScenarioConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `n_nodes` was zero.
    NoNodes,
    /// A field that must be strictly positive was not.
    NonPositive {
        /// Offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// A field that must be non-negative was negative (or non-finite).
    Negative {
        /// Offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// `min_speed > max_speed`.
    SpeedRange {
        /// Configured minimum speed.
        min: f64,
        /// Configured maximum speed.
        max: f64,
    },
    /// `TP < BI` — every neighbor would expire between hellos.
    TimeoutBelowBroadcast {
        /// Configured timeout period.
        tp: f64,
        /// Configured broadcast interval.
        bi: f64,
    },
    /// The adaptive hello floor exceeds the base broadcast interval.
    AdaptiveBiAboveBase {
        /// Configured adaptive floor.
        min: f64,
        /// Configured base broadcast interval.
        bi: f64,
    },
    /// Warmup does not leave a measurement window.
    WarmupTooLong {
        /// Configured warmup.
        warmup: f64,
        /// Configured simulation length.
        sim_time: f64,
    },
    /// A probability/fraction field left `[0, 1]`.
    UnitInterval {
        /// Offending field.
        field: &'static str,
        /// Its value.
        value: f64,
    },
    /// `fast_path: On` with a stochastic propagation model — the
    /// indexed path would miss receivers beyond the nominal range.
    FastPathUnsupported {
        /// The offending propagation model.
        propagation: PropagationKind,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "scenario needs at least one node"),
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be positive, got {value}")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be non-negative and finite, got {value}")
            }
            ConfigError::SpeedRange { min, max } => {
                write!(f, "min speed {min} exceeds max speed {max}")
            }
            ConfigError::TimeoutBelowBroadcast { tp, bi } => write!(
                f,
                "timeout period {tp} s below broadcast interval {bi} s: neighbors would always expire"
            ),
            ConfigError::AdaptiveBiAboveBase { min, bi } => write!(
                f,
                "adaptive hello floor {min} s exceeds the base broadcast interval {bi} s"
            ),
            ConfigError::WarmupTooLong { warmup, sim_time } => write!(
                f,
                "warmup {warmup} s leaves no measurement window in {sim_time} s"
            ),
            ConfigError::UnitInterval { field, value } => {
                write!(f, "{field} must lie in [0, 1], got {value}")
            }
            ConfigError::FastPathUnsupported { propagation } => write!(
                f,
                "fast_path: On requires a deterministic propagation model, got {propagation:?}"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        assert_eq!(ScenarioConfig::paper_table1().validate(), Ok(()));
        assert_eq!(ScenarioConfig::paper_sparse().validate(), Ok(()));
    }

    #[test]
    fn paper_table1_matches_paper() {
        let c = ScenarioConfig::paper_table1();
        assert_eq!(c.n_nodes, 50);
        assert_eq!((c.field_w_m, c.field_h_m), (670.0, 670.0));
        assert_eq!(c.bi_s, 2.0);
        assert_eq!(c.tp_s, 3.0);
        assert_eq!(c.cci_s, 4.0);
        assert_eq!(c.sim_time_s, 900.0);
        let sparse = ScenarioConfig::paper_sparse();
        assert_eq!((sparse.field_w_m, sparse.field_h_m), (1000.0, 1000.0));
    }

    #[test]
    fn builder_helpers() {
        let c = ScenarioConfig::paper_table1()
            .with_algorithm(AlgorithmKind::Lcc)
            .with_tx_range(100.0);
        assert_eq!(c.algorithm, AlgorithmKind::Lcc);
        assert_eq!(c.tx_range_m, 100.0);
    }

    #[test]
    fn rejects_zero_nodes() {
        let mut c = ScenarioConfig::paper_table1();
        c.n_nodes = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoNodes));
    }

    #[test]
    fn rejects_bad_speed_range() {
        let mut c = ScenarioConfig::paper_table1();
        c.min_speed_mps = 25.0;
        assert!(matches!(c.validate(), Err(ConfigError::SpeedRange { .. })));
    }

    #[test]
    fn rejects_tp_below_bi() {
        let mut c = ScenarioConfig::paper_table1();
        c.tp_s = 1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::TimeoutBelowBroadcast { .. })
        ));
    }

    #[test]
    fn rejects_warmup_overrun() {
        let mut c = ScenarioConfig::paper_table1();
        c.warmup_s = 900.0;
        assert!(matches!(c.validate(), Err(ConfigError::WarmupTooLong { .. })));
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut c = ScenarioConfig::paper_table1();
        c.loss = LossKind::Bernoulli { p: 1.5 };
        assert!(matches!(c.validate(), Err(ConfigError::UnitInterval { .. })));
        let mut c = ScenarioConfig::paper_table1();
        c.history_alpha = Some(1.0);
        assert!(matches!(c.validate(), Err(ConfigError::UnitInterval { .. })));
    }

    #[test]
    fn rejects_bad_mobility_params() {
        let mut c = ScenarioConfig::paper_table1();
        c.mobility = MobilityKind::Rpgm {
            groups: 0,
            member_radius_m: 10.0,
        };
        assert!(c.validate().is_err());
        c.mobility = MobilityKind::GaussMarkov { alpha: 2.0 };
        assert!(c.validate().is_err());
        c.mobility = MobilityKind::Highway { lanes: 0, bidirectional: true };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_non_finite_fields() {
        let mut c = ScenarioConfig::paper_table1();
        c.tx_range_m = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = ScenarioConfig::paper_table1();
        c.field_w_m = f64::INFINITY;
        assert!(c.validate().is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ConfigError::TimeoutBelowBroadcast { tp: 1.0, bi: 2.0 };
        assert!(e.to_string().contains("timeout"));
        let e = ConfigError::UnitInterval {
            field: "loss.p",
            value: 2.0,
        };
        assert!(e.to_string().contains("loss.p"));
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = ScenarioConfig::paper_table1();
        let json = serde_json::to_string(&c).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn fast_path_defaults_to_auto_and_deserializes_when_absent() {
        assert_eq!(ScenarioConfig::paper_table1().fast_path, FastPath::Auto);
        // Configs serialized before the field existed must still load.
        let mut json: serde_json::Value =
            serde_json::to_value(ScenarioConfig::paper_table1()).unwrap();
        json.as_object_mut().unwrap().remove("fast_path");
        let back: ScenarioConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back.fast_path, FastPath::Auto);
    }

    #[test]
    fn recluster_defaults_to_incremental_and_deserializes_when_absent() {
        assert_eq!(
            ScenarioConfig::paper_table1().recluster,
            Recluster::Incremental
        );
        // Configs serialized before the field existed must still load.
        let mut json: serde_json::Value =
            serde_json::to_value(ScenarioConfig::paper_table1()).unwrap();
        json.as_object_mut().unwrap().remove("recluster");
        let back: ScenarioConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back.recluster, Recluster::Incremental);
    }

    #[test]
    fn propagation_determinism_mirrors_runtime_flags() {
        assert!(PropagationKind::FreeSpace.is_deterministic());
        assert!(PropagationKind::TwoRayGround.is_deterministic());
        assert!(PropagationKind::LogDistance { exponent: 3.0 }.is_deterministic());
        assert!(PropagationKind::ShadowedFreeSpace { sigma_db: 0.0 }.is_deterministic());
        assert!(!PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 }.is_deterministic());
        assert!(!PropagationKind::NakagamiFreeSpace { m: 3.0 }.is_deterministic());
    }

    #[test]
    fn rejects_forced_fast_path_with_stochastic_propagation() {
        let mut c = ScenarioConfig::paper_table1();
        c.fast_path = FastPath::On;
        assert_eq!(c.validate(), Ok(()));
        c.propagation = PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 };
        assert!(matches!(
            c.validate(),
            Err(ConfigError::FastPathUnsupported { .. })
        ));
        // Auto silently falls back instead of erroring.
        c.fast_path = FastPath::Auto;
        assert_eq!(c.validate(), Ok(()));
        let e = ConfigError::FastPathUnsupported {
            propagation: PropagationKind::NakagamiFreeSpace { m: 3.0 },
        };
        assert!(e.to_string().contains("deterministic"));
    }
}
