//! The end-to-end simulation runner.
//!
//! `run_scenario` is this workspace's equivalent of an ns-2 run: it
//! wires mobility → radio → delivery → neighbor tables → clustering,
//! drives the discrete-event loop for the configured simulated time,
//! and returns every measurement the paper's figures need.
//!
//! # Protocol timeline (per node, mirroring §3.2 / §4.1)
//!
//! Each node broadcasts a hello every `BI` seconds, starting at a
//! random offset in `[0, BI)` (nodes are not synchronized, as in
//! ns-2). At each of its broadcast instants the node:
//!
//! 1. expires stale neighbors (`TP`),
//! 2. computes its aggregate mobility `M` from the stored `RxPr`
//!    pairs and stamps it (plus role) onto the hello,
//! 3. the delivery engine hands the hello to every in-range receiver
//!    with its measured `RxPr`, which the receivers store,
//! 4. the node runs one clustering evaluation and possibly changes
//!    role (recorded into the transition log).
//!
//! Once per `BI` a sampler records the number of clusterheads, the
//! gateway fraction and the population-mean metric.
//!
//! # The spatial-index fast path
//!
//! A naive hello broadcast re-evaluates every node's trajectory and
//! scans the whole population — O(n²) work per broadcast interval.
//! When the propagation model is deterministic
//! ([`Propagation::is_deterministic`]) the true receiver set is
//! exactly the nominal-range disk, so the runner instead maintains a
//! [`GridIndex`] of *approximate* positions (refreshed every `BI/2`)
//! and, per hello, evaluates exact positions only for the transmitter
//! and the candidates returned by a range query with a conservative
//! slack radius (`tx_range + 2·v_bound·staleness`). No true receiver
//! can be missed, candidates are visited in id order, and trajectory
//! sampling is order-independent by contract — so the fast path is
//! **bit-identical** to the brute-force scan (asserted by the
//! `fast_path_equivalence` suite). Stochastic propagation models fall
//! back to brute force; [`FastPath`] in the config selects the policy.
//!
//! # Fault injection and invariant auditing
//!
//! A non-empty [`FaultPlan`](crate::FaultPlan) schedules node-lifecycle
//! faults (fail-stop crashes, crash-with-recovery, late joins, and
//! one-sided deaf/mute interface impairments) from a dedicated
//! `"faults"` seed stream, so runs with an empty plan consume no extra
//! randomness and stay byte-identical to previous releases. Dead nodes
//! neither transmit nor receive and their neighbors expire them
//! naturally through `TP`; a clusterhead crash opens a *healing probe*
//! that measures how long its orphaned members take to re-affiliate
//! ([`HealingStats`]). Independently, [`AuditMode`](crate::AuditMode)
//! turns on a periodic Theorem-1 audit of the live topology at every
//! sampling instant after warmup: `warn` records violations as trace
//! events and tallies them in [`AuditSummary`], `strict` aborts the
//! run with [`RunError::AuditFailed`] — never a panic.

use mobic_core::{ClusterAdvert, ClusterConfig, ClusterNode, ClusterTable, NodeTable, Role};
use mobic_geom::{GridIndex, Rect, Vec2};
use mobic_metrics::{TimeSeries, TransitionLog};
use mobic_mobility::{
    ConferenceHall, ConferenceHallParams, GaussMarkov, GaussMarkovParams, Highway, HighwayParams,
    Manhattan, ManhattanParams, Mobility, RandomWalk, RandomWalkParams, RandomWaypoint,
    RandomWaypointParams, RpgmGroup, RpgmParams, Stationary,
};
use mobic_net::{loss, loss::LossModel, DeliveryEngine, Hello, NodeId, Scratch};
use mobic_radio::{
    Dbm, FreeSpace, LogDistance, Nakagami, Propagation, Radio, Shadowed, TwoRayGround,
};
use mobic_sim::{
    rng::SeedSplitter, CalendarQueue, CalendarStore, EventKey, Queue, ShardedEventQueue, SimTime,
    Simulation, SnapshotQueue,
};
use mobic_trace::{
    config_hash, ManifestCounters, NullSink, PhaseClock, PhaseTimings, RunManifest, TraceEvent,
    TraceSink, ViolationKind,
};
use serde::{Deserialize, Serialize};
use std::path::Path;

use crate::snapshot::{self, SimSnapshot};
use crate::{
    shard, AuditMode, ConfigError, DeliveryPath, Engine, FastPath, FaultTarget, LossKind,
    MobilityKind, PropagationKind, Recluster, ScenarioConfig, Scheduler,
};

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The algorithm that ran.
    pub algorithm: mobic_core::AlgorithmKind,
    /// The master seed of the run.
    pub seed: u64,
    /// The configured transmission range (echoed for sweep tables).
    pub tx_range_m: f64,
    /// `CS` over the whole run, including the initial election.
    pub clusterhead_changes_total: usize,
    /// `CS` counting only changes after the warmup — the headline
    /// steady-state stability number plotted in Figures 3/5/6.
    pub clusterhead_changes: usize,
    /// Cluster-membership changes after warmup (finer churn measure).
    pub affiliation_changes: usize,
    /// Mean number of clusters after warmup (Figure 4's quantity).
    pub avg_clusters: f64,
    /// Mean fraction of nodes that are gateways, after warmup.
    pub gateway_fraction: f64,
    /// Population mean of the aggregate mobility metric, after warmup.
    pub mean_aggregate_metric: f64,
    /// The sampled cluster-count series (one point per `BI`).
    pub cluster_series: TimeSeries,
    /// Total hello broadcasts sent.
    pub hello_broadcasts: u64,
    /// Total successful hello deliveries.
    pub deliveries: u64,
    /// Receptions destroyed by the vulnerable-window MAC collision
    /// model (0 when collisions are disabled).
    pub mac_collisions: u64,
    /// Every node's role at the end of the run.
    pub final_roles: Vec<Role>,
    /// Steady-state transitions broken down by `from->to` kind — the
    /// diagnostic behind the stability analyses ("where does the churn
    /// come from?").
    pub transitions_by_kind: std::collections::BTreeMap<String, usize>,
    /// Gini coefficient of per-node clusterhead *time shares* after
    /// warmup — the burden-fairness measure (0 = every node serves
    /// equally; → 1 = a few nodes carry all clusters). Stability and
    /// fairness trade off: see the `fairness` experiment.
    pub ch_time_gini: f64,
    /// How many distinct nodes ever held the clusterhead role.
    pub distinct_clusterheads: usize,
    /// Every role transition of the run, in time order — the full
    /// event trace for downstream analyses (serialized with results).
    pub role_transitions: Vec<mobic_core::RoleTransition>,
    /// Fault injections actually performed. Omitted from JSON when no
    /// fault fired, keeping fault-free artifacts byte-identical to
    /// previous releases.
    #[serde(default, skip_serializing_if = "FaultCounters::is_empty")]
    pub faults: FaultCounters,
    /// Cluster-healing latency statistics — `Some` only when at least
    /// one clusterhead crash orphaned a member.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub healing: Option<HealingStats>,
    /// Outcome of the periodic invariant audit — `Some` only when the
    /// audit was enabled.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub audit: Option<AuditSummary>,
    /// How the run executed (fast path taken, event counts, timing).
    #[serde(default)]
    pub perf: RunPerf,
}

/// Counts of fault injections that actually fired during a run.
///
/// `crashes` counts every crash event, including those that later
/// recovered; `recoveries` counts only the revivals that fired within
/// the simulated horizon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Fail-stop crashes injected (with or without recovery).
    pub crashes: u32,
    /// Crash recoveries that fired before the end of the run.
    pub recoveries: u32,
    /// Late joins that fired.
    pub late_joins: u32,
    /// Receive-side (deaf) impairment spells started.
    pub deaf_spells: u32,
    /// Transmit-side (mute) impairment spells started.
    pub mute_spells: u32,
}

impl FaultCounters {
    /// `true` when no fault of any kind fired. The serialized
    /// [`RunResult`] omits the field entirely in that case.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

/// Cluster-healing latency: for every clusterhead crash that orphaned
/// at least one member, the time until all surviving orphans were
/// re-affiliated with a live clusterhead (or became heads themselves).
/// Orphans that crash themselves drop out of their probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HealingStats {
    /// Clusterhead crashes that orphaned at least one member.
    pub probes: u32,
    /// Probes whose orphans all re-affiliated before the run ended.
    pub healed: u32,
    /// Probes still unresolved at the end of the run.
    pub unhealed: u32,
    /// Mean healing latency over the healed probes, in seconds
    /// (0 when nothing healed).
    pub mean_latency_s: f64,
    /// Worst healing latency observed, in seconds.
    pub max_latency_s: f64,
}

/// Outcome of the periodic in-run invariant audit
/// (see [`AuditMode`](crate::AuditMode)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Audit passes executed (one per sampling instant after warmup).
    pub checks: u64,
    /// Total Theorem-1 violations observed across all passes.
    pub violations: u64,
}

/// Why a simulation run — or a supervised batch job — failed.
///
/// [`run_scenario`] itself produces `Config` and (under
/// [`AuditMode::Strict`](crate::AuditMode)) `AuditFailed`; `Panicked`
/// and `TimedOut` are attached by the supervised batch executor
/// ([`run_batch_supervised`](crate::run_batch_supervised)), which
/// catches worker panics and soft-deadline overruns instead of letting
/// them abort the process.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The scenario configuration failed validation.
    Config(ConfigError),
    /// The job's worker thread panicked; the supervisor caught it and
    /// the remaining jobs completed normally.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The job exceeded the supervisor's soft deadline.
    TimedOut {
        /// The deadline that was exceeded, in seconds.
        limit_s: f64,
    },
    /// The strict invariant audit observed a Theorem-1 violation.
    AuditFailed {
        /// Simulation time of the failing audit pass, in seconds.
        at_s: f64,
        /// Number of violations in that pass.
        violations: usize,
    },
    /// A resume was attempted from a snapshot that belongs to a
    /// different `(config, seed)` — restoring it would silently
    /// produce a hybrid run, so it is refused up front.
    SnapshotMismatch {
        /// What disagreed (seed or semantic config hash).
        reason: String,
    },
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Panicked { message } => write!(f, "worker panicked: {message}"),
            RunError::TimedOut { limit_s } => {
                write!(f, "run exceeded the {limit_s} s soft deadline")
            }
            RunError::AuditFailed { at_s, violations } => write!(
                f,
                "strict invariant audit failed at t = {at_s} s ({violations} violation(s))"
            ),
            RunError::SnapshotMismatch { reason } => {
                write!(f, "snapshot does not belong to this run: {reason}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            _ => None,
        }
    }
}

/// Lightweight per-run performance/observability counters.
///
/// Everything here describes *how* the run executed, never *what* it
/// computed — two runs of the same `(cfg, seed)` produce identical
/// measurements regardless of the path taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunPerf {
    /// Total discrete events processed by the simulation core.
    pub events: u64,
    /// Hello broadcast events among them.
    pub hello_events: u64,
    /// Whether the spatial-index fast path was used.
    pub indexed: bool,
    /// Mean number of candidate receivers evaluated per hello
    /// (`n − 1` on the brute-force path).
    pub mean_candidates: f64,
    /// Full index refresh passes (0 on the brute-force path).
    pub index_refreshes: u64,
    /// Wall-clock duration of the event loop in milliseconds. Not
    /// serialized: identical runs must produce identical JSON.
    #[serde(skip)]
    pub wall_clock_ms: f64,
    /// Wall-clock breakdown into setup / event-loop / aggregation
    /// phases (`mobic-cli --profile` renders it). Excluded from
    /// serialization for the same reason as `wall_clock_ms`.
    #[serde(skip)]
    pub phase_ms: PhaseTimings,
}

/// How a checkpoint-aware run ended: normally, or suspended into a
/// resumable [`SimSnapshot`] by an event-budget stop
/// (see [`run_scenario_until`]).
#[derive(Debug)]
pub enum RunOutcome {
    /// The run reached its simulated horizon; here is the result.
    Done(Box<RunResult>),
    /// The run was suspended between events; resuming the snapshot
    /// with [`run_scenario_resumed`] completes it byte-identically.
    Suspended(Box<SimSnapshot>),
}

/// The engine's checkpoint trigger: never, after an exact event count
/// (kill-point testing), or periodically on wall-clock cadence with
/// rotated snapshot files (crash safety for long runs).
#[derive(Debug, Clone, Copy)]
enum CheckpointPlan<'a> {
    /// Run to completion; never capture.
    None,
    /// Suspend after exactly this many processed events.
    StopAfter(u64),
    /// Write a rotated snapshot into `dir` roughly every `every_s`
    /// wall-clock seconds, keeping the newest `keep` files.
    Periodic {
        /// Wall-clock cadence in seconds.
        every_s: f64,
        /// Snapshot directory.
        dir: &'a Path,
        /// Rotation depth.
        keep: u32,
    },
}

/// Simulation events. Serializable because checkpoints persist the
/// pending event queue verbatim.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) enum Ev {
    /// Node `i` broadcasts its hello (and then evaluates clustering).
    Hello(NodeId),
    /// Periodic metric sampling.
    Sample,
    /// A scheduled node-lifecycle fault fires.
    Fault(FaultAction),
}

/// What a [`Ev::Fault`] event does when it fires. Crash and impairment
/// victims are drawn at fire time (so the target policy sees the
/// current cluster structure); revivals, joins and restores name their
/// node up front.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) enum FaultAction {
    /// Fail-stop crash of a victim drawn at fire time; optionally
    /// schedules that victim's revival.
    Crash { revive_after: Option<SimTime> },
    /// Bring a previously crashed node back with wiped state.
    Revive { node: usize },
    /// First appearance of a node withheld since setup.
    Join { node: usize },
    /// Start a one-sided interface impairment (mute = tx suppressed,
    /// otherwise rx dropped) on a victim drawn at fire time.
    Impair { mute: bool },
    /// End an impairment spell, if the node still has it.
    Restore { node: usize, mute: bool },
}

/// An open cluster-healing measurement: started when a clusterhead
/// crashed with members, resolved when every surviving orphan has
/// re-affiliated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct HealingProbe {
    /// The crash instant.
    started: SimTime,
    /// Indices of the crashed head's members still unhealed.
    orphans: Vec<usize>,
}

/// Whether an orphaned member has found a new home: it either serves
/// as a clusterhead itself or claims a live node that currently holds
/// the clusterhead role.
fn reaffiliated(node_table: &NodeTable, member: usize) -> bool {
    match node_table.node(member).role() {
        Role::Clusterhead => true,
        Role::Member { ch } => {
            let c = ch.index();
            node_table.is_alive(c) && node_table.node(c).role() == Role::Clusterhead
        }
        Role::Undecided => false,
    }
}

/// Draws a fault victim among the currently alive nodes, or `None`
/// when nobody qualifies. `Any` consumes one uniform draw from the
/// fault stream; `Clusterhead` is deterministic given the cluster
/// state (the live head serving the most live members, lowest index on
/// ties) and consumes no randomness.
fn pick_victim<R: rand::Rng>(
    node_table: &NodeTable,
    target: FaultTarget,
    rng: &mut R,
) -> Option<usize> {
    let n = node_table.nodes().len();
    match target {
        FaultTarget::Any => {
            let alive: Vec<usize> = (0..n).filter(|&i| node_table.is_alive(i)).collect();
            if alive.is_empty() {
                None
            } else {
                Some(alive[rng.gen_range(0..alive.len())])
            }
        }
        FaultTarget::Clusterhead => {
            let mut best: Option<(usize, usize)> = None; // (members, index)
            for i in 0..n {
                if !node_table.is_alive(i) || node_table.node(i).role() != Role::Clusterhead {
                    continue;
                }
                let ch = NodeId::new(i as u32);
                let members = (0..n)
                    .filter(|&j| {
                        node_table.is_alive(j) && node_table.node(j).role() == (Role::Member { ch })
                    })
                    .count();
                if best.is_none_or(|(m, _)| members > m) {
                    best = Some((members, i));
                }
            }
            best.map(|(_, i)| i)
        }
    }
}

/// Maps a centralized Theorem-1 [`Violation`] — whose indices refer to
/// the audit's alive-subset arrays — back to node ids and into a trace
/// event.
fn violation_event(v: &mobic_core::invariants::Violation, ids: &[NodeId]) -> TraceEvent {
    use mobic_core::invariants::Violation as V;
    match *v {
        V::AdjacentClusterheads(a, b) => TraceEvent::InvariantViolation {
            violation: ViolationKind::AdjacentHeads,
            node: ids[a].value(),
            other: Some(ids[b].value()),
        },
        V::MemberCannotHearClusterhead { member, ch } => TraceEvent::InvariantViolation {
            violation: ViolationKind::MemberUnreachable,
            node: ids[member].value(),
            other: Some(ch.value()),
        },
        V::DanglingAffiliation { member, ch } => TraceEvent::InvariantViolation {
            violation: ViolationKind::DanglingAffiliation,
            node: ids[member].value(),
            other: Some(ch.value()),
        },
        V::Undecided(i) => TraceEvent::InvariantViolation {
            violation: ViolationKind::Undecided,
            node: ids[i].value(),
            other: None,
        },
    }
}

/// Builds the per-node mobility models for a scenario.
pub(crate) fn build_mobility(
    cfg: &ScenarioConfig,
    field: Rect,
    splitter: &SeedSplitter,
) -> Vec<Box<dyn Mobility>> {
    let n = cfg.n_nodes as usize;
    let horizon = SimTime::from_secs_f64(cfg.sim_time_s + 2.0 * cfg.bi_s);
    match cfg.mobility {
        MobilityKind::RandomWaypoint => {
            let params = RandomWaypointParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                pause: SimTime::from_secs_f64(cfg.pause_s),
            };
            (0..n)
                .map(|i| {
                    Box::new(RandomWaypoint::new(
                        params,
                        splitter.stream("mobility", i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::RandomWalk { epoch_s } => {
            let params = RandomWalkParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                epoch: SimTime::from_secs_f64(epoch_s),
            };
            (0..n)
                .map(|i| {
                    Box::new(RandomWalk::new(
                        params,
                        splitter.stream("mobility", i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::GaussMarkov { alpha } => {
            let params = GaussMarkovParams {
                field,
                alpha,
                mean_speed_mps: 0.5 * cfg.max_speed_mps,
                speed_sigma: 0.25 * cfg.max_speed_mps,
                heading_sigma: 0.35,
                step: SimTime::from_secs(1),
            };
            (0..n)
                .map(|i| {
                    Box::new(GaussMarkov::new(
                        params,
                        splitter.stream("mobility", i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Rpgm {
            groups,
            member_radius_m,
        } => {
            let params = RpgmParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                pause: SimTime::from_secs_f64(cfg.pause_s),
                member_radius_m,
                member_update: SimTime::from_secs(5),
            };
            let mut models: Vec<Box<dyn Mobility>> = Vec::with_capacity(n);
            let mut group_objs: Vec<RpgmGroup> = (0..groups)
                .map(|g| {
                    RpgmGroup::new(params, horizon, splitter.stream("rpgm-group", u64::from(g)))
                })
                .collect();
            for i in 0..n {
                let g = i % groups as usize;
                models.push(Box::new(group_objs[g].spawn_member()));
            }
            models
        }
        MobilityKind::Highway {
            lanes,
            bidirectional,
        } => {
            let params = HighwayParams {
                field,
                lanes,
                bidirectional,
                lane_speed_mps: cfg.max_speed_mps,
                speed_jitter: 0.1 * cfg.max_speed_mps,
                jitter_alpha: 0.9,
                step: SimTime::from_secs(1),
            };
            (0..n)
                .map(|i| {
                    Box::new(Highway::new(
                        params,
                        (i % lanes as usize) as u32,
                        splitter.stream("mobility", i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::ConferenceHall { booths } => {
            let params = ConferenceHallParams {
                field,
                booths,
                booth_radius_m: 0.06 * field.width().min(field.height()),
                min_speed_mps: 0.5,
                max_speed_mps: 1.5,
                min_pause: SimTime::from_secs(30),
                max_pause: SimTime::from_secs(120),
            };
            let hall = ConferenceHall::new(params, &mut splitter.stream("hall", 0));
            (0..n)
                .map(|i| {
                    Box::new(hall.spawn_attendee(splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Manhattan { block_m, p_turn } => {
            let params = ManhattanParams {
                field,
                block_m,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                p_turn,
            };
            (0..n)
                .map(|i| {
                    Box::new(Manhattan::new(
                        params,
                        splitter.stream("mobility", i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Stationary => {
            let mut rng = splitter.stream("placement", 0);
            (0..n)
                .map(|_| {
                    use rand::Rng;
                    let p = field.point_at(rng.gen::<f64>(), rng.gen::<f64>());
                    Box::new(Stationary::new(p)) as Box<dyn Mobility>
                })
                .collect()
        }
    }
}

/// Builds the propagation model.
fn build_propagation(cfg: &ScenarioConfig, splitter: &SeedSplitter) -> Box<dyn Propagation> {
    match cfg.propagation {
        PropagationKind::FreeSpace => Box::new(FreeSpace::at_frequency(914.0e6)),
        PropagationKind::TwoRayGround => Box::new(TwoRayGround::ns2_default()),
        PropagationKind::LogDistance { exponent } => {
            Box::new(LogDistance::calibrated_to_friis(914.0e6, exponent))
        }
        PropagationKind::ShadowedFreeSpace { sigma_db } => Box::new(Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            sigma_db,
            splitter.stream("shadowing", 0),
        )),
        PropagationKind::NakagamiFreeSpace { m } => Box::new(Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            m,
            splitter.stream("fading", 0),
        )),
    }
}

/// Builds the loss model.
fn build_loss(cfg: &ScenarioConfig, splitter: &SeedSplitter) -> Box<dyn LossModel> {
    match cfg.loss {
        LossKind::None => Box::new(loss::NoLoss),
        LossKind::Bernoulli { p } => Box::new(loss::Bernoulli::new(p, splitter.stream("loss", 0))),
        LossKind::BurstyPreset => Box::new(loss::GilbertElliott::mildly_bursty(
            splitter.stream("loss", 0),
        )),
    }
}

/// Upper bound on any node's speed under the scenario's mobility
/// model, used to pad the candidate query radius by the worst-case
/// drift since an index entry was last refreshed.
///
/// Constants mirror the parameter choices in [`build_mobility`].
/// Gaussian-driven speeds (Gauss–Markov, Highway jitter) are unbounded
/// in principle; we pad by 8σ of the stationary distribution, putting
/// the per-step exceedance probability near 6e-16 — negligible against
/// f64 rounding over any practical run.
fn slack_speed_bound(cfg: &ScenarioConfig) -> f64 {
    match cfg.mobility {
        MobilityKind::Stationary => 0.0,
        MobilityKind::RandomWaypoint
        | MobilityKind::RandomWalk { .. }
        | MobilityKind::Manhattan { .. } => cfg.max_speed_mps,
        // Speed is stationary N(0.5·v_max, 0.25·v_max), clamped at 0.
        MobilityKind::GaussMarkov { .. } => (0.5 + 8.0 * 0.25) * cfg.max_speed_mps,
        // The group center does random waypoint at ≤ v_max; the member
        // offset re-lerps across the member disk every 5 s.
        MobilityKind::Rpgm {
            member_radius_m, ..
        } => cfg.max_speed_mps + 2.0 * member_radius_m / 5.0,
        // Lane speed v_max plus stationary N(0, 0.1·v_max) jitter.
        MobilityKind::Highway { .. } => (1.0 + 8.0 * 0.1) * cfg.max_speed_mps,
        // Walking pace is hard-capped in `build_mobility`.
        MobilityKind::ConferenceHall { .. } => 1.5,
    }
}

/// Extra query slack for motion that is not speed-bounded: highway
/// vehicles wrap across the field in a near-instant jump, so a stale
/// index entry can be off by whole lane lengths. The pad makes the
/// query cover every possible wrap (degrading Highway to an effectively
/// whole-field scan — correct, just not faster).
fn slack_teleport_pad(cfg: &ScenarioConfig, speed_bound: f64, staleness_s: f64) -> f64 {
    match cfg.mobility {
        MobilityKind::Highway { .. } => {
            // One wrap spans the lane axis; a window long enough to
            // drive a full lane adds one more wrap per crossing.
            let crossings = 1.0 + (speed_bound * staleness_s / cfg.field_w_m).floor();
            crossings * cfg.field_w_m
        }
        _ => 0.0,
    }
}

/// A reception withheld from the neighbor table while its vulnerable
/// window is open (MAC collision model, `packet_time_s > 0`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct PendingRx {
    /// Arrival time — the timestamp the table sees on commit.
    at: SimTime,
    /// Measured received power.
    power: Dbm,
    /// The hello as transmitted.
    hello: Hello<ClusterAdvert>,
}

/// Commits a deferred reception once its vulnerable window has closed.
/// `force` commits unconditionally — used at end of run, when no
/// further arrival can overlap the pending packet. A committed
/// reception is a successful delivery, so this is also where the
/// `hello_rx` trace event fires (stamped with the *arrival* time the
/// neighbor table sees).
#[allow(clippy::too_many_arguments)] // internal hot-path helper
fn commit_pending(
    slot: &mut Option<PendingRx>,
    node_table: &mut NodeTable,
    rx: usize,
    now: SimTime,
    packet_time: SimTime,
    force: bool,
    deliveries: &mut u64,
    tracing: bool,
    sink: &mut dyn TraceSink,
) {
    if let Some(p) = *slot {
        if force || now.saturating_sub(p.at) >= packet_time {
            *slot = None;
            *deliveries += 1;
            node_table.record(rx, p.at, p.power, &p.hello);
            if tracing {
                sink.record(
                    p.at,
                    &TraceEvent::HelloRx {
                        tx: p.hello.sender.value(),
                        rx: rx as u32,
                        rx_power_dbm: p.power.dbm(),
                    },
                );
            }
        }
    }
}

/// Scratch buffers (see [`mobic_net::Scratch`]) are pre-sized for the
/// worst case — every node a candidate — up to this ceiling. Beyond
/// it they start at the ceiling and grow amortized: large-n hardening
/// so an n = 1M run does not pre-commit `O(n × shards)` memory for
/// buffers whose steady-state occupancy is the neighborhood size. At
/// paper scales (n ≤ 4096) pre-sizing is exact and the loop never
/// allocates, preserving PR 3's zero-alloc guarantee as measured by
/// `bench_hotpath`.
const SCRATCH_PRESIZE_MAX: usize = 4096;

/// Event-kind discriminants for [`route_ev`] (diagnostic only — never
/// part of the queue's pop order; see [`ShardedEventQueue`]).
const EV_KIND_HELLO: u8 = 0;
const EV_KIND_SAMPLE: u8 = 1;
const EV_KIND_FAULT: u8 = 2;

/// Shard-routing key for the runner's events: hellos belong to their
/// transmitting node (and thus to that node's spatial shard); the
/// sampler and fault injections are engine-wide and live on shard 0.
fn route_ev(ev: &Ev) -> EventKey {
    match ev {
        Ev::Hello(tx) => EventKey::node(tx.value(), EV_KIND_HELLO),
        Ev::Sample => EventKey::global(EV_KIND_SAMPLE),
        Ev::Fault(_) => EventKey::global(EV_KIND_FAULT),
    }
}

/// A read-only view of the simulation state handed to observers at
/// every sampling instant (once per broadcast interval).
#[derive(Debug)]
pub struct SampleView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Position of every node (indexed by `NodeId::index`).
    pub positions: &'a [Vec2],
    /// The clustering state machines.
    pub nodes: &'a [ClusterNode],
    /// The neighbor tables.
    pub tables: &'a [ClusterTable],
    /// Liveness of every node (all `true` unless a fault plan is
    /// active): index `i` is `false` while node `i` is crashed or has
    /// not joined yet.
    pub alive: &'a [bool],
}

/// Runs one complete scenario with the given master seed.
///
/// The run is a pure function of `(cfg, seed)` — see the determinism
/// contract in [`mobic_sim`].
///
/// # Errors
///
/// Returns [`RunError::Config`] if the configuration is invalid, and
/// [`RunError::AuditFailed`] when a strict invariant audit trips.
pub fn run_scenario(cfg: &ScenarioConfig, seed: u64) -> Result<RunResult, RunError> {
    run_scenario_instrumented(cfg, seed, |_| {}, &mut NullSink)
}

/// Like [`run_scenario`], but invokes `observer` at every sampling
/// instant with a [`SampleView`] of the live simulation state — the
/// hook higher layers (e.g. the `mobic-routing` experiments) use to
/// probe routes against the evolving cluster structure without
/// re-implementing the event loop.
///
/// # Errors
///
/// Propagates errors exactly as [`run_scenario`] does.
pub fn run_scenario_observed(
    cfg: &ScenarioConfig,
    seed: u64,
    observer: impl FnMut(SampleView<'_>),
) -> Result<RunResult, RunError> {
    run_scenario_instrumented(cfg, seed, observer, &mut NullSink)
}

/// Like [`run_scenario`], but emits every structured
/// [`TraceEvent`] of the run into `sink` — hello tx/rx, loss drops,
/// MAC collisions, head elections/resignations, cluster merges, and
/// index refreshes, each stamped with the simulation time.
///
/// Tracing is purely observational: the [`RunResult`] is bit-identical
/// to an untraced run of the same `(cfg, seed)`, and with
/// [`NullSink`] the loop skips event construction entirely (checked
/// once via [`TraceSink::enabled`]).
///
/// # Errors
///
/// Propagates errors exactly as [`run_scenario`] does. Sink I/O
/// errors never interrupt the run — fallible sinks latch them
/// (see [`mobic_trace::JsonlSink::finish`]).
pub fn run_scenario_traced(
    cfg: &ScenarioConfig,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<RunResult, RunError> {
    run_scenario_instrumented(cfg, seed, |_| {}, sink)
}

/// The fully instrumented runner: sampling-time `observer` *and*
/// structured event `sink`. [`run_scenario`],
/// [`run_scenario_observed`] and [`run_scenario_traced`] are thin
/// wrappers over this.
///
/// # Errors
///
/// Returns [`RunError::Config`] if the configuration is invalid, and
/// [`RunError::AuditFailed`] when a strict invariant audit trips.
pub fn run_scenario_instrumented(
    cfg: &ScenarioConfig,
    seed: u64,
    observer: impl FnMut(SampleView<'_>),
    sink: &mut dyn TraceSink,
) -> Result<RunResult, RunError> {
    match dispatch(cfg, seed, observer, sink, None, CheckpointPlan::None)? {
        RunOutcome::Done(result) => Ok(*result),
        // A `None` plan never trips the stop predicate.
        RunOutcome::Suspended(_) => unreachable!("suspended without a checkpoint plan"),
    }
}

/// Runs a scenario until exactly `stop_after` events have been
/// processed, then suspends between events into a [`SimSnapshot`] —
/// the "kill the run at event N" primitive behind the checkpoint
/// equivalence suites and the CLI's `--checkpoint-stop-after`.
///
/// Returns [`RunOutcome::Done`] when the whole run takes fewer than
/// `stop_after` events, [`RunOutcome::Suspended`] otherwise. Resuming
/// the snapshot with [`run_scenario_resumed`] yields a [`RunResult`]
/// (and, for cursor-capable sinks, a JSONL trace) byte-identical to
/// the uninterrupted run.
///
/// # Errors
///
/// Propagates errors exactly as [`run_scenario`] does.
pub fn run_scenario_until(
    cfg: &ScenarioConfig,
    seed: u64,
    stop_after: u64,
    sink: &mut dyn TraceSink,
) -> Result<RunOutcome, RunError> {
    dispatch(
        cfg,
        seed,
        |_| {},
        sink,
        None,
        CheckpointPlan::StopAfter(stop_after),
    )
}

/// Completes a suspended run from `snapshot`, producing the same
/// [`RunResult`] bytes an uninterrupted run of `(cfg, seed)` would
/// have produced.
///
/// The snapshot must belong to this `(cfg, seed)`: the seed and the
/// *semantic* config hash (execution knobs canonicalized away — see
/// [`crate::snapshot::semantic_config_hash`]) are checked before any
/// state is restored, so a heap-scheduler snapshot may resume under
/// the calendar scheduler but never under a different scenario.
///
/// # Errors
///
/// Returns [`RunError::SnapshotMismatch`] when the snapshot belongs
/// to a different `(cfg, seed)`; otherwise propagates errors exactly
/// as [`run_scenario`] does.
pub fn run_scenario_resumed(
    cfg: &ScenarioConfig,
    seed: u64,
    snapshot: SimSnapshot,
    sink: &mut dyn TraceSink,
) -> Result<RunResult, RunError> {
    snapshot
        .compatible_with(cfg, seed)
        .map_err(|reason| RunError::SnapshotMismatch { reason })?;
    match dispatch(
        cfg,
        seed,
        |_| {},
        sink,
        Some(Box::new(snapshot)),
        CheckpointPlan::None,
    )? {
        RunOutcome::Done(result) => Ok(*result),
        RunOutcome::Suspended(_) => unreachable!("suspended without a checkpoint plan"),
    }
}

/// Runs a scenario with periodic crash-safe checkpointing: roughly
/// every `cfg.checkpoint.every_s` wall-clock seconds a rotated
/// snapshot (`ckpt-<events>.ckpt`, newest `cfg.checkpoint.keep` kept)
/// is published atomically into `dir`, and an optional `resume`
/// snapshot continues an interrupted run. With checkpointing off in
/// the config this is exactly [`run_scenario_traced`] plus the resume
/// gate.
///
/// Checkpoint *content* is deterministic; only *when* a periodic
/// snapshot fires depends on wall-clock, so which `ckpt-*.ckpt` files
/// exist may differ between machines while any one of them resumes to
/// the same bytes.
///
/// # Errors
///
/// Returns [`RunError::SnapshotMismatch`] when `resume` belongs to a
/// different `(cfg, seed)`; otherwise propagates errors exactly as
/// [`run_scenario`] does. Snapshot write failures never abort the run.
pub fn run_scenario_checkpointed(
    cfg: &ScenarioConfig,
    seed: u64,
    dir: &Path,
    resume: Option<SimSnapshot>,
    sink: &mut dyn TraceSink,
) -> Result<RunResult, RunError> {
    let resume = match resume {
        Some(s) => {
            s.compatible_with(cfg, seed)
                .map_err(|reason| RunError::SnapshotMismatch { reason })?;
            Some(Box::new(s))
        }
        None => None,
    };
    let plan = if cfg.checkpoint.is_off() {
        CheckpointPlan::None
    } else {
        CheckpointPlan::Periodic {
            every_s: cfg.checkpoint.every_s,
            dir,
            keep: cfg.checkpoint.keep,
        }
    };
    match dispatch(cfg, seed, |_| {}, sink, resume, plan)? {
        RunOutcome::Done(result) => Ok(*result),
        // Periodic plans checkpoint and continue; they never suspend.
        RunOutcome::Suspended(_) => unreachable!("periodic plans never suspend"),
    }
}

/// Validates, then routes to the engine-generic loop with the queue
/// shape the config asks for, threading the resume snapshot and the
/// checkpoint plan through. Every public runner entry point funnels
/// here.
fn dispatch(
    cfg: &ScenarioConfig,
    seed: u64,
    observer: impl FnMut(SampleView<'_>),
    sink: &mut dyn TraceSink,
    resume: Option<Box<SimSnapshot>>,
    plan: CheckpointPlan<'_>,
) -> Result<RunOutcome, RunError> {
    cfg.validate()?;
    // Queue depth: one hello per node, the sampler, headroom for a
    // same-instant reschedule, plus every planned fault injection.
    let queue_cap = cfg.n_nodes as usize + 2 + cfg.faults.injections() as usize;
    // Calendar bucket-width profile: the event population is
    // near-periodic at the broadcast interval, so one calendar year is
    // sized to two intervals (see [`CalendarQueue`]) and reschedules
    // at `+bi` always land in-year.
    let bi_hint = SimTime::from_secs_f64(cfg.bi_s);
    match (cfg.engine, cfg.scheduler) {
        (Engine::Sequential, Scheduler::Heap) => run_engine(
            cfg,
            seed,
            observer,
            sink,
            Simulation::with_capacity(queue_cap),
            1,
            resume,
            plan,
        ),
        (Engine::Sequential, Scheduler::Calendar) => {
            let queue = CalendarQueue::with_profile(queue_cap, bi_hint);
            run_engine(
                cfg,
                seed,
                observer,
                sink,
                Simulation::with_queue(queue),
                1,
                resume,
                plan,
            )
        }
        (Engine::Sharded, Scheduler::Heap) => {
            let n_shards = shard::effective_shards(cfg);
            let queue = ShardedEventQueue::with_capacity(
                queue_cap,
                n_shards,
                route_ev as fn(&Ev) -> EventKey,
            );
            run_engine(
                cfg,
                seed,
                observer,
                sink,
                Simulation::with_queue(queue),
                n_shards,
                resume,
                plan,
            )
        }
        (Engine::Sharded, Scheduler::Calendar) => {
            let n_shards = shard::effective_shards(cfg);
            let queue = ShardedEventQueue::<Ev, _, CalendarStore<Ev>>::with_store(
                queue_cap,
                n_shards,
                route_ev as fn(&Ev) -> EventKey,
                bi_hint,
            );
            run_engine(
                cfg,
                seed,
                observer,
                sink,
                Simulation::with_queue(queue),
                n_shards,
                resume,
                plan,
            )
        }
    }
}

/// The engine-generic run loop: everything after config validation,
/// parameterized over the event-queue shape. The sequential engine
/// passes a plain [`mobic_sim::EventQueue`]-backed simulation and one
/// shard; the sharded engine passes a [`ShardedEventQueue`] plus its
/// shard count. Results are byte-identical by construction — the
/// queue's pop order is queue-shape independent, event processing
/// stays on this thread, and workers only pre-extend trajectories.
#[allow(clippy::too_many_arguments)] // the one internal funnel point
fn run_engine<Q: SnapshotQueue<Ev>>(
    cfg: &ScenarioConfig,
    seed: u64,
    mut observer: impl FnMut(SampleView<'_>),
    sink: &mut dyn TraceSink,
    mut sim: Simulation<Ev, Q>,
    n_shards: u32,
    resume: Option<Box<SimSnapshot>>,
    plan: CheckpointPlan<'_>,
) -> Result<RunOutcome, RunError> {
    let mut phase_clock = PhaseClock::start();
    // One capability check up front: with a disabled sink the loop
    // never constructs an event, so tracing is zero-cost when off.
    let tracing = sink.enabled();
    let n = cfg.n_nodes as usize;
    let splitter = SeedSplitter::new(seed);
    let field = Rect::new(cfg.field_w_m, cfg.field_h_m);
    let bi = SimTime::from_secs_f64(cfg.bi_s);
    let sim_end = SimTime::from_secs_f64(cfg.sim_time_s);
    let warmup = SimTime::from_secs_f64(cfg.warmup_s);

    let mut mobility = build_mobility(cfg, field, &splitter);
    let radio = Radio::with_range(build_propagation(cfg, &splitter), cfg.tx_range_m);
    let mut engine = DeliveryEngine::new(radio, build_loss(cfg, &splitter));
    // `delivery: scalar` pins the per-candidate path; `auto` lets the
    // engine take the vectorized kernel whenever the propagation model
    // is deterministic. Byte-identical either way.
    engine.set_force_scalar(cfg.delivery == DeliveryPath::Scalar);

    let ccfg = ClusterConfig {
        algorithm: cfg.algorithm,
        cci: SimTime::from_secs_f64(cfg.cci_s),
        metric_max_age: SimTime::from_secs_f64(cfg.tp_s),
        history_alpha: cfg.history_alpha,
        aggregation: cfg.metric_aggregation,
        metric_quantum: cfg.metric_quantum,
        undecided_patience: SimTime::from_secs_f64(cfg.undecided_patience_s),
    };
    let mut node_table = NodeTable::new(n, ccfg, SimTime::from_secs_f64(cfg.tp_s));

    // Pre-size every growth-prone container from the config so the
    // event loop appends without reallocating: the series see one
    // sample per broadcast interval, the transition log a few entries
    // per node, the event queue one hello per node plus the sampler.
    let samples = (cfg.sim_time_s / cfg.bi_s) as usize + 2;
    let mut log = TransitionLog::with_capacity(4 * n);
    let mut cluster_series = TimeSeries::with_capacity("clusters", samples);
    let mut gateway_series = TimeSeries::with_capacity("gateway-fraction", samples);
    let mut metric_series = TimeSeries::with_capacity("mean-aggregate-metric", samples);
    let mut hello_broadcasts: u64 = 0;
    let mut deliveries: u64 = 0;

    // On resume, the snapshot's queue already carries every pending
    // hello/sample/fault entry, and the fault-plan schedule below was
    // drawn by the original run — re-running either would double-book
    // events. The skipped streams ("hello-offset", the fault setup
    // draws) are setup-only: no live stream position depends on them.
    let resuming = resume.is_some();
    if !resuming {
        use rand::Rng;
        let mut off_rng = splitter.stream("hello-offset", 0);
        for i in 0..n {
            let offset = SimTime::from_secs_f64(off_rng.gen::<f64>() * cfg.bi_s);
            sim.schedule_at(offset, Ev::Hello(NodeId::new(i as u32)));
        }
        sim.schedule_at(bi, Ev::Sample);
    }

    // Node-lifecycle fault injection (see `FaultPlan`): fire times and
    // late-join victims come from the dedicated "faults" seed stream,
    // so an empty plan consumes no randomness and perturbs nothing —
    // fault-free runs stay byte-identical to previous releases.
    let mut fault_rng = (!cfg.faults.is_empty()).then(|| splitter.stream("faults", 0));
    let mut fault_counters = FaultCounters::default();
    let mut probes: Vec<HealingProbe> = Vec::new();
    let mut probes_created: u32 = 0;
    let mut probes_healed: u32 = 0;
    let mut healing_latency_sum: f64 = 0.0;
    let mut healing_latency_max: f64 = 0.0;
    let audit_on = cfg.audit != AuditMode::Off;
    let mut audit_checks: u64 = 0;
    let mut audit_violations: u64 = 0;
    let mut abort: Option<(SimTime, usize)> = None;
    if let Some(rng) = fault_rng.as_mut().filter(|_| !resuming) {
        use rand::Rng;
        let plan = cfg.faults;
        let from = plan.from_s;
        let until = if plan.until_s == 0.0 {
            cfg.sim_time_s
        } else {
            plan.until_s.min(cfg.sim_time_s)
        };
        let span = until - from; // validate() guarantees > 0

        // Late joiners first: distinct victims via a partial
        // Fisher–Yates shuffle, withheld from the network (dead, not
        // counted as crashes) until their join fires.
        let joins = plan.late_joins as usize;
        let mut pool: Vec<usize> = (0..n).collect();
        for k in 0..joins {
            let pick = rng.gen_range(k..n);
            pool.swap(k, pick);
        }
        for &v in &pool[..joins] {
            node_table.set_down(v);
            let at = SimTime::from_secs_f64(from + rng.gen::<f64>() * span);
            sim.schedule_at(at, Ev::Fault(FaultAction::Join { node: v }));
        }
        // Fire times for the remaining categories, drawn in a fixed
        // order so the schedule is a pure function of the seed.
        for _ in 0..plan.crashes {
            let at = SimTime::from_secs_f64(from + rng.gen::<f64>() * span);
            sim.schedule_at(at, Ev::Fault(FaultAction::Crash { revive_after: None }));
        }
        let back = SimTime::from_secs_f64(plan.recovery_after_s);
        for _ in 0..plan.recoveries {
            let at = SimTime::from_secs_f64(from + rng.gen::<f64>() * span);
            sim.schedule_at(
                at,
                Ev::Fault(FaultAction::Crash {
                    revive_after: Some(back),
                }),
            );
        }
        for _ in 0..plan.deaf_spells {
            let at = SimTime::from_secs_f64(from + rng.gen::<f64>() * span);
            sim.schedule_at(at, Ev::Fault(FaultAction::Impair { mute: false }));
        }
        for _ in 0..plan.mute_spells {
            let at = SimTime::from_secs_f64(from + rng.gen::<f64>() * span);
            sim.schedule_at(at, Ev::Fault(FaultAction::Impair { mute: true }));
        }
    }

    let mut positions: Vec<Vec2> = vec![Vec2::ZERO; n];

    // Spatial-index fast path (see the module docs): approximate
    // positions refreshed on a fixed cadence, queried per hello with a
    // conservative slack radius so no true receiver is ever missed.
    let use_indexed = match cfg.fast_path {
        FastPath::Off => false,
        // `validate` already rejected `On` with a stochastic model, so
        // both remaining variants reduce to the capability check.
        FastPath::On | FastPath::Auto => engine.radio().propagation().is_deterministic(),
    };
    let mut index = if use_indexed {
        for (j, m) in mobility.iter_mut().enumerate() {
            positions[j] = m.position_at(SimTime::ZERO);
        }
        Some(GridIndex::build(field, cfg.tx_range_m, &positions))
    } else {
        None
    };
    // Half a broadcast interval bounds staleness tightly enough that
    // the slack radius stays close to the radio range at paper speeds.
    let refresh_period = SimTime::from_secs_f64(0.5 * cfg.bi_s);
    let mut last_refresh = SimTime::ZERO;
    let speed_bound = slack_speed_bound(cfg);
    // `receive` is a threshold test that succeeds out to the nominal
    // range; the +0.5 m pad absorbs `nominal_range_m`'s bisection
    // tolerance and boundary rounding so the candidate disk always
    // contains the reception disk.
    let base_range = cfg.tx_range_m.max(engine.radio().nominal_range_m()) + 0.5;
    let mut candidate_total: u64 = 0;
    let mut index_refreshes: u64 = 0;

    // Dirty-set incremental reclustering (see `NodeTable`): skip a
    // node's election when it is provably a no-op. Bit-identical to
    // evaluating — debug builds re-prove every skip.
    let incremental = cfg.recluster == Recluster::Incremental;
    let mut elections_skipped: u64 = 0;

    // Vulnerable-window MAC collision state: a reception is withheld
    // from the neighbor table until `packet_time` has elapsed without
    // a second arrival — an overlap destroys *both* packets.
    let packet_time = SimTime::from_secs_f64(cfg.packet_time_s);
    let mut last_arrival: Vec<Option<SimTime>> = vec![None; n];
    let mut pending: Vec<Option<PendingRx>> = vec![None; n];
    let mut collisions: u64 = 0;
    // One scratch per shard so delivery buffers are never shared; the
    // sequential engine is the one-shard case and indexes scratch 0
    // everywhere, exactly the old single-buffer behavior.
    let mut scratches = Scratch::per_shard(n_shards as usize, n.min(SCRATCH_PRESIZE_MAX));
    let mut shard_of: Vec<u32> = vec![0; n];

    // Restore from a snapshot (DESIGN.md § "Checkpoint/restore"):
    // explicit state is copied back verbatim; derived state — mobility
    // trajectories, the spatial index, scratch buffers, shard owners —
    // is rebuilt from `(cfg, seed)` plus the restored inputs; and the
    // event queue is re-armed entry by entry with its original
    // sequence numbers, so pop order continues exactly where the
    // captured run left off regardless of which queue implementation
    // wrote the snapshot.
    let mut window_start = SimTime::ZERO;
    if let Some(snap) = resume {
        let s = *snap;
        node_table = s.node_table;
        positions = s.positions;
        if let Some(index) = index.as_mut() {
            index.update_all(&positions);
        }
        last_refresh = s.last_refresh;
        last_arrival = s.last_arrival;
        pending = s.pending;
        hello_broadcasts = s.hello_broadcasts;
        deliveries = s.deliveries;
        collisions = s.mac_collisions;
        candidate_total = s.candidate_total;
        index_refreshes = s.index_refreshes;
        elections_skipped = s.elections_skipped;
        log = s.log;
        cluster_series = s.cluster_series;
        gateway_series = s.gateway_series;
        metric_series = s.metric_series;
        fault_counters = s.faults;
        probes = s.probes;
        probes_created = s.probes_created;
        probes_healed = s.probes_healed;
        healing_latency_sum = s.healing_latency_sum;
        healing_latency_max = s.healing_latency_max;
        audit_checks = s.audit_checks;
        audit_violations = s.audit_violations;
        abort = s.abort;
        if let (Some(rng), Some((hi, lo))) = (fault_rng.as_mut(), s.fault_rng_word_pos) {
            rng.set_word_pos((u128::from(hi) << 64) | u128::from(lo));
        }
        engine.loss_mut().restore_state(&s.loss);
        engine.radio().propagation().restore_state(&s.propagation);
        for (t, q_seq, ev) in s.queue {
            sim.queue_mut().restore_entry(t, q_seq, ev);
        }
        sim.queue_mut().set_next_seq(s.next_seq);
        sim.restore_progress(s.now, s.events_processed);
        window_start = s.window_start;
    }

    let setup_ms = phase_clock.lap_ms();
    let wall_start = mobic_trace::Stopwatch::start();
    // Drive loop (DESIGN.md § "Sharded execution"). The sequential
    // engine takes exactly one iteration with the horizon at
    // `sim_end` — structurally the historical single `run_until`
    // call. The sharded engine advances one conservative lookahead
    // window at a time; between windows it re-assigns spatial shard
    // ownership from grid cells (the halo exchange), pushes the owner
    // map into the queue (placement only — pop order is provably
    // unaffected), and pre-extends every trajectory to the horizon on
    // one scoped worker per shard. All event processing and state
    // mutation stay on this thread in deterministic `(time, seq)`
    // order, and trajectory pre-extension is invisible by the
    // mobility contract, so results are byte-identical across
    // engines, shard counts, and owner maps.
    let is_sharded = cfg.engine == Engine::Sharded;
    let window = shard::lookahead_window(cfg);
    // Checkpoint trigger state. `StopAfter` pins an exact processed-
    // event index (the kill point of the equivalence suites);
    // `Periodic` fires on wall-clock cadence, re-checked every 1024
    // events so the hot loop pays one mask-and-compare. An absent
    // trigger never fires.
    let stop_after: Option<u64> = match plan {
        CheckpointPlan::StopAfter(at) => Some(at),
        _ => None,
    };
    let periodic_ms = match plan {
        CheckpointPlan::Periodic { every_s, .. } => every_s * 1000.0,
        _ => f64::INFINITY,
    };
    let mut next_due_ms = periodic_ms;
    // Processed-event index of the last periodic snapshot: the stop
    // predicate runs *before* popping an event, so without this guard
    // a cadence shorter than one event's wall time would re-fire at
    // the same index forever.
    let mut last_periodic: Option<u64> = None;
    loop {
        let horizon = if is_sharded {
            (window_start + window).min(sim_end)
        } else {
            sim_end
        };
        if is_sharded {
            shard::assign_shards(&mut shard_of, index.as_ref(), &positions, n_shards);
            sim.queue_mut().assign_owners(&shard_of);
            shard::extend_trajectories(&mut mobility, &shard_of, n_shards, horizon);
        }
        loop {
            let stopped = sim.run_until_stoppable(
                horizon,
                |now, ev, sched| match ev {
                    // lint:hot-path — the steady-state hello arm: after warmup the
                    // event loop is almost exclusively this; every per-event `Vec`
                    // lives in `scratch` (PR 3's zero-alloc guarantee, proven
                    // statically here and dynamically by `bench_hotpath`).
                    Ev::Hello(tx) => {
                        if abort.is_some() {
                            // A strict audit tripped: drain the queue without
                            // rescheduling so the loop terminates.
                            return;
                        }
                        let txi = tx.index();
                        if !node_table.is_alive(txi) {
                            // Dead (or not-yet-joined) node: keep its hello clock
                            // ticking at the base interval so a later revival
                            // re-enters the protocol, but touch nothing else — no
                            // RNG draws, no table reads, no counters.
                            sched.schedule_in(bi, Ev::Hello(tx));
                            return;
                        }
                        if !packet_time.is_zero() {
                            // The node is about to read its own table: commit a
                            // deferred reception whose window has closed.
                            commit_pending(
                                &mut pending[txi],
                                &mut node_table,
                                txi,
                                now,
                                packet_time,
                                false,
                                &mut deliveries,
                                tracing,
                                sink,
                            );
                        }
                        // Expire through the dirty-tracking entry point *before*
                        // the broadcast: entry death is election-relevant, and the
                        // skip decision below must see it. `prepare_broadcast`'s
                        // own expiry at the same instant is then a no-op.
                        node_table.expire(txi, now);
                        // A mute (tx-impaired) node holds this hello — no sequence
                        // number consumed, no metric stamped, nothing on the air —
                        // but it keeps listening and still runs its election below.
                        if node_table.can_transmit(txi) {
                            // Shard-local delivery buffers, indexed by the
                            // transmitter's owning shard (always 0 sequentially).
                            let scratch = &mut scratches[shard_of[txi] as usize];
                            let hello = node_table.prepare_broadcast(txi, now);
                            hello_broadcasts += 1;
                            if tracing {
                                sink.record(
                                    now,
                                    &TraceEvent::HelloTx {
                                        node: tx.value(),
                                        seq: hello.seq,
                                    },
                                );
                            }
                            if let Some(index) = index.as_mut() {
                                if now.saturating_sub(last_refresh) >= refresh_period {
                                    for (j, m) in mobility.iter_mut().enumerate() {
                                        positions[j] = m.position_at(now);
                                    }
                                    index.update_all(&positions);
                                    last_refresh = now;
                                    index_refreshes += 1;
                                    if tracing {
                                        sink.record(
                                            now,
                                            &TraceEvent::IndexRefresh { nodes: n as u32 },
                                        );
                                    }
                                }
                                positions[txi] = mobility[txi].position_at(now);
                                index.update(txi, positions[txi]);
                                let staleness = now.saturating_sub(last_refresh).as_secs_f64();
                                let radius = base_range
                                    + 2.0 * speed_bound * staleness
                                    + slack_teleport_pad(cfg, speed_bound, staleness);
                                scratch.ids.clear();
                                index.for_each_within(positions[txi], radius, |i| {
                                    scratch.ids.push(i)
                                });
                                // Id order keeps stateful loss models on the exact
                                // query sequence of the brute-force scan.
                                scratch.ids.sort_unstable();
                                scratch.candidates.clear();
                                for &i in &scratch.ids {
                                    if i == txi {
                                        continue;
                                    }
                                    positions[i] = mobility[i].position_at(now);
                                    index.update(i, positions[i]);
                                    scratch
                                        .candidates
                                        .push((NodeId::new(i as u32), positions[i]));
                                }
                                candidate_total += scratch.candidates.len() as u64;
                                engine.broadcast_among_into(
                                    tx,
                                    positions[txi],
                                    &scratch.candidates,
                                    now,
                                    &mut scratch.delivered,
                                    &mut scratch.lost,
                                );
                            } else {
                                for (j, m) in mobility.iter_mut().enumerate() {
                                    positions[j] = m.position_at(now);
                                }
                                candidate_total += (n - 1) as u64;
                                engine.broadcast_into(
                                    tx,
                                    &positions,
                                    now,
                                    &mut scratch.delivered,
                                    &mut scratch.lost,
                                );
                            }
                            if tracing {
                                for &dropped in &scratch.lost {
                                    sink.record(
                                        now,
                                        &TraceEvent::HelloLost {
                                            tx: tx.value(),
                                            rx: dropped.value(),
                                        },
                                    );
                                }
                            }
                            for &d in &scratch.delivered {
                                let r = d.receiver.index();
                                if !node_table.can_receive(r) {
                                    // Dead or deaf receivers are filtered *after* the
                                    // radio and loss stages, so the loss-model RNG
                                    // sequence is exactly the fault-free one.
                                    continue;
                                }
                                if packet_time.is_zero() {
                                    deliveries += 1;
                                    node_table.record(r, now, d.rx_power, &hello);
                                    if tracing {
                                        sink.record(
                                            now,
                                            &TraceEvent::HelloRx {
                                                tx: tx.value(),
                                                rx: d.receiver.value(),
                                                rx_power_dbm: d.rx_power.dbm(),
                                            },
                                        );
                                    }
                                    continue;
                                }
                                commit_pending(
                                    &mut pending[r],
                                    &mut node_table,
                                    r,
                                    now,
                                    packet_time,
                                    false,
                                    &mut deliveries,
                                    tracing,
                                    sink,
                                );
                                let collided = last_arrival[r]
                                    .is_some_and(|prev| now.saturating_sub(prev) < packet_time);
                                last_arrival[r] = Some(now);
                                if collided {
                                    // The earlier packet is still uncommitted iff it
                                    // arrived inside the window; destroy it too.
                                    if let Some(p) = pending[r].take() {
                                        collisions += 1;
                                        if tracing {
                                            sink.record(
                                                now,
                                                &TraceEvent::MacCollision {
                                                    tx: p.hello.sender.value(),
                                                    rx: d.receiver.value(),
                                                },
                                            );
                                        }
                                    }
                                    collisions += 1;
                                    if tracing {
                                        sink.record(
                                            now,
                                            &TraceEvent::MacCollision {
                                                tx: tx.value(),
                                                rx: d.receiver.value(),
                                            },
                                        );
                                    }
                                } else {
                                    pending[r] = Some(PendingRx {
                                        at: now,
                                        power: d.rx_power,
                                        hello,
                                    });
                                }
                            }
                        }
                        // Listen-before-decide: the paper's nodes compare their M
                        // "with those of its neighbors", so no role decision is
                        // taken until every neighbor has had one full broadcast
                        // interval to introduce itself.
                        if now >= bi {
                            if incremental && node_table.can_skip_election(txi) {
                                // Clean table + time-independent state machine: the
                                // election is provably a no-op. Debug builds run it
                                // on a clone anyway and panic on any divergence.
                                elections_skipped += 1;
                                #[cfg(debug_assertions)]
                                node_table.debug_assert_skip_sound(txi, now);
                            } else if let Some(tr) = node_table.evaluate(txi, now) {
                                if tracing {
                                    let node = tr.node.value();
                                    match (tr.from, tr.to) {
                                        // A head stepping down into another head's
                                        // cluster is a cluster merge.
                                        (Role::Clusterhead, Role::Member { ch }) => sink.record(
                                            now,
                                            &TraceEvent::ClusterMerge {
                                                node,
                                                into: ch.value(),
                                            },
                                        ),
                                        (Role::Clusterhead, _) => {
                                            sink.record(now, &TraceEvent::HeadResigned { node });
                                        }
                                        (_, Role::Clusterhead) => {
                                            sink.record(now, &TraceEvent::HeadElected { node });
                                        }
                                        // Member/undecided affiliation shuffles are
                                        // in `role_transitions`; not traced.
                                        _ => {}
                                    }
                                }
                                log.record(tr);
                            }
                        }
                        // §5 extension: mobility-adaptive hello pacing — mobile
                        // neighborhoods refresh faster (down to the configured
                        // floor), calm ones keep the base interval.
                        let next = if cfg.adaptive_bi_min_s > 0.0 {
                            const PIVOT_DB2: f64 = 2.0;
                            let m = node_table.node(txi).metric();
                            let secs = (cfg.bi_s * PIVOT_DB2 / (PIVOT_DB2 + m))
                                .clamp(cfg.adaptive_bi_min_s, cfg.bi_s);
                            SimTime::from_secs_f64(secs)
                        } else {
                            bi
                        };
                        sched.schedule_in(next, Ev::Hello(tx));
                    }
                    // lint:end-hot-path (sampling and fault arms run a handful of
                    // times per simulated second — cold by comparison)
                    Ev::Sample => {
                        if abort.is_some() {
                            return;
                        }
                        for (j, m) in mobility.iter_mut().enumerate() {
                            positions[j] = m.position_at(now);
                        }
                        if let Some(index) = index.as_mut() {
                            // The sampler evaluated everyone anyway: fold the free
                            // full refresh into the index.
                            index.update_all(&positions);
                            last_refresh = now;
                            index_refreshes += 1;
                            if tracing {
                                sink.record(now, &TraceEvent::IndexRefresh { nodes: n as u32 });
                            }
                        }
                        if !packet_time.is_zero() {
                            // Sampling reads every table: commit closed windows.
                            for r in 0..n {
                                commit_pending(
                                    &mut pending[r],
                                    &mut node_table,
                                    r,
                                    now,
                                    packet_time,
                                    false,
                                    &mut deliveries,
                                    tracing,
                                    sink,
                                );
                            }
                        }
                        observer(SampleView {
                            now,
                            positions: &positions,
                            nodes: node_table.nodes(),
                            tables: node_table.tables(),
                            alive: node_table.alive(),
                        });
                        // The series measure the *live* network. With every node
                        // alive (no fault plan) the filters are pass-throughs and
                        // the arithmetic — same iteration order, same divisor — is
                        // bit-identical to the unfiltered version.
                        let alive = node_table.alive();
                        let alive_n = node_table.alive_count();
                        let clusters = node_table
                            .nodes()
                            .iter()
                            .enumerate()
                            .filter(|(i, nd)| alive[*i] && nd.role().is_clusterhead())
                            .count();
                        cluster_series.push(now, clusters as f64);
                        let gateways = node_table
                            .nodes()
                            .iter()
                            .zip(node_table.tables())
                            .enumerate()
                            .filter(|(i, (nd, t))| alive[*i] && nd.is_gateway(t))
                            .count();
                        let gateway_fraction = if alive_n == 0 {
                            0.0
                        } else {
                            gateways as f64 / alive_n as f64
                        };
                        gateway_series.push(now, gateway_fraction);
                        let metric_sum = node_table
                            .nodes()
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| alive[*i])
                            .map(|(_, nd)| nd.metric())
                            .sum::<f64>();
                        let mean_metric = if alive_n == 0 {
                            0.0
                        } else {
                            metric_sum / alive_n as f64
                        };
                        metric_series.push(now, mean_metric);
                        // Cluster-healing probes: a probe opened by a clusterhead
                        // crash resolves once every surviving orphan has found a
                        // live clusterhead (or become one); orphans that crash
                        // drop out of their probe.
                        probes.retain_mut(|p| {
                            p.orphans.retain(|&o| {
                                node_table.is_alive(o) && !reaffiliated(&node_table, o)
                            });
                            if p.orphans.is_empty() {
                                let latency = now.saturating_sub(p.started).as_secs_f64();
                                probes_healed += 1;
                                healing_latency_sum += latency;
                                healing_latency_max = healing_latency_max.max(latency);
                                false
                            } else {
                                true
                            }
                        });
                        // Periodic Theorem-1 audit of the live topology. The
                        // protocol violates Theorem 1 *transiently* by design (CCI
                        // deferral, TP affiliation holding), so `warn` observes
                        // and `strict` is meant for converged/stationary
                        // scenarios where a violation is a genuine defect.
                        if audit_on && now >= warmup {
                            audit_checks += 1;
                            let mut ids = Vec::with_capacity(alive_n);
                            let mut roles = Vec::with_capacity(alive_n);
                            let mut pos = Vec::with_capacity(alive_n);
                            for (i, nd) in node_table.nodes().iter().enumerate() {
                                if alive[i] {
                                    ids.push(NodeId::new(i as u32));
                                    roles.push(nd.role());
                                    pos.push(positions[i]);
                                }
                            }
                            let adj =
                                mobic_core::centralized::Adjacency::unit_disk(&pos, cfg.tx_range_m);
                            let violations =
                                mobic_core::invariants::check_theorem1(&roles, &ids, &adj);
                            audit_violations += violations.len() as u64;
                            if !violations.is_empty() {
                                if tracing {
                                    for v in &violations {
                                        sink.record(now, &violation_event(v, &ids));
                                    }
                                }
                                if cfg.audit == AuditMode::Strict {
                                    // Structured failure, never a panic: flag the
                                    // run and let the queue drain.
                                    abort = Some((now, violations.len()));
                                    return;
                                }
                            }
                        }
                        sched.schedule_in(bi, Ev::Sample);
                    }
                    Ev::Fault(action) => {
                        if abort.is_some() {
                            return;
                        }
                        // Fault events are only scheduled when a plan exists, so
                        // the stream is always there; a missing one would mean a
                        // scheduling bug, and dropping the event is strictly
                        // safer than aborting the run.
                        let Some(rng) = fault_rng.as_mut() else {
                            return;
                        };
                        match action {
                            FaultAction::Crash { revive_after } => {
                                let Some(v) = pick_victim(&node_table, cfg.faults.target, rng)
                                else {
                                    return; // nobody left alive to crash
                                };
                                // A clusterhead crash opens a healing probe over
                                // its current live members.
                                if node_table.node(v).role() == Role::Clusterhead {
                                    let ch = NodeId::new(v as u32);
                                    let orphans: Vec<usize> = (0..n)
                                        .filter(|&j| {
                                            j != v
                                                && node_table.is_alive(j)
                                                && node_table.node(j).role()
                                                    == (Role::Member { ch })
                                        })
                                        .collect();
                                    if !orphans.is_empty() {
                                        probes_created += 1;
                                        probes.push(HealingProbe {
                                            started: now,
                                            orphans,
                                        });
                                    }
                                }
                                node_table.set_down(v);
                                pending[v] = None;
                                last_arrival[v] = None;
                                fault_counters.crashes += 1;
                                if tracing {
                                    sink.record(now, &TraceEvent::NodeDown { node: v as u32 });
                                }
                                if let Some(after) = revive_after {
                                    sched.schedule_in(
                                        after,
                                        Ev::Fault(FaultAction::Revive { node: v }),
                                    );
                                }
                            }
                            FaultAction::Revive { node } | FaultAction::Join { node } => {
                                if node_table.is_alive(node) {
                                    return;
                                }
                                node_table.bring_up(node, now);
                                if matches!(action, FaultAction::Revive { .. }) {
                                    fault_counters.recoveries += 1;
                                } else {
                                    fault_counters.late_joins += 1;
                                }
                                if tracing {
                                    sink.record(now, &TraceEvent::NodeUp { node: node as u32 });
                                }
                            }
                            FaultAction::Impair { mute } => {
                                let Some(v) = pick_victim(&node_table, cfg.faults.target, rng)
                                else {
                                    return;
                                };
                                if mute {
                                    node_table.set_mute(v, true);
                                    fault_counters.mute_spells += 1;
                                } else {
                                    node_table.set_deaf(v, true);
                                    fault_counters.deaf_spells += 1;
                                }
                                if tracing {
                                    sink.record(
                                        now,
                                        &TraceEvent::NodeImpaired {
                                            node: v as u32,
                                            mute,
                                        },
                                    );
                                }
                                sched.schedule_in(
                                    SimTime::from_secs_f64(cfg.faults.spell_s),
                                    Ev::Fault(FaultAction::Restore { node: v, mute }),
                                );
                            }
                            FaultAction::Restore { node, mute } => {
                                // A crash in the meantime already wiped the flag;
                                // restore only what is still impaired.
                                let impaired = node_table.is_alive(node)
                                    && if mute {
                                        node_table.is_mute(node)
                                    } else {
                                        node_table.is_deaf(node)
                                    };
                                if !impaired {
                                    return;
                                }
                                if mute {
                                    node_table.set_mute(node, false);
                                } else {
                                    node_table.set_deaf(node, false);
                                }
                                if tracing {
                                    sink.record(
                                        now,
                                        &TraceEvent::NodeRestored {
                                            node: node as u32,
                                            mute,
                                        },
                                    );
                                }
                            }
                        }
                    }
                },
                |processed| match stop_after {
                    Some(at) => processed == at,
                    None => {
                        processed & 0x3FF == 0
                            && last_periodic != Some(processed)
                            && wall_start.elapsed_ms() >= next_due_ms
                    }
                },
            );
            if !stopped {
                break;
            }
            // A checkpoint fires *between* events: flush the trace so
            // its cursor is durable, drain the queue into canonical
            // `(time, seq)` order, lift the complete live state into a
            // snapshot, and re-arm the queue (original seqs preserved)
            // so a periodic run continues unperturbed.
            if tracing {
                sink.sync();
            }
            let entries = sim.queue_mut().drain_canonical();
            for &(t, q_seq, ev) in &entries {
                sim.queue_mut().restore_entry(t, q_seq, ev);
            }
            let snap = SimSnapshot {
                config_hash: snapshot::semantic_config_hash(cfg),
                seed,
                now: sim.now(),
                events_processed: sim.events_processed(),
                next_seq: sim.queue_mut().next_seq(),
                queue: entries,
                window_start,
                node_table: node_table.clone(),
                positions: positions.clone(),
                last_refresh,
                fault_rng_word_pos: fault_rng.as_ref().map(|r| {
                    let pos = r.get_word_pos();
                    ((pos >> 64) as u64, pos as u64)
                }),
                loss: engine.loss().save_state(),
                propagation: engine.radio().propagation().save_state(),
                last_arrival: last_arrival.clone(),
                pending: pending.clone(),
                hello_broadcasts,
                deliveries,
                mac_collisions: collisions,
                candidate_total,
                index_refreshes,
                elections_skipped,
                log: log.clone(),
                cluster_series: cluster_series.clone(),
                gateway_series: gateway_series.clone(),
                metric_series: metric_series.clone(),
                faults: fault_counters,
                probes: probes.clone(),
                probes_created,
                probes_healed,
                healing_latency_sum,
                healing_latency_max,
                audit_checks,
                audit_violations,
                abort,
                trace: if tracing { sink.cursor() } else { None },
            };
            match plan {
                CheckpointPlan::StopAfter(_) => {
                    return Ok(RunOutcome::Suspended(Box::new(snap)));
                }
                CheckpointPlan::Periodic { dir, keep, .. } => {
                    // A failed snapshot write must not kill a healthy
                    // run — it only costs resume granularity.
                    let _ = snapshot::write_rotated(&snap, dir, keep);
                    last_periodic = Some(sim.events_processed());
                    next_due_ms = wall_start.elapsed_ms() + periodic_ms;
                }
                CheckpointPlan::None => unreachable!("stop trigger fired without a plan"),
            }
        }
        window_start = horizon;
        if horizon >= sim_end {
            break;
        }
    }
    if !packet_time.is_zero() {
        // End of run: nothing can overlap a still-pending reception
        // any more, so every one of them survived its window.
        for r in 0..n {
            commit_pending(
                &mut pending[r],
                &mut node_table,
                r,
                sim_end,
                packet_time,
                true,
                &mut deliveries,
                tracing,
                sink,
            );
        }
    }
    if let Some((at, violations)) = abort {
        return Err(RunError::AuditFailed {
            at_s: at.as_secs_f64(),
            violations,
        });
    }
    let wall_clock_ms = wall_start.elapsed_ms();
    let event_loop_ms = phase_clock.lap_ms();

    let shares = log.clusterhead_time_shares(n, warmup, sim_end.max(warmup + SimTime::SECOND));
    let ch_time_gini = mobic_metrics::gini(&shares);
    let distinct_clusterheads = log.distinct_clusterheads();
    // Interned kind labels: counting happens on `&'static str` keys
    // (`&str` and `String` order identically, so the one conversion at
    // the end preserves the map's key order byte-for-byte).
    let mut kind_counts = std::collections::BTreeMap::<&'static str, usize>::new();
    for tr in log.transitions() {
        if tr.at >= warmup {
            *kind_counts
                .entry(transition_kind_label(tr.from, tr.to))
                .or_insert(0) += 1;
        }
    }
    let transitions_by_kind = kind_counts
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let aggregate_ms = phase_clock.lap_ms();

    let healing = (probes_created > 0).then(|| HealingStats {
        probes: probes_created,
        healed: probes_healed,
        unhealed: probes_created - probes_healed,
        mean_latency_s: if probes_healed == 0 {
            0.0
        } else {
            healing_latency_sum / f64::from(probes_healed)
        },
        max_latency_s: healing_latency_max,
    });
    let audit = audit_on.then_some(AuditSummary {
        checks: audit_checks,
        violations: audit_violations,
    });

    Ok(RunOutcome::Done(Box::new(RunResult {
        algorithm: cfg.algorithm,
        seed,
        tx_range_m: cfg.tx_range_m,
        clusterhead_changes_total: log.clusterhead_changes(),
        clusterhead_changes: log.clusterhead_changes_after(warmup),
        affiliation_changes: log.affiliation_changes_after(warmup),
        avg_clusters: cluster_series.mean_after(warmup),
        gateway_fraction: gateway_series.mean_after(warmup),
        mean_aggregate_metric: metric_series.mean_after(warmup),
        cluster_series,
        hello_broadcasts,
        deliveries,
        mac_collisions: collisions,
        final_roles: node_table.nodes().iter().map(ClusterNode::role).collect(),
        transitions_by_kind,
        ch_time_gini,
        distinct_clusterheads,
        role_transitions: log.transitions().to_vec(),
        faults: fault_counters,
        healing,
        audit,
        perf: RunPerf {
            events: sim.events_processed(),
            hello_events: hello_broadcasts,
            indexed: use_indexed,
            mean_candidates: if hello_broadcasts == 0 {
                0.0
            } else {
                candidate_total as f64 / hello_broadcasts as f64
            },
            index_refreshes,
            wall_clock_ms,
            phase_ms: PhaseTimings {
                setup_ms,
                event_loop_ms,
                aggregate_ms,
                elections_skipped,
            },
        },
    })))
}

/// Build the [`RunManifest`] describing a finished run.
///
/// The manifest pairs the exact inputs (config echo + content hash +
/// seed) with the run's headline counters so a `results/*.json`
/// artifact can be audited without re-running the simulation. It is
/// a pure function of `(cfg, seed, result)` — no timestamps, no
/// host-specific data — so identical runs produce byte-identical
/// manifests.
///
/// # Examples
///
/// ```
/// use mobic_scenario::{manifest_for, run_scenario, ScenarioConfig};
///
/// let mut cfg = ScenarioConfig::paper_table1();
/// cfg.n_nodes = 8;
/// cfg.sim_time_s = 20.0;
/// let result = run_scenario(&cfg, 7).unwrap();
/// let manifest = manifest_for(&cfg, 7, &result);
/// assert_eq!(manifest.seed, 7);
/// assert_eq!(manifest.counters.hello_broadcasts, result.hello_broadcasts);
/// ```
pub fn manifest_for(cfg: &ScenarioConfig, seed: u64, result: &RunResult) -> RunManifest {
    // `ScenarioConfig` is plain data, so serialization is infallible
    // in practice; `Null` keeps the manifest well-formed rather than
    // aborting a sweep should that ever change.
    let config_json = serde_json::to_value(cfg).unwrap_or(serde_json::Value::Null);
    RunManifest {
        schema: mobic_trace::MANIFEST_SCHEMA,
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        config_hash: config_hash_for(cfg),
        config: config_json,
        seed,
        algorithm: cfg.algorithm.name().to_string(),
        indexed: result.perf.indexed,
        counters: ManifestCounters {
            events: result.perf.events,
            hello_broadcasts: result.hello_broadcasts,
            deliveries: result.deliveries,
            mac_collisions: result.mac_collisions,
            index_refreshes: result.perf.index_refreshes,
            clusterhead_changes_total: result.clusterhead_changes_total,
        },
    }
}

/// Content hash of a scenario's canonical (single-line) config JSON —
/// the same value a [`manifest_for`] manifest carries, reusable as
/// stable error/artifact context without building a full manifest.
#[must_use]
pub fn config_hash_for(cfg: &ScenarioConfig) -> String {
    // Through `Value` so the keys are canonically (alphabetically)
    // ordered, exactly as the manifest's config echo serializes.
    // Plain-data config makes both steps infallible in practice; the
    // fallbacks hash a stable sentinel instead of aborting.
    let value = serde_json::to_value(cfg).unwrap_or(serde_json::Value::Null);
    let canonical = serde_json::to_string(&value).unwrap_or_default();
    config_hash(&canonical)
}

/// Interned `from->to` label for transition-kind keys — the same
/// strings `format!("{from}->{to}")` over the compact role names would
/// produce, without allocating per transition.
fn transition_kind_label(from: Role, to: Role) -> &'static str {
    use Role::{Clusterhead, Member, Undecided};
    match (from, to) {
        (Undecided, Undecided) => "undecided->undecided",
        (Undecided, Clusterhead) => "undecided->ch",
        (Undecided, Member { .. }) => "undecided->member",
        (Clusterhead, Undecided) => "ch->undecided",
        (Clusterhead, Clusterhead) => "ch->ch",
        (Clusterhead, Member { .. }) => "ch->member",
        (Member { .. }, Undecided) => "member->undecided",
        (Member { .. }, Clusterhead) => "member->ch",
        (Member { .. }, Member { .. }) => "member->member",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::AlgorithmKind;

    fn small(alg: AlgorithmKind) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_table1();
        c.n_nodes = 12;
        c.sim_time_s = 60.0;
        c.tx_range_m = 250.0;
        c.algorithm = alg;
        c
    }

    #[test]
    fn route_ev_keys_match_event_ownership() {
        let k = route_ev(&Ev::Hello(NodeId::new(7)));
        assert_eq!((k.node, k.kind), (7, EV_KIND_HELLO));
        assert!(!k.is_global());
        assert!(route_ev(&Ev::Sample).is_global());
        assert_eq!(route_ev(&Ev::Sample).kind, EV_KIND_SAMPLE);
        assert!(route_ev(&Ev::Fault(FaultAction::Crash { revive_after: None })).is_global());
    }

    #[test]
    fn sharded_engine_is_byte_identical_across_shard_counts() {
        // The unit-level guarantee behind tests/sharded_equivalence:
        // serialized RunResults match the sequential engine exactly,
        // for the auto (0), degenerate (1), and multi-shard cases.
        let cfg = small(AlgorithmKind::Mobic);
        let want = serde_json::to_string(&run_scenario(&cfg, 3).unwrap()).unwrap();
        for shards in [0u32, 1, 2, 5] {
            let mut c = cfg;
            c.engine = Engine::Sharded;
            c.shards = shards;
            let got = serde_json::to_string(&run_scenario(&c, 3).unwrap()).unwrap();
            assert_eq!(want, got, "shards={shards}");
        }
    }

    #[test]
    fn runs_and_produces_sane_counts() {
        let cfg = small(AlgorithmKind::Mobic);
        let r = run_scenario(&cfg, 3).unwrap();
        // 12 nodes × 60 s / 2 s = 360 broadcasts (±1 per node for the
        // initial offset round landing inside the horizon).
        assert!(
            r.hello_broadcasts >= 348 && r.hello_broadcasts <= 372,
            "{}",
            r.hello_broadcasts
        );
        assert!(r.deliveries > 0);
        assert!(r.avg_clusters >= 1.0 && r.avg_clusters <= 12.0);
        assert_eq!(r.final_roles.len(), 12);
        assert_eq!(r.algorithm, AlgorithmKind::Mobic);
        assert!((0.0..=1.0).contains(&r.gateway_fraction));
        assert!(r.mean_aggregate_metric >= 0.0);
    }

    #[test]
    fn deterministic_across_invocations() {
        let cfg = small(AlgorithmKind::Mobic);
        let a = run_scenario(&cfg, 7).unwrap();
        let b = run_scenario(&cfg, 7).unwrap();
        assert_eq!(a.clusterhead_changes_total, b.clusterhead_changes_total);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.final_roles, b.final_roles);
        assert_eq!(a.avg_clusters, b.avg_clusters);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small(AlgorithmKind::Mobic);
        let a = run_scenario(&cfg, 1).unwrap();
        let b = run_scenario(&cfg, 2).unwrap();
        // Different placements → different delivery counts with
        // overwhelming probability.
        assert_ne!(a.deliveries, b.deliveries);
    }

    #[test]
    fn stationary_network_converges_and_stays_stable() {
        let mut cfg = small(AlgorithmKind::Lcc);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        let r = run_scenario(&cfg, 5).unwrap();
        // No motion → no steady-state clusterhead changes at all.
        assert_eq!(r.clusterhead_changes, 0, "static network must be stable");
        // Everyone decided.
        assert!(r.final_roles.iter().all(|x| *x != Role::Undecided));
    }

    #[test]
    fn stationary_mobic_matches_lowest_id_fixed_point() {
        // With no motion every M stays 0, so MOBIC degenerates to
        // Lowest-ID — their converged clusterings must coincide.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        let a = run_scenario(&cfg, 11).unwrap();
        let b = run_scenario(&cfg.with_algorithm(AlgorithmKind::Lcc), 11).unwrap();
        assert_eq!(a.final_roles, b.final_roles);
    }

    #[test]
    fn isolated_nodes_all_become_clusterheads() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.tx_range_m = 1.0; // nobody hears anybody
        let r = run_scenario(&cfg, 9).unwrap();
        assert_eq!(r.deliveries, 0);
        assert!(r.final_roles.iter().all(|x| *x == Role::Clusterhead));
        assert_eq!(r.avg_clusters, 12.0);
    }

    #[test]
    fn all_algorithms_run() {
        for alg in AlgorithmKind::ALL {
            let r = run_scenario(&small(alg), 4).unwrap();
            assert!(r.avg_clusters >= 1.0, "{alg}");
        }
    }

    #[test]
    fn all_mobility_kinds_run() {
        let kinds = [
            MobilityKind::RandomWaypoint,
            MobilityKind::RandomWalk { epoch_s: 10.0 },
            MobilityKind::GaussMarkov { alpha: 0.8 },
            MobilityKind::Rpgm {
                groups: 3,
                member_radius_m: 40.0,
            },
            MobilityKind::Highway {
                lanes: 4,
                bidirectional: true,
            },
            MobilityKind::ConferenceHall { booths: 5 },
            MobilityKind::Manhattan {
                block_m: 100.0,
                p_turn: 0.5,
            },
            MobilityKind::Stationary,
        ];
        for k in kinds {
            let mut cfg = small(AlgorithmKind::Mobic);
            cfg.mobility = k;
            cfg.sim_time_s = 30.0;
            let r = run_scenario(&cfg, 2).unwrap();
            assert!(r.hello_broadcasts > 0, "{k:?}");
        }
    }

    #[test]
    fn all_propagation_and_loss_kinds_run() {
        for prop in [
            PropagationKind::FreeSpace,
            PropagationKind::TwoRayGround,
            PropagationKind::LogDistance { exponent: 3.0 },
            PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 },
            PropagationKind::NakagamiFreeSpace { m: 1.0 },
        ] {
            for l in [
                LossKind::None,
                LossKind::Bernoulli { p: 0.1 },
                LossKind::BurstyPreset,
            ] {
                let mut cfg = small(AlgorithmKind::Mobic);
                cfg.sim_time_s = 30.0;
                cfg.propagation = prop;
                cfg.loss = l;
                let r = run_scenario(&cfg, 6).unwrap();
                assert!(r.hello_broadcasts > 0, "{prop:?} {l:?}");
            }
        }
    }

    #[test]
    fn bernoulli_loss_reduces_deliveries() {
        let cfg = small(AlgorithmKind::Mobic);
        let clean = run_scenario(&cfg, 8).unwrap();
        let mut lossy_cfg = cfg;
        lossy_cfg.loss = LossKind::Bernoulli { p: 0.5 };
        let lossy = run_scenario(&lossy_cfg, 8).unwrap();
        let ratio = lossy.deliveries as f64 / clean.deliveries as f64;
        assert!((ratio - 0.5).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn collision_window_destroys_some_receptions() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.packet_time_s = 0.0;
        let clean = run_scenario(&cfg, 13).unwrap();
        assert_eq!(clean.mac_collisions, 0);
        cfg.packet_time_s = 0.02; // generous window to force collisions
        let noisy = run_scenario(&cfg, 13).unwrap();
        // A vulnerable-window overlap destroys BOTH packets, so
        // collisions always come in groups of at least two.
        assert!(noisy.mac_collisions >= 2, "no collisions observed");
        assert_eq!(
            noisy.deliveries + noisy.mac_collisions,
            clean.deliveries,
            "collisions must partition the same reception set"
        );
        assert!(noisy.deliveries < clean.deliveries);
    }

    #[test]
    fn extreme_collision_window_keeps_partition_invariant() {
        // A window as long as the broadcast interval makes nearly
        // every reception overlap another, exercising pending-chain
        // destruction and the end-of-run flush; the partition between
        // committed and destroyed receptions must never double-count.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.n_nodes = 3;
        cfg.sim_time_s = 30.0;
        cfg.packet_time_s = 0.0;
        let clean = run_scenario(&cfg, 5).unwrap();
        cfg.packet_time_s = 2.0; // window == BI: maximal overlap
        let noisy = run_scenario(&cfg, 5).unwrap();
        assert_eq!(noisy.deliveries + noisy.mac_collisions, clean.deliveries);
    }

    #[test]
    fn manhattan_mobility_runs() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.mobility = MobilityKind::Manhattan {
            block_m: 100.0,
            p_turn: 0.5,
        };
        cfg.sim_time_s = 40.0;
        let r = run_scenario(&cfg, 3).unwrap();
        assert!(r.hello_broadcasts > 0);
    }

    #[test]
    fn adaptive_bi_sends_more_hellos_in_mobile_networks() {
        let mut cfg = small(AlgorithmKind::Mobic);
        let fixed = run_scenario(&cfg, 21).unwrap();
        cfg.adaptive_bi_min_s = 0.5;
        let adaptive = run_scenario(&cfg, 21).unwrap();
        assert!(
            adaptive.hello_broadcasts > fixed.hello_broadcasts,
            "adaptive {} vs fixed {}",
            adaptive.hello_broadcasts,
            fixed.hello_broadcasts
        );
        // Static network: everyone's M stays 0 → base rate.
        let mut calm = small(AlgorithmKind::Mobic);
        calm.mobility = MobilityKind::Stationary;
        calm.adaptive_bi_min_s = 0.5;
        let calm_adaptive = run_scenario(&calm, 21).unwrap();
        let mut calm_fixed_cfg = small(AlgorithmKind::Mobic);
        calm_fixed_cfg.mobility = MobilityKind::Stationary;
        let calm_fixed = run_scenario(&calm_fixed_cfg, 21).unwrap();
        assert_eq!(calm_adaptive.hello_broadcasts, calm_fixed.hello_broadcasts);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.n_nodes = 0;
        assert!(run_scenario(&cfg, 0).is_err());
    }

    #[test]
    fn fairness_fields_are_consistent() {
        let r = run_scenario(&small(AlgorithmKind::Mobic), 31).unwrap();
        assert!((0.0..1.0).contains(&r.ch_time_gini), "{}", r.ch_time_gini);
        assert!(r.distinct_clusterheads >= 1);
        assert!(r.distinct_clusterheads <= 12);
        // The transition trace is complete: CS can be recomputed.
        let warmup = SimTime::from_secs_f64(small(AlgorithmKind::Mobic).warmup_s);
        let recount = r
            .role_transitions
            .iter()
            .filter(|t| t.at >= warmup && t.is_clusterhead_change())
            .count();
        assert_eq!(recount, r.clusterhead_changes);
    }

    #[test]
    fn fast_path_taken_by_default_for_deterministic_propagation() {
        let cfg = small(AlgorithmKind::Mobic);
        let r = run_scenario(&cfg, 3).unwrap();
        assert!(r.perf.indexed, "free space must take the indexed path");
        assert_eq!(r.perf.hello_events, r.hello_broadcasts);
        assert!(r.perf.events >= r.hello_broadcasts);
        assert!(r.perf.index_refreshes > 0);
        assert!(r.perf.mean_candidates > 0.0 && r.perf.mean_candidates <= 11.0);
    }

    #[test]
    fn stochastic_propagation_falls_back_to_brute_force() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.propagation = PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 };
        cfg.sim_time_s = 30.0;
        let r = run_scenario(&cfg, 3).unwrap();
        assert!(!r.perf.indexed);
        assert_eq!(r.perf.index_refreshes, 0);
        assert_eq!(r.perf.mean_candidates, 11.0); // always n − 1
    }

    #[test]
    fn fast_path_off_matches_on_exactly() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.fast_path = FastPath::Off;
        let brute = run_scenario(&cfg, 17).unwrap();
        assert!(!brute.perf.indexed);
        cfg.fast_path = FastPath::On;
        let fast = run_scenario(&cfg, 17).unwrap();
        assert!(fast.perf.indexed);
        assert_eq!(fast.deliveries, brute.deliveries);
        assert_eq!(fast.hello_broadcasts, brute.hello_broadcasts);
        assert_eq!(fast.final_roles, brute.final_roles);
        assert_eq!(fast.cluster_series, brute.cluster_series);
        assert_eq!(fast.role_transitions.len(), brute.role_transitions.len());
        assert_eq!(fast.mean_aggregate_metric, brute.mean_aggregate_metric);
        // The indexed path should actually prune work at this density.
        assert!(fast.perf.mean_candidates <= brute.perf.mean_candidates);
    }

    #[test]
    fn forced_fast_path_with_stochastic_propagation_is_rejected() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.fast_path = FastPath::On;
        cfg.propagation = PropagationKind::NakagamiFreeSpace { m: 3.0 };
        assert!(matches!(
            run_scenario(&cfg, 0),
            Err(RunError::Config(ConfigError::FastPathUnsupported { .. }))
        ));
    }

    #[test]
    fn result_serializes() {
        let r = run_scenario(&small(AlgorithmKind::Lcc), 1).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.clusterhead_changes, r.clusterhead_changes);
    }

    /// In-memory sink tallying events by kind, for counter identities.
    #[derive(Default)]
    struct CountingSink {
        tx: u64,
        rx: u64,
        lost: u64,
        collisions: u64,
        elected: u64,
        resigned: u64,
        merged: u64,
        refreshes: u64,
        down: u64,
        up: u64,
        impaired: u64,
        restored: u64,
        violations: u64,
    }

    impl TraceSink for CountingSink {
        fn record(&mut self, _at: SimTime, event: &TraceEvent) {
            match event {
                TraceEvent::HelloTx { .. } => self.tx += 1,
                TraceEvent::HelloRx { .. } => self.rx += 1,
                TraceEvent::HelloLost { .. } => self.lost += 1,
                TraceEvent::MacCollision { .. } => self.collisions += 1,
                TraceEvent::HeadElected { .. } => self.elected += 1,
                TraceEvent::HeadResigned { .. } => self.resigned += 1,
                TraceEvent::ClusterMerge { .. } => self.merged += 1,
                TraceEvent::IndexRefresh { .. } => self.refreshes += 1,
                TraceEvent::NodeDown { .. } => self.down += 1,
                TraceEvent::NodeUp { .. } => self.up += 1,
                TraceEvent::NodeImpaired { .. } => self.impaired += 1,
                TraceEvent::NodeRestored { .. } => self.restored += 1,
                TraceEvent::InvariantViolation { .. } => self.violations += 1,
            }
        }
    }

    #[test]
    fn traced_event_counts_match_result_counters() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.loss = LossKind::Bernoulli { p: 0.2 };
        cfg.packet_time_s = 0.005;
        let mut sink = CountingSink::default();
        let r = run_scenario_traced(&cfg, 19, &mut sink).unwrap();
        assert_eq!(sink.tx, r.hello_broadcasts);
        assert_eq!(sink.rx, r.deliveries);
        assert_eq!(sink.collisions, r.mac_collisions);
        assert_eq!(sink.refreshes, r.perf.index_refreshes);
        assert_eq!(
            sink.elected + sink.resigned + sink.merged,
            r.clusterhead_changes_total,
            "head elections + resignations + merges must equal total CH changes"
        );
        assert!(
            sink.lost > 0,
            "Bernoulli loss must surface hello_lost events"
        );
    }

    #[test]
    fn lossless_runs_emit_no_loss_events() {
        let cfg = small(AlgorithmKind::Mobic);
        let mut sink = CountingSink::default();
        run_scenario_traced(&cfg, 19, &mut sink).unwrap();
        assert_eq!(sink.lost, 0);
        assert_eq!(sink.collisions, 0);
    }

    #[test]
    fn tracing_never_perturbs_the_run() {
        // The observational guarantee: serialized RunResult is
        // byte-identical whether the run is untraced, null-sinked,
        // or fully traced.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.loss = LossKind::Bernoulli { p: 0.3 };
        cfg.packet_time_s = 0.005;
        let plain = serde_json::to_string(&run_scenario(&cfg, 23).unwrap()).unwrap();
        let nulled =
            serde_json::to_string(&run_scenario_traced(&cfg, 23, &mut NullSink).unwrap()).unwrap();
        let mut sink = CountingSink::default();
        let traced =
            serde_json::to_string(&run_scenario_traced(&cfg, 23, &mut sink).unwrap()).unwrap();
        assert_eq!(plain, nulled);
        assert_eq!(plain, traced);
    }

    #[test]
    fn jsonl_traces_are_byte_identical_across_invocations() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.loss = LossKind::Bernoulli { p: 0.1 };
        let capture = |c: &ScenarioConfig| {
            let mut sink = mobic_trace::JsonlSink::new(Vec::new());
            run_scenario_traced(c, 29, &mut sink).unwrap();
            sink.finish().unwrap()
        };
        let a = capture(&cfg);
        let b = capture(&cfg);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same (cfg, seed) must yield identical traces");
    }

    #[test]
    fn phase_timings_are_populated_and_skipped_by_serde() {
        let r = run_scenario(&small(AlgorithmKind::Mobic), 3).unwrap();
        assert!(r.perf.phase_ms.total_ms() > 0.0);
        assert!(r.perf.phase_ms.event_loop_ms > 0.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("phase_ms"),
            "phase timings must not serialize"
        );
        assert!(!json.contains("wall_clock_ms"));
    }

    #[test]
    fn incremental_reclustering_matches_full_exactly() {
        // The dirty-set skip must be invisible in every serialized
        // byte of the result, across algorithm families and with a
        // stateful loss model in play.
        for alg in [
            AlgorithmKind::Mobic,
            AlgorithmKind::LowestId,
            AlgorithmKind::Wca,
        ] {
            let mut cfg = small(alg);
            cfg.loss = LossKind::Bernoulli { p: 0.2 };
            cfg.recluster = Recluster::Full;
            let full = serde_json::to_string(&run_scenario(&cfg, 37).unwrap()).unwrap();
            cfg.recluster = Recluster::Incremental;
            let incr = serde_json::to_string(&run_scenario(&cfg, 37).unwrap()).unwrap();
            assert_eq!(full, incr, "{alg}");
        }
    }

    #[test]
    fn incremental_reclustering_actually_skips_on_calm_networks() {
        // A stationary network converges and then every election is a
        // provable no-op; under `Full` the counter must stay zero.
        let mut cfg = small(AlgorithmKind::Lcc);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        let incr = run_scenario(&cfg, 5).unwrap();
        assert!(
            incr.perf.phase_ms.elections_skipped > 0,
            "stationary run skipped nothing"
        );
        cfg.recluster = Recluster::Full;
        let full = run_scenario(&cfg, 5).unwrap();
        assert_eq!(full.perf.phase_ms.elections_skipped, 0);
        assert_eq!(full.final_roles, incr.final_roles);
    }

    #[test]
    fn manifest_is_deterministic_and_echoes_the_run() {
        let cfg = small(AlgorithmKind::Mobic);
        let r = run_scenario(&cfg, 41).unwrap();
        let a = manifest_for(&cfg, 41, &r);
        let b = manifest_for(&cfg, 41, &r);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.schema, mobic_trace::MANIFEST_SCHEMA);
        assert_eq!(a.seed, 41);
        assert_eq!(a.algorithm, "mobic");
        assert!(a.config_hash.starts_with("fnv1a64:"));
        assert_eq!(a.counters.hello_broadcasts, r.hello_broadcasts);
        assert_eq!(a.counters.deliveries, r.deliveries);
        assert_eq!(a.counters.events, r.perf.events);
        // A different config must hash differently.
        let mut other = cfg;
        other.n_nodes += 1;
        let r2 = run_scenario(&other, 41).unwrap();
        assert_ne!(manifest_for(&other, 41, &r2).config_hash, a.config_hash);
    }

    #[test]
    fn config_hash_for_matches_the_manifest() {
        let cfg = small(AlgorithmKind::Mobic);
        let r = run_scenario(&cfg, 2).unwrap();
        assert_eq!(manifest_for(&cfg, 2, &r).config_hash, config_hash_for(&cfg));
    }

    #[test]
    fn fault_free_results_omit_every_fault_key() {
        let r = run_scenario(&small(AlgorithmKind::Mobic), 3).unwrap();
        assert!(r.faults.is_empty());
        assert!(r.healing.is_none());
        assert!(r.audit.is_none());
        let json = serde_json::to_string(&r).unwrap();
        assert!(
            !json.contains("\"faults\""),
            "fault-free JSON must stay unchanged"
        );
        assert!(!json.contains("\"healing\""));
        assert!(!json.contains("\"audit\""));
    }

    #[test]
    fn crashes_are_counted_traced_and_reduce_hello_traffic() {
        let cfg = small(AlgorithmKind::Mobic);
        let clean = run_scenario(&cfg, 3).unwrap();
        let mut faulty = cfg;
        faulty.faults.crashes = 6;
        let mut sink = CountingSink::default();
        let r = run_scenario_traced(&faulty, 3, &mut sink).unwrap();
        assert_eq!(r.faults.crashes, 6);
        assert_eq!(sink.down, 6);
        assert_eq!(sink.up, 0);
        assert!(
            r.hello_broadcasts < clean.hello_broadcasts,
            "dead nodes must stop broadcasting: {} vs {}",
            r.hello_broadcasts,
            clean.hello_broadcasts
        );
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"faults\""));
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, r.faults);
    }

    #[test]
    fn recoveries_revive_crashed_nodes() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.faults.recoveries = 2;
        cfg.faults.recovery_after_s = 5.0;
        cfg.faults.until_s = 40.0; // leave room for the revival to fire
        let mut sink = CountingSink::default();
        let r = run_scenario_traced(&cfg, 3, &mut sink).unwrap();
        assert_eq!(r.faults.crashes, 2);
        assert_eq!(r.faults.recoveries, 2);
        assert_eq!(sink.down, 2);
        assert_eq!(sink.up, 2);
    }

    #[test]
    fn late_joiners_are_withheld_until_their_join_fires() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.faults.late_joins = 4;
        cfg.faults.until_s = 30.0;
        let r = run_scenario(&cfg, 3).unwrap();
        assert_eq!(r.faults.late_joins, 4);
        let clean = run_scenario(&small(AlgorithmKind::Mobic), 3).unwrap();
        assert!(
            r.hello_broadcasts < clean.hello_broadcasts,
            "withheld nodes must not broadcast before joining"
        );
        // Everyone is in the network by the end of the run.
        assert_eq!(r.final_roles.len(), 12);
    }

    #[test]
    fn impairment_spells_fire_and_restore() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.faults.deaf_spells = 2;
        cfg.faults.mute_spells = 2;
        cfg.faults.spell_s = 5.0;
        cfg.faults.until_s = 40.0; // spells end inside the horizon
        let mut sink = CountingSink::default();
        let r = run_scenario_traced(&cfg, 7, &mut sink).unwrap();
        assert_eq!(r.faults.deaf_spells, 2);
        assert_eq!(r.faults.mute_spells, 2);
        assert_eq!(sink.impaired, 4);
        // Overlapping spells on one node coalesce into a single
        // restore, so restored ∈ [2, 4].
        assert!(
            sink.restored >= 2 && sink.restored <= 4,
            "{}",
            sink.restored
        );
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.faults.crashes = 2;
        cfg.faults.recoveries = 1;
        cfg.faults.late_joins = 2;
        cfg.faults.deaf_spells = 1;
        cfg.faults.mute_spells = 1;
        let a = serde_json::to_string(&run_scenario(&cfg, 11).unwrap()).unwrap();
        let b = serde_json::to_string(&run_scenario(&cfg, 11).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn targeted_clusterhead_crash_opens_a_healing_probe() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.sim_time_s = 120.0;
        cfg.faults.crashes = 1;
        cfg.faults.target = crate::FaultTarget::Clusterhead;
        cfg.faults.from_s = 30.0; // let the clustering converge first
        cfg.faults.until_s = 60.0;
        let r = run_scenario(&cfg, 3).unwrap();
        assert_eq!(r.faults.crashes, 1);
        if let Some(h) = r.healing {
            assert_eq!(h.probes, 1);
            assert_eq!(h.healed + h.unhealed, 1);
            if h.healed == 1 {
                assert!(h.mean_latency_s > 0.0 && h.mean_latency_s <= 120.0);
                assert!(h.max_latency_s >= h.mean_latency_s);
            }
        }
    }

    #[test]
    fn warn_audit_observes_without_changing_the_run() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.audit = crate::AuditMode::Warn;
        let r = run_scenario(&cfg, 3).unwrap();
        let a = r.audit.expect("warn audit reports a summary");
        assert!(a.checks > 0, "warmup 20 s < sim 60 s: audits must run");
        let baseline = run_scenario(&small(AlgorithmKind::Mobic), 3).unwrap();
        assert_eq!(r.final_roles, baseline.final_roles);
        assert_eq!(r.deliveries, baseline.deliveries);
        assert_eq!(r.cluster_series, baseline.cluster_series);
    }

    #[test]
    fn strict_audit_fails_fast_on_undecided_startup() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.audit = crate::AuditMode::Strict;
        cfg.warmup_s = 0.0;
        // The first sampling instant (t = BI) still has every node
        // undecided — listen-before-decide holds all decisions for one
        // full interval — so a zero-warmup strict audit must trip
        // deterministically, as a structured error, never a panic.
        match run_scenario(&cfg, 3) {
            Err(RunError::AuditFailed { at_s, violations }) => {
                assert!((at_s - cfg.bi_s).abs() < 1e-9, "tripped at {at_s}");
                assert!(violations > 0);
            }
            other => panic!("expected AuditFailed, got {other:?}"),
        }
    }

    #[test]
    fn strict_audit_passes_on_a_converged_stationary_network() {
        let mut cfg = small(AlgorithmKind::Lcc);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        cfg.warmup_s = 60.0;
        cfg.audit = crate::AuditMode::Strict;
        let r = run_scenario(&cfg, 5).unwrap();
        let a = r.audit.expect("summary present when auditing");
        assert!(a.checks > 0);
        assert_eq!(a.violations, 0);
    }

    #[test]
    fn crash_events_appear_in_jsonl_traces() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.faults.crashes = 1;
        let mut sink = mobic_trace::JsonlSink::new(Vec::new());
        run_scenario_traced(&cfg, 3, &mut sink).unwrap();
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        assert!(
            text.contains("\"kind\":\"node_down\""),
            "trace missing node_down"
        );
    }

    /// Suspends a run after `after` events, panicking if it finished
    /// first (callers pick kill points well inside the run).
    fn suspend_at(cfg: &ScenarioConfig, seed: u64, after: u64) -> crate::SimSnapshot {
        match run_scenario_until(cfg, seed, after, &mut NullSink).unwrap() {
            RunOutcome::Suspended(snap) => *snap,
            RunOutcome::Done(_) => panic!("run completed before event {after}"),
        }
    }

    #[test]
    fn kill_and_resume_is_byte_identical() {
        let cfg = small(AlgorithmKind::Mobic);
        let want = serde_json::to_string(&run_scenario(&cfg, 7).unwrap()).unwrap();
        for after in [1u64, 17, 150, 350] {
            let snap = suspend_at(&cfg, 7, after);
            assert_eq!(snap.events_processed(), after);
            let resumed = run_scenario_resumed(&cfg, 7, snap, &mut NullSink).unwrap();
            assert_eq!(
                serde_json::to_string(&resumed).unwrap(),
                want,
                "kill at event {after}"
            );
        }
    }

    #[test]
    fn kill_and_resume_preserves_trace_bytes() {
        let cfg = small(AlgorithmKind::Mobic);
        let mut full = mobic_trace::JsonlSink::new(Vec::new());
        run_scenario_traced(&cfg, 5, &mut full).unwrap();
        let reference = full.finish().unwrap();

        // Interrupted run: trace into one buffer up to the kill point,
        // then replay the checkpoint cursor onto a fresh sink seeded
        // with the durable prefix (the in-memory analog of
        // JsonlSink::resume truncating the file tail).
        let mut head = mobic_trace::JsonlSink::new(Vec::new());
        let snap = match run_scenario_until(&cfg, 5, 150, &mut head).unwrap() {
            RunOutcome::Suspended(snap) => *snap,
            RunOutcome::Done(_) => panic!("run completed before the kill point"),
        };
        let cursor = snap.trace_cursor().expect("traced run has a cursor");
        let mut bytes = head.finish().unwrap();
        bytes.truncate(usize::try_from(cursor.bytes).unwrap());
        let mut tail = mobic_trace::JsonlSink::new(Vec::new());
        run_scenario_resumed(&cfg, 5, snap, &mut tail).unwrap();
        bytes.extend_from_slice(&tail.finish().unwrap());
        assert_eq!(bytes, reference);
    }

    #[test]
    fn resume_crosses_engines_and_schedulers() {
        // A snapshot is queue-implementation-agnostic: suspend under
        // the default heap/sequential pair, resume under every other
        // engine × scheduler combination — bytes must not move.
        let cfg = small(AlgorithmKind::Mobic);
        let want = serde_json::to_string(&run_scenario(&cfg, 11).unwrap()).unwrap();
        for (engine, shards, scheduler) in [
            (Engine::Sequential, 0u32, Scheduler::Calendar),
            (Engine::Sharded, 2, Scheduler::Heap),
            (Engine::Sharded, 3, Scheduler::Calendar),
        ] {
            let snap = suspend_at(&cfg, 11, 200);
            let mut resume_cfg = cfg;
            resume_cfg.engine = engine;
            resume_cfg.shards = shards;
            resume_cfg.scheduler = scheduler;
            let resumed = run_scenario_resumed(&resume_cfg, 11, snap, &mut NullSink).unwrap();
            assert_eq!(
                serde_json::to_string(&resumed).unwrap(),
                want,
                "resume under {engine:?}/{shards}/{scheduler:?}"
            );
        }
    }

    #[test]
    fn kill_and_resume_covers_faults_and_stateful_channel() {
        // The hard state: a live fault RNG stream mid-plan, Gilbert–
        // Elliott loss channels mid-burst, and shadowing draws — all
        // must restore positionally for byte-identity.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.faults.crashes = 2;
        cfg.faults.recoveries = 1;
        cfg.faults.deaf_spells = 1;
        cfg.loss = LossKind::BurstyPreset;
        cfg.propagation = PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 };
        cfg.fast_path = FastPath::Off; // stochastic propagation
        let want = serde_json::to_string(&run_scenario(&cfg, 13).unwrap()).unwrap();
        for after in [50u64, 300] {
            let snap = suspend_at(&cfg, 13, after);
            let resumed = run_scenario_resumed(&cfg, 13, snap, &mut NullSink).unwrap();
            assert_eq!(
                serde_json::to_string(&resumed).unwrap(),
                want,
                "kill at event {after}"
            );
        }
    }

    #[test]
    fn resume_gate_rejects_foreign_snapshots() {
        let cfg = small(AlgorithmKind::Mobic);
        let snap = suspend_at(&cfg, 7, 100);
        // Wrong seed.
        assert!(matches!(
            run_scenario_resumed(&cfg, 8, snap.clone(), &mut NullSink),
            Err(RunError::SnapshotMismatch { .. })
        ));
        // Semantically different config.
        let mut other = cfg;
        other.algorithm = AlgorithmKind::Lcc;
        assert!(matches!(
            run_scenario_resumed(&other, 7, snap, &mut NullSink),
            Err(RunError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn stop_beyond_the_horizon_completes_normally() {
        let cfg = small(AlgorithmKind::Mobic);
        let want = serde_json::to_string(&run_scenario(&cfg, 7).unwrap()).unwrap();
        match run_scenario_until(&cfg, 7, u64::MAX, &mut NullSink).unwrap() {
            RunOutcome::Done(result) => {
                assert_eq!(serde_json::to_string(&*result).unwrap(), want);
            }
            RunOutcome::Suspended(_) => panic!("unreachable stop point must not suspend"),
        }
    }

    #[test]
    fn checkpointed_run_writes_snapshots_and_resumes() {
        // End-to-end through run_scenario_checkpointed: a pathological
        // cadence (checkpoint constantly) still finishes with the
        // reference bytes, leaves at most `keep` valid snapshots
        // behind, and the newest one resumes to the same bytes.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.checkpoint = crate::CheckpointPolicy {
            every_s: 1e-9,
            keep: 2,
        };
        let dir = std::env::temp_dir().join("mobic-runner-ckpt-test");
        let _ = std::fs::remove_dir_all(&dir);
        let plain = small(AlgorithmKind::Mobic);
        let want = serde_json::to_string(&run_scenario(&plain, 7).unwrap()).unwrap();
        let r = run_scenario_checkpointed(&cfg, 7, &dir, None, &mut NullSink).unwrap();
        assert_eq!(serde_json::to_string(&r).unwrap(), want);
        let (snap, rejected) = crate::latest_snapshot(&dir);
        let snap = snap.expect("periodic checkpoints were written");
        assert_eq!(rejected, 0);
        let resumed = run_scenario_checkpointed(&cfg, 7, &dir, Some(snap), &mut NullSink).unwrap();
        assert_eq!(serde_json::to_string(&resumed).unwrap(), want);
        std::fs::remove_dir_all(&dir).ok();
    }
}
