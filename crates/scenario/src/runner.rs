//! The end-to-end simulation runner.
//!
//! `run_scenario` is this workspace's equivalent of an ns-2 run: it
//! wires mobility → radio → delivery → neighbor tables → clustering,
//! drives the discrete-event loop for the configured simulated time,
//! and returns every measurement the paper's figures need.
//!
//! # Protocol timeline (per node, mirroring §3.2 / §4.1)
//!
//! Each node broadcasts a hello every `BI` seconds, starting at a
//! random offset in `[0, BI)` (nodes are not synchronized, as in
//! ns-2). At each of its broadcast instants the node:
//!
//! 1. expires stale neighbors (`TP`),
//! 2. computes its aggregate mobility `M` from the stored `RxPr`
//!    pairs and stamps it (plus role) onto the hello,
//! 3. the delivery engine hands the hello to every in-range receiver
//!    with its measured `RxPr`, which the receivers store,
//! 4. the node runs one clustering evaluation and possibly changes
//!    role (recorded into the transition log).
//!
//! Once per `BI` a sampler records the number of clusterheads, the
//! gateway fraction and the population-mean metric.
//!
//! # The spatial-index fast path
//!
//! A naive hello broadcast re-evaluates every node's trajectory and
//! scans the whole population — O(n²) work per broadcast interval.
//! When the propagation model is deterministic
//! ([`Propagation::is_deterministic`]) the true receiver set is
//! exactly the nominal-range disk, so the runner instead maintains a
//! [`GridIndex`] of *approximate* positions (refreshed every `BI/2`)
//! and, per hello, evaluates exact positions only for the transmitter
//! and the candidates returned by a range query with a conservative
//! slack radius (`tx_range + 2·v_bound·staleness`). No true receiver
//! can be missed, candidates are visited in id order, and trajectory
//! sampling is order-independent by contract — so the fast path is
//! **bit-identical** to the brute-force scan (asserted by the
//! `fast_path_equivalence` suite). Stochastic propagation models fall
//! back to brute force; [`FastPath`] in the config selects the policy.

use mobic_core::{ClusterAdvert, ClusterConfig, ClusterNode, ClusterTable, NodeTable, Role};
use mobic_geom::{GridIndex, Rect, Vec2};
use mobic_metrics::{TimeSeries, TransitionLog};
use mobic_mobility::{
    ConferenceHall, ConferenceHallParams, GaussMarkov, GaussMarkovParams, Highway, HighwayParams,
    Manhattan, ManhattanParams, Mobility, RandomWalk, RandomWalkParams, RandomWaypoint,
    RandomWaypointParams, RpgmGroup, RpgmParams, Stationary,
};
use mobic_net::{loss, loss::LossModel, Delivery, DeliveryEngine, Hello, NodeId};
use mobic_radio::{
    Dbm, FreeSpace, LogDistance, Nakagami, Propagation, Radio, Shadowed, TwoRayGround,
};
use mobic_sim::{rng::SeedSplitter, SimTime, Simulation};
use mobic_trace::{
    config_hash, ManifestCounters, NullSink, PhaseClock, PhaseTimings, RunManifest, TraceEvent,
    TraceSink,
};
use serde::{Deserialize, Serialize};

use crate::{
    ConfigError, FastPath, LossKind, MobilityKind, PropagationKind, Recluster, ScenarioConfig,
};

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The algorithm that ran.
    pub algorithm: mobic_core::AlgorithmKind,
    /// The master seed of the run.
    pub seed: u64,
    /// The configured transmission range (echoed for sweep tables).
    pub tx_range_m: f64,
    /// `CS` over the whole run, including the initial election.
    pub clusterhead_changes_total: usize,
    /// `CS` counting only changes after the warmup — the headline
    /// steady-state stability number plotted in Figures 3/5/6.
    pub clusterhead_changes: usize,
    /// Cluster-membership changes after warmup (finer churn measure).
    pub affiliation_changes: usize,
    /// Mean number of clusters after warmup (Figure 4's quantity).
    pub avg_clusters: f64,
    /// Mean fraction of nodes that are gateways, after warmup.
    pub gateway_fraction: f64,
    /// Population mean of the aggregate mobility metric, after warmup.
    pub mean_aggregate_metric: f64,
    /// The sampled cluster-count series (one point per `BI`).
    pub cluster_series: TimeSeries,
    /// Total hello broadcasts sent.
    pub hello_broadcasts: u64,
    /// Total successful hello deliveries.
    pub deliveries: u64,
    /// Receptions destroyed by the vulnerable-window MAC collision
    /// model (0 when collisions are disabled).
    pub mac_collisions: u64,
    /// Every node's role at the end of the run.
    pub final_roles: Vec<Role>,
    /// Steady-state transitions broken down by `from->to` kind — the
    /// diagnostic behind the stability analyses ("where does the churn
    /// come from?").
    pub transitions_by_kind: std::collections::BTreeMap<String, usize>,
    /// Gini coefficient of per-node clusterhead *time shares* after
    /// warmup — the burden-fairness measure (0 = every node serves
    /// equally; → 1 = a few nodes carry all clusters). Stability and
    /// fairness trade off: see the `fairness` experiment.
    pub ch_time_gini: f64,
    /// How many distinct nodes ever held the clusterhead role.
    pub distinct_clusterheads: usize,
    /// Every role transition of the run, in time order — the full
    /// event trace for downstream analyses (serialized with results).
    pub role_transitions: Vec<mobic_core::RoleTransition>,
    /// How the run executed (fast path taken, event counts, timing).
    #[serde(default)]
    pub perf: RunPerf,
}

/// Lightweight per-run performance/observability counters.
///
/// Everything here describes *how* the run executed, never *what* it
/// computed — two runs of the same `(cfg, seed)` produce identical
/// measurements regardless of the path taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunPerf {
    /// Total discrete events processed by the simulation core.
    pub events: u64,
    /// Hello broadcast events among them.
    pub hello_events: u64,
    /// Whether the spatial-index fast path was used.
    pub indexed: bool,
    /// Mean number of candidate receivers evaluated per hello
    /// (`n − 1` on the brute-force path).
    pub mean_candidates: f64,
    /// Full index refresh passes (0 on the brute-force path).
    pub index_refreshes: u64,
    /// Wall-clock duration of the event loop in milliseconds. Not
    /// serialized: identical runs must produce identical JSON.
    #[serde(skip)]
    pub wall_clock_ms: f64,
    /// Wall-clock breakdown into setup / event-loop / aggregation
    /// phases (`mobic-cli --profile` renders it). Excluded from
    /// serialization for the same reason as `wall_clock_ms`.
    #[serde(skip)]
    pub phase_ms: PhaseTimings,
}

/// Simulation events.
enum Ev {
    /// Node `i` broadcasts its hello (and then evaluates clustering).
    Hello(NodeId),
    /// Periodic metric sampling.
    Sample,
}

/// Builds the per-node mobility models for a scenario.
fn build_mobility(
    cfg: &ScenarioConfig,
    field: Rect,
    splitter: &SeedSplitter,
) -> Vec<Box<dyn Mobility>> {
    let n = cfg.n_nodes as usize;
    let horizon = SimTime::from_secs_f64(cfg.sim_time_s + 2.0 * cfg.bi_s);
    match cfg.mobility {
        MobilityKind::RandomWaypoint => {
            let params = RandomWaypointParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                pause: SimTime::from_secs_f64(cfg.pause_s),
            };
            (0..n)
                .map(|i| {
                    Box::new(RandomWaypoint::new(params, splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::RandomWalk { epoch_s } => {
            let params = RandomWalkParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                epoch: SimTime::from_secs_f64(epoch_s),
            };
            (0..n)
                .map(|i| {
                    Box::new(RandomWalk::new(params, splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::GaussMarkov { alpha } => {
            let params = GaussMarkovParams {
                field,
                alpha,
                mean_speed_mps: 0.5 * cfg.max_speed_mps,
                speed_sigma: 0.25 * cfg.max_speed_mps,
                heading_sigma: 0.35,
                step: SimTime::from_secs(1),
            };
            (0..n)
                .map(|i| {
                    Box::new(GaussMarkov::new(params, splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Rpgm {
            groups,
            member_radius_m,
        } => {
            let params = RpgmParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                pause: SimTime::from_secs_f64(cfg.pause_s),
                member_radius_m,
                member_update: SimTime::from_secs(5),
            };
            let mut models: Vec<Box<dyn Mobility>> = Vec::with_capacity(n);
            let mut group_objs: Vec<RpgmGroup> = (0..groups)
                .map(|g| RpgmGroup::new(params, horizon, splitter.stream("rpgm-group", u64::from(g))))
                .collect();
            for i in 0..n {
                let g = i % groups as usize;
                models.push(Box::new(group_objs[g].spawn_member()));
            }
            models
        }
        MobilityKind::Highway { lanes, bidirectional } => {
            let params = HighwayParams {
                field,
                lanes,
                bidirectional,
                lane_speed_mps: cfg.max_speed_mps,
                speed_jitter: 0.1 * cfg.max_speed_mps,
                jitter_alpha: 0.9,
                step: SimTime::from_secs(1),
            };
            (0..n)
                .map(|i| {
                    Box::new(Highway::new(
                        params,
                        (i % lanes as usize) as u32,
                        splitter.stream("mobility", i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::ConferenceHall { booths } => {
            let params = ConferenceHallParams {
                field,
                booths,
                booth_radius_m: 0.06 * field.width().min(field.height()),
                min_speed_mps: 0.5,
                max_speed_mps: 1.5,
                min_pause: SimTime::from_secs(30),
                max_pause: SimTime::from_secs(120),
            };
            let hall = ConferenceHall::new(params, &mut splitter.stream("hall", 0));
            (0..n)
                .map(|i| {
                    Box::new(hall.spawn_attendee(splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Manhattan { block_m, p_turn } => {
            let params = ManhattanParams {
                field,
                block_m,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                p_turn,
            };
            (0..n)
                .map(|i| {
                    Box::new(Manhattan::new(params, splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Stationary => {
            let mut rng = splitter.stream("placement", 0);
            (0..n)
                .map(|_| {
                    use rand::Rng;
                    let p = field.point_at(rng.gen::<f64>(), rng.gen::<f64>());
                    Box::new(Stationary::new(p)) as Box<dyn Mobility>
                })
                .collect()
        }
    }
}

/// Builds the propagation model.
fn build_propagation(cfg: &ScenarioConfig, splitter: &SeedSplitter) -> Box<dyn Propagation> {
    match cfg.propagation {
        PropagationKind::FreeSpace => Box::new(FreeSpace::at_frequency(914.0e6)),
        PropagationKind::TwoRayGround => Box::new(TwoRayGround::ns2_default()),
        PropagationKind::LogDistance { exponent } => {
            Box::new(LogDistance::calibrated_to_friis(914.0e6, exponent))
        }
        PropagationKind::ShadowedFreeSpace { sigma_db } => Box::new(Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            sigma_db,
            splitter.stream("shadowing", 0),
        )),
        PropagationKind::NakagamiFreeSpace { m } => Box::new(Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            m,
            splitter.stream("fading", 0),
        )),
    }
}

/// Builds the loss model.
fn build_loss(cfg: &ScenarioConfig, splitter: &SeedSplitter) -> Box<dyn LossModel> {
    match cfg.loss {
        LossKind::None => Box::new(loss::NoLoss),
        LossKind::Bernoulli { p } => Box::new(loss::Bernoulli::new(p, splitter.stream("loss", 0))),
        LossKind::BurstyPreset => {
            Box::new(loss::GilbertElliott::mildly_bursty(splitter.stream("loss", 0)))
        }
    }
}

/// Upper bound on any node's speed under the scenario's mobility
/// model, used to pad the candidate query radius by the worst-case
/// drift since an index entry was last refreshed.
///
/// Constants mirror the parameter choices in [`build_mobility`].
/// Gaussian-driven speeds (Gauss–Markov, Highway jitter) are unbounded
/// in principle; we pad by 8σ of the stationary distribution, putting
/// the per-step exceedance probability near 6e-16 — negligible against
/// f64 rounding over any practical run.
fn slack_speed_bound(cfg: &ScenarioConfig) -> f64 {
    match cfg.mobility {
        MobilityKind::Stationary => 0.0,
        MobilityKind::RandomWaypoint
        | MobilityKind::RandomWalk { .. }
        | MobilityKind::Manhattan { .. } => cfg.max_speed_mps,
        // Speed is stationary N(0.5·v_max, 0.25·v_max), clamped at 0.
        MobilityKind::GaussMarkov { .. } => (0.5 + 8.0 * 0.25) * cfg.max_speed_mps,
        // The group center does random waypoint at ≤ v_max; the member
        // offset re-lerps across the member disk every 5 s.
        MobilityKind::Rpgm { member_radius_m, .. } => {
            cfg.max_speed_mps + 2.0 * member_radius_m / 5.0
        }
        // Lane speed v_max plus stationary N(0, 0.1·v_max) jitter.
        MobilityKind::Highway { .. } => (1.0 + 8.0 * 0.1) * cfg.max_speed_mps,
        // Walking pace is hard-capped in `build_mobility`.
        MobilityKind::ConferenceHall { .. } => 1.5,
    }
}

/// Extra query slack for motion that is not speed-bounded: highway
/// vehicles wrap across the field in a near-instant jump, so a stale
/// index entry can be off by whole lane lengths. The pad makes the
/// query cover every possible wrap (degrading Highway to an effectively
/// whole-field scan — correct, just not faster).
fn slack_teleport_pad(cfg: &ScenarioConfig, speed_bound: f64, staleness_s: f64) -> f64 {
    match cfg.mobility {
        MobilityKind::Highway { .. } => {
            // One wrap spans the lane axis; a window long enough to
            // drive a full lane adds one more wrap per crossing.
            let crossings = 1.0 + (speed_bound * staleness_s / cfg.field_w_m).floor();
            crossings * cfg.field_w_m
        }
        _ => 0.0,
    }
}

/// A reception withheld from the neighbor table while its vulnerable
/// window is open (MAC collision model, `packet_time_s > 0`).
#[derive(Debug, Clone, Copy)]
struct PendingRx {
    /// Arrival time — the timestamp the table sees on commit.
    at: SimTime,
    /// Measured received power.
    power: Dbm,
    /// The hello as transmitted.
    hello: Hello<ClusterAdvert>,
}

/// Commits a deferred reception once its vulnerable window has closed.
/// `force` commits unconditionally — used at end of run, when no
/// further arrival can overlap the pending packet. A committed
/// reception is a successful delivery, so this is also where the
/// `hello_rx` trace event fires (stamped with the *arrival* time the
/// neighbor table sees).
#[allow(clippy::too_many_arguments)] // internal hot-path helper
fn commit_pending(
    slot: &mut Option<PendingRx>,
    node_table: &mut NodeTable,
    rx: usize,
    now: SimTime,
    packet_time: SimTime,
    force: bool,
    deliveries: &mut u64,
    tracing: bool,
    sink: &mut dyn TraceSink,
) {
    if let Some(p) = *slot {
        if force || now.saturating_sub(p.at) >= packet_time {
            *slot = None;
            *deliveries += 1;
            node_table.record(rx, p.at, p.power, &p.hello);
            if tracing {
                sink.record(
                    p.at,
                    &TraceEvent::HelloRx {
                        tx: p.hello.sender.value(),
                        rx: rx as u32,
                        rx_power_dbm: p.power.dbm(),
                    },
                );
            }
        }
    }
}

/// The event loop's reusable buffers, sized once during setup so the
/// loop itself never allocates. Each is cleared (never shrunk) at its
/// point of use; the `_into` delivery APIs own the clearing of the
/// first two.
struct Scratch {
    /// Successful receptions of the current broadcast.
    delivered: Vec<Delivery>,
    /// In-range receivers dropped by the loss model on the current
    /// broadcast (empty unless a loss model is active).
    lost: Vec<NodeId>,
    /// Raw candidate indices from the spatial-index range query.
    ids: Vec<usize>,
    /// Candidate `(id, exact position)` pairs handed to the engine.
    candidates: Vec<(NodeId, Vec2)>,
}

/// A read-only view of the simulation state handed to observers at
/// every sampling instant (once per broadcast interval).
#[derive(Debug)]
pub struct SampleView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Position of every node (indexed by `NodeId::index`).
    pub positions: &'a [Vec2],
    /// The clustering state machines.
    pub nodes: &'a [ClusterNode],
    /// The neighbor tables.
    pub tables: &'a [ClusterTable],
}

/// Runs one complete scenario with the given master seed.
///
/// The run is a pure function of `(cfg, seed)` — see the determinism
/// contract in [`mobic_sim`].
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is invalid.
pub fn run_scenario(cfg: &ScenarioConfig, seed: u64) -> Result<RunResult, ConfigError> {
    run_scenario_instrumented(cfg, seed, |_| {}, &mut NullSink)
}

/// Like [`run_scenario`], but invokes `observer` at every sampling
/// instant with a [`SampleView`] of the live simulation state — the
/// hook higher layers (e.g. the `mobic-routing` experiments) use to
/// probe routes against the evolving cluster structure without
/// re-implementing the event loop.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is invalid.
pub fn run_scenario_observed(
    cfg: &ScenarioConfig,
    seed: u64,
    observer: impl FnMut(SampleView<'_>),
) -> Result<RunResult, ConfigError> {
    run_scenario_instrumented(cfg, seed, observer, &mut NullSink)
}

/// Like [`run_scenario`], but emits every structured
/// [`TraceEvent`] of the run into `sink` — hello tx/rx, loss drops,
/// MAC collisions, head elections/resignations, cluster merges, and
/// index refreshes, each stamped with the simulation time.
///
/// Tracing is purely observational: the [`RunResult`] is bit-identical
/// to an untraced run of the same `(cfg, seed)`, and with
/// [`NullSink`] the loop skips event construction entirely (checked
/// once via [`TraceSink::enabled`]).
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is invalid. Sink
/// I/O errors never interrupt the run — fallible sinks latch them
/// (see [`mobic_trace::JsonlSink::finish`]).
pub fn run_scenario_traced(
    cfg: &ScenarioConfig,
    seed: u64,
    sink: &mut dyn TraceSink,
) -> Result<RunResult, ConfigError> {
    run_scenario_instrumented(cfg, seed, |_| {}, sink)
}

/// The fully instrumented runner: sampling-time `observer` *and*
/// structured event `sink`. [`run_scenario`],
/// [`run_scenario_observed`] and [`run_scenario_traced`] are thin
/// wrappers over this.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is invalid.
pub fn run_scenario_instrumented(
    cfg: &ScenarioConfig,
    seed: u64,
    mut observer: impl FnMut(SampleView<'_>),
    sink: &mut dyn TraceSink,
) -> Result<RunResult, ConfigError> {
    cfg.validate()?;
    let mut phase_clock = PhaseClock::start();
    // One capability check up front: with a disabled sink the loop
    // never constructs an event, so tracing is zero-cost when off.
    let tracing = sink.enabled();
    let n = cfg.n_nodes as usize;
    let splitter = SeedSplitter::new(seed);
    let field = Rect::new(cfg.field_w_m, cfg.field_h_m);
    let bi = SimTime::from_secs_f64(cfg.bi_s);
    let sim_end = SimTime::from_secs_f64(cfg.sim_time_s);
    let warmup = SimTime::from_secs_f64(cfg.warmup_s);

    let mut mobility = build_mobility(cfg, field, &splitter);
    let radio = Radio::with_range(build_propagation(cfg, &splitter), cfg.tx_range_m);
    let mut engine = DeliveryEngine::new(radio, build_loss(cfg, &splitter));

    let ccfg = ClusterConfig {
        algorithm: cfg.algorithm,
        cci: SimTime::from_secs_f64(cfg.cci_s),
        metric_max_age: SimTime::from_secs_f64(cfg.tp_s),
        history_alpha: cfg.history_alpha,
        aggregation: cfg.metric_aggregation,
        metric_quantum: cfg.metric_quantum,
        undecided_patience: SimTime::from_secs_f64(cfg.undecided_patience_s),
    };
    let mut node_table = NodeTable::new(n, ccfg, SimTime::from_secs_f64(cfg.tp_s));

    // Pre-size every growth-prone container from the config so the
    // event loop appends without reallocating: the series see one
    // sample per broadcast interval, the transition log a few entries
    // per node, the event queue one hello per node plus the sampler.
    let samples = (cfg.sim_time_s / cfg.bi_s) as usize + 2;
    let mut log = TransitionLog::with_capacity(4 * n);
    let mut cluster_series = TimeSeries::with_capacity("clusters", samples);
    let mut gateway_series = TimeSeries::with_capacity("gateway-fraction", samples);
    let mut metric_series = TimeSeries::with_capacity("mean-aggregate-metric", samples);
    let mut hello_broadcasts: u64 = 0;
    let mut deliveries: u64 = 0;

    let mut sim: Simulation<Ev> = Simulation::with_capacity(n + 2);
    {
        use rand::Rng;
        let mut off_rng = splitter.stream("hello-offset", 0);
        for i in 0..n {
            let offset = SimTime::from_secs_f64(off_rng.gen::<f64>() * cfg.bi_s);
            sim.schedule_at(offset, Ev::Hello(NodeId::new(i as u32)));
        }
    }
    sim.schedule_at(bi, Ev::Sample);

    let mut positions: Vec<Vec2> = vec![Vec2::ZERO; n];

    // Spatial-index fast path (see the module docs): approximate
    // positions refreshed on a fixed cadence, queried per hello with a
    // conservative slack radius so no true receiver is ever missed.
    let use_indexed = match cfg.fast_path {
        FastPath::Off => false,
        // `validate` already rejected `On` with a stochastic model, so
        // both remaining variants reduce to the capability check.
        FastPath::On | FastPath::Auto => engine.radio().propagation().is_deterministic(),
    };
    let mut index = if use_indexed {
        for (j, m) in mobility.iter_mut().enumerate() {
            positions[j] = m.position_at(SimTime::ZERO);
        }
        Some(GridIndex::build(field, cfg.tx_range_m, &positions))
    } else {
        None
    };
    // Half a broadcast interval bounds staleness tightly enough that
    // the slack radius stays close to the radio range at paper speeds.
    let refresh_period = SimTime::from_secs_f64(0.5 * cfg.bi_s);
    let mut last_refresh = SimTime::ZERO;
    let speed_bound = slack_speed_bound(cfg);
    // `receive` is a threshold test that succeeds out to the nominal
    // range; the +0.5 m pad absorbs `nominal_range_m`'s bisection
    // tolerance and boundary rounding so the candidate disk always
    // contains the reception disk.
    let base_range = cfg.tx_range_m.max(engine.radio().nominal_range_m()) + 0.5;
    let mut candidate_total: u64 = 0;
    let mut index_refreshes: u64 = 0;

    // Dirty-set incremental reclustering (see `NodeTable`): skip a
    // node's election when it is provably a no-op. Bit-identical to
    // evaluating — debug builds re-prove every skip.
    let incremental = cfg.recluster == Recluster::Incremental;
    let mut elections_skipped: u64 = 0;

    // Vulnerable-window MAC collision state: a reception is withheld
    // from the neighbor table until `packet_time` has elapsed without
    // a second arrival — an overlap destroys *both* packets.
    let packet_time = SimTime::from_secs_f64(cfg.packet_time_s);
    let mut last_arrival: Vec<Option<SimTime>> = vec![None; n];
    let mut pending: Vec<Option<PendingRx>> = vec![None; n];
    let mut collisions: u64 = 0;
    let mut scratch = Scratch {
        delivered: Vec::with_capacity(n),
        lost: Vec::with_capacity(n),
        ids: Vec::with_capacity(n),
        candidates: Vec::with_capacity(n),
    };

    let setup_ms = phase_clock.lap_ms();
    let wall_start = std::time::Instant::now();
    sim.run_until(sim_end, |now, ev, sched| match ev {
        Ev::Hello(tx) => {
            let txi = tx.index();
            if !packet_time.is_zero() {
                // The node is about to read its own table: commit a
                // deferred reception whose window has closed.
                commit_pending(
                    &mut pending[txi],
                    &mut node_table,
                    txi,
                    now,
                    packet_time,
                    false,
                    &mut deliveries,
                    tracing,
                    sink,
                );
            }
            // Expire through the dirty-tracking entry point *before*
            // the broadcast: entry death is election-relevant, and the
            // skip decision below must see it. `prepare_broadcast`'s
            // own expiry at the same instant is then a no-op.
            node_table.expire(txi, now);
            let hello = node_table.prepare_broadcast(txi, now);
            hello_broadcasts += 1;
            if tracing {
                sink.record(
                    now,
                    &TraceEvent::HelloTx {
                        node: tx.value(),
                        seq: hello.seq,
                    },
                );
            }
            if let Some(index) = index.as_mut() {
                if now.saturating_sub(last_refresh) >= refresh_period {
                    for (j, m) in mobility.iter_mut().enumerate() {
                        positions[j] = m.position_at(now);
                    }
                    index.update_all(&positions);
                    last_refresh = now;
                    index_refreshes += 1;
                    if tracing {
                        sink.record(now, &TraceEvent::IndexRefresh { nodes: n as u32 });
                    }
                }
                positions[txi] = mobility[txi].position_at(now);
                index.update(txi, positions[txi]);
                let staleness = now.saturating_sub(last_refresh).as_secs_f64();
                let radius = base_range
                    + 2.0 * speed_bound * staleness
                    + slack_teleport_pad(cfg, speed_bound, staleness);
                scratch.ids.clear();
                index.for_each_within(positions[txi], radius, |i| scratch.ids.push(i));
                // Id order keeps stateful loss models on the exact
                // query sequence of the brute-force scan.
                scratch.ids.sort_unstable();
                scratch.candidates.clear();
                for &i in &scratch.ids {
                    if i == txi {
                        continue;
                    }
                    positions[i] = mobility[i].position_at(now);
                    index.update(i, positions[i]);
                    scratch.candidates.push((NodeId::new(i as u32), positions[i]));
                }
                candidate_total += scratch.candidates.len() as u64;
                engine.broadcast_among_into(
                    tx,
                    positions[txi],
                    &scratch.candidates,
                    now,
                    &mut scratch.delivered,
                    &mut scratch.lost,
                );
            } else {
                for (j, m) in mobility.iter_mut().enumerate() {
                    positions[j] = m.position_at(now);
                }
                candidate_total += (n - 1) as u64;
                engine.broadcast_into(
                    tx,
                    &positions,
                    now,
                    &mut scratch.delivered,
                    &mut scratch.lost,
                );
            }
            if tracing {
                for &dropped in &scratch.lost {
                    sink.record(
                        now,
                        &TraceEvent::HelloLost {
                            tx: tx.value(),
                            rx: dropped.value(),
                        },
                    );
                }
            }
            for &d in &scratch.delivered {
                let r = d.receiver.index();
                if packet_time.is_zero() {
                    deliveries += 1;
                    node_table.record(r, now, d.rx_power, &hello);
                    if tracing {
                        sink.record(
                            now,
                            &TraceEvent::HelloRx {
                                tx: tx.value(),
                                rx: d.receiver.value(),
                                rx_power_dbm: d.rx_power.dbm(),
                            },
                        );
                    }
                    continue;
                }
                commit_pending(
                    &mut pending[r],
                    &mut node_table,
                    r,
                    now,
                    packet_time,
                    false,
                    &mut deliveries,
                    tracing,
                    sink,
                );
                let collided = last_arrival[r]
                    .is_some_and(|prev| now.saturating_sub(prev) < packet_time);
                last_arrival[r] = Some(now);
                if collided {
                    // The earlier packet is still uncommitted iff it
                    // arrived inside the window; destroy it too.
                    if let Some(p) = pending[r].take() {
                        collisions += 1;
                        if tracing {
                            sink.record(
                                now,
                                &TraceEvent::MacCollision {
                                    tx: p.hello.sender.value(),
                                    rx: d.receiver.value(),
                                },
                            );
                        }
                    }
                    collisions += 1;
                    if tracing {
                        sink.record(
                            now,
                            &TraceEvent::MacCollision {
                                tx: tx.value(),
                                rx: d.receiver.value(),
                            },
                        );
                    }
                } else {
                    pending[r] = Some(PendingRx {
                        at: now,
                        power: d.rx_power,
                        hello,
                    });
                }
            }
            // Listen-before-decide: the paper's nodes compare their M
            // "with those of its neighbors", so no role decision is
            // taken until every neighbor has had one full broadcast
            // interval to introduce itself.
            if now >= bi {
                if incremental && node_table.can_skip_election(txi) {
                    // Clean table + time-independent state machine: the
                    // election is provably a no-op. Debug builds run it
                    // on a clone anyway and panic on any divergence.
                    elections_skipped += 1;
                    #[cfg(debug_assertions)]
                    node_table.debug_assert_skip_sound(txi, now);
                } else if let Some(tr) = node_table.evaluate(txi, now) {
                    if tracing {
                        let node = tr.node.value();
                        match (tr.from, tr.to) {
                            // A head stepping down into another head's
                            // cluster is a cluster merge.
                            (Role::Clusterhead, Role::Member { ch }) => sink.record(
                                now,
                                &TraceEvent::ClusterMerge {
                                    node,
                                    into: ch.value(),
                                },
                            ),
                            (Role::Clusterhead, _) => {
                                sink.record(now, &TraceEvent::HeadResigned { node });
                            }
                            (_, Role::Clusterhead) => {
                                sink.record(now, &TraceEvent::HeadElected { node });
                            }
                            // Member/undecided affiliation shuffles are
                            // in `role_transitions`; not traced.
                            _ => {}
                        }
                    }
                    log.record(tr);
                }
            }
            // §5 extension: mobility-adaptive hello pacing — mobile
            // neighborhoods refresh faster (down to the configured
            // floor), calm ones keep the base interval.
            let next = if cfg.adaptive_bi_min_s > 0.0 {
                const PIVOT_DB2: f64 = 2.0;
                let m = node_table.node(txi).metric();
                let secs = (cfg.bi_s * PIVOT_DB2 / (PIVOT_DB2 + m))
                    .clamp(cfg.adaptive_bi_min_s, cfg.bi_s);
                SimTime::from_secs_f64(secs)
            } else {
                bi
            };
            sched.schedule_in(next, Ev::Hello(tx));
        }
        Ev::Sample => {
            for (j, m) in mobility.iter_mut().enumerate() {
                positions[j] = m.position_at(now);
            }
            if let Some(index) = index.as_mut() {
                // The sampler evaluated everyone anyway: fold the free
                // full refresh into the index.
                index.update_all(&positions);
                last_refresh = now;
                index_refreshes += 1;
                if tracing {
                    sink.record(now, &TraceEvent::IndexRefresh { nodes: n as u32 });
                }
            }
            if !packet_time.is_zero() {
                // Sampling reads every table: commit closed windows.
                for r in 0..n {
                    commit_pending(
                        &mut pending[r],
                        &mut node_table,
                        r,
                        now,
                        packet_time,
                        false,
                        &mut deliveries,
                        tracing,
                        sink,
                    );
                }
            }
            observer(SampleView {
                now,
                positions: &positions,
                nodes: node_table.nodes(),
                tables: node_table.tables(),
            });
            let clusters = node_table
                .nodes()
                .iter()
                .filter(|nd| nd.role().is_clusterhead())
                .count();
            cluster_series.push(now, clusters as f64);
            let gateways = node_table
                .nodes()
                .iter()
                .zip(node_table.tables())
                .filter(|(nd, t)| nd.is_gateway(t))
                .count();
            gateway_series.push(now, gateways as f64 / n as f64);
            let mean_metric =
                node_table.nodes().iter().map(ClusterNode::metric).sum::<f64>() / n as f64;
            metric_series.push(now, mean_metric);
            sched.schedule_in(bi, Ev::Sample);
        }
    });
    if !packet_time.is_zero() {
        // End of run: nothing can overlap a still-pending reception
        // any more, so every one of them survived its window.
        for r in 0..n {
            commit_pending(
                &mut pending[r],
                &mut node_table,
                r,
                sim_end,
                packet_time,
                true,
                &mut deliveries,
                tracing,
                sink,
            );
        }
    }
    let wall_clock_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    let event_loop_ms = phase_clock.lap_ms();

    let shares = log.clusterhead_time_shares(n, warmup, sim_end.max(warmup + SimTime::SECOND));
    let ch_time_gini = mobic_metrics::gini(&shares);
    let distinct_clusterheads = log.distinct_clusterheads();
    // Interned kind labels: counting happens on `&'static str` keys
    // (`&str` and `String` order identically, so the one conversion at
    // the end preserves the map's key order byte-for-byte).
    let mut kind_counts = std::collections::BTreeMap::<&'static str, usize>::new();
    for tr in log.transitions() {
        if tr.at >= warmup {
            *kind_counts
                .entry(transition_kind_label(tr.from, tr.to))
                .or_insert(0) += 1;
        }
    }
    let transitions_by_kind = kind_counts
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let aggregate_ms = phase_clock.lap_ms();

    Ok(RunResult {
        algorithm: cfg.algorithm,
        seed,
        tx_range_m: cfg.tx_range_m,
        clusterhead_changes_total: log.clusterhead_changes(),
        clusterhead_changes: log.clusterhead_changes_after(warmup),
        affiliation_changes: log.affiliation_changes_after(warmup),
        avg_clusters: cluster_series.mean_after(warmup),
        gateway_fraction: gateway_series.mean_after(warmup),
        mean_aggregate_metric: metric_series.mean_after(warmup),
        cluster_series,
        hello_broadcasts,
        deliveries,
        mac_collisions: collisions,
        final_roles: node_table.nodes().iter().map(ClusterNode::role).collect(),
        transitions_by_kind,
        ch_time_gini,
        distinct_clusterheads,
        role_transitions: log.transitions().to_vec(),
        perf: RunPerf {
            events: sim.events_processed(),
            hello_events: hello_broadcasts,
            indexed: use_indexed,
            mean_candidates: if hello_broadcasts == 0 {
                0.0
            } else {
                candidate_total as f64 / hello_broadcasts as f64
            },
            index_refreshes,
            wall_clock_ms,
            phase_ms: PhaseTimings {
                setup_ms,
                event_loop_ms,
                aggregate_ms,
                elections_skipped,
            },
        },
    })
}

/// Build the [`RunManifest`] describing a finished run.
///
/// The manifest pairs the exact inputs (config echo + content hash +
/// seed) with the run's headline counters so a `results/*.json`
/// artifact can be audited without re-running the simulation. It is
/// a pure function of `(cfg, seed, result)` — no timestamps, no
/// host-specific data — so identical runs produce byte-identical
/// manifests.
///
/// # Examples
///
/// ```
/// use mobic_scenario::{manifest_for, run_scenario, ScenarioConfig};
///
/// let mut cfg = ScenarioConfig::paper_table1();
/// cfg.n_nodes = 8;
/// cfg.sim_time_s = 20.0;
/// let result = run_scenario(&cfg, 7).unwrap();
/// let manifest = manifest_for(&cfg, 7, &result);
/// assert_eq!(manifest.seed, 7);
/// assert_eq!(manifest.counters.hello_broadcasts, result.hello_broadcasts);
/// ```
pub fn manifest_for(cfg: &ScenarioConfig, seed: u64, result: &RunResult) -> RunManifest {
    let config_json = serde_json::to_value(cfg).expect("ScenarioConfig serializes");
    let canonical = serde_json::to_string(&config_json).expect("Value serializes");
    RunManifest {
        schema: mobic_trace::MANIFEST_SCHEMA,
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        config_hash: config_hash(canonical.as_bytes()),
        config: config_json,
        seed,
        algorithm: cfg.algorithm.name().to_string(),
        indexed: result.perf.indexed,
        counters: ManifestCounters {
            events: result.perf.events,
            hello_broadcasts: result.hello_broadcasts,
            deliveries: result.deliveries,
            mac_collisions: result.mac_collisions,
            index_refreshes: result.perf.index_refreshes,
            clusterhead_changes_total: result.clusterhead_changes_total,
        },
    }
}

/// Interned `from->to` label for transition-kind keys — the same
/// strings `format!("{from}->{to}")` over the compact role names would
/// produce, without allocating per transition.
fn transition_kind_label(from: Role, to: Role) -> &'static str {
    use Role::{Clusterhead, Member, Undecided};
    match (from, to) {
        (Undecided, Undecided) => "undecided->undecided",
        (Undecided, Clusterhead) => "undecided->ch",
        (Undecided, Member { .. }) => "undecided->member",
        (Clusterhead, Undecided) => "ch->undecided",
        (Clusterhead, Clusterhead) => "ch->ch",
        (Clusterhead, Member { .. }) => "ch->member",
        (Member { .. }, Undecided) => "member->undecided",
        (Member { .. }, Clusterhead) => "member->ch",
        (Member { .. }, Member { .. }) => "member->member",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::AlgorithmKind;

    fn small(alg: AlgorithmKind) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_table1();
        c.n_nodes = 12;
        c.sim_time_s = 60.0;
        c.tx_range_m = 250.0;
        c.algorithm = alg;
        c
    }

    #[test]
    fn runs_and_produces_sane_counts() {
        let cfg = small(AlgorithmKind::Mobic);
        let r = run_scenario(&cfg, 3).unwrap();
        // 12 nodes × 60 s / 2 s = 360 broadcasts (±1 per node for the
        // initial offset round landing inside the horizon).
        assert!(r.hello_broadcasts >= 348 && r.hello_broadcasts <= 372, "{}", r.hello_broadcasts);
        assert!(r.deliveries > 0);
        assert!(r.avg_clusters >= 1.0 && r.avg_clusters <= 12.0);
        assert_eq!(r.final_roles.len(), 12);
        assert_eq!(r.algorithm, AlgorithmKind::Mobic);
        assert!((0.0..=1.0).contains(&r.gateway_fraction));
        assert!(r.mean_aggregate_metric >= 0.0);
    }

    #[test]
    fn deterministic_across_invocations() {
        let cfg = small(AlgorithmKind::Mobic);
        let a = run_scenario(&cfg, 7).unwrap();
        let b = run_scenario(&cfg, 7).unwrap();
        assert_eq!(a.clusterhead_changes_total, b.clusterhead_changes_total);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.final_roles, b.final_roles);
        assert_eq!(a.avg_clusters, b.avg_clusters);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small(AlgorithmKind::Mobic);
        let a = run_scenario(&cfg, 1).unwrap();
        let b = run_scenario(&cfg, 2).unwrap();
        // Different placements → different delivery counts with
        // overwhelming probability.
        assert_ne!(a.deliveries, b.deliveries);
    }

    #[test]
    fn stationary_network_converges_and_stays_stable() {
        let mut cfg = small(AlgorithmKind::Lcc);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        let r = run_scenario(&cfg, 5).unwrap();
        // No motion → no steady-state clusterhead changes at all.
        assert_eq!(r.clusterhead_changes, 0, "static network must be stable");
        // Everyone decided.
        assert!(r.final_roles.iter().all(|x| *x != Role::Undecided));
    }

    #[test]
    fn stationary_mobic_matches_lowest_id_fixed_point() {
        // With no motion every M stays 0, so MOBIC degenerates to
        // Lowest-ID — their converged clusterings must coincide.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        let a = run_scenario(&cfg, 11).unwrap();
        let b = run_scenario(&cfg.with_algorithm(AlgorithmKind::Lcc), 11).unwrap();
        assert_eq!(a.final_roles, b.final_roles);
    }

    #[test]
    fn isolated_nodes_all_become_clusterheads() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.tx_range_m = 1.0; // nobody hears anybody
        let r = run_scenario(&cfg, 9).unwrap();
        assert_eq!(r.deliveries, 0);
        assert!(r
            .final_roles
            .iter()
            .all(|x| *x == Role::Clusterhead));
        assert_eq!(r.avg_clusters, 12.0);
    }

    #[test]
    fn all_algorithms_run() {
        for alg in AlgorithmKind::ALL {
            let r = run_scenario(&small(alg), 4).unwrap();
            assert!(r.avg_clusters >= 1.0, "{alg}");
        }
    }

    #[test]
    fn all_mobility_kinds_run() {
        let kinds = [
            MobilityKind::RandomWaypoint,
            MobilityKind::RandomWalk { epoch_s: 10.0 },
            MobilityKind::GaussMarkov { alpha: 0.8 },
            MobilityKind::Rpgm {
                groups: 3,
                member_radius_m: 40.0,
            },
            MobilityKind::Highway { lanes: 4, bidirectional: true },
            MobilityKind::ConferenceHall { booths: 5 },
            MobilityKind::Manhattan { block_m: 100.0, p_turn: 0.5 },
            MobilityKind::Stationary,
        ];
        for k in kinds {
            let mut cfg = small(AlgorithmKind::Mobic);
            cfg.mobility = k;
            cfg.sim_time_s = 30.0;
            let r = run_scenario(&cfg, 2).unwrap();
            assert!(r.hello_broadcasts > 0, "{k:?}");
        }
    }

    #[test]
    fn all_propagation_and_loss_kinds_run() {
        for prop in [
            PropagationKind::FreeSpace,
            PropagationKind::TwoRayGround,
            PropagationKind::LogDistance { exponent: 3.0 },
            PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 },
            PropagationKind::NakagamiFreeSpace { m: 1.0 },
        ] {
            for l in [
                LossKind::None,
                LossKind::Bernoulli { p: 0.1 },
                LossKind::BurstyPreset,
            ] {
                let mut cfg = small(AlgorithmKind::Mobic);
                cfg.sim_time_s = 30.0;
                cfg.propagation = prop;
                cfg.loss = l;
                let r = run_scenario(&cfg, 6).unwrap();
                assert!(r.hello_broadcasts > 0, "{prop:?} {l:?}");
            }
        }
    }

    #[test]
    fn bernoulli_loss_reduces_deliveries() {
        let cfg = small(AlgorithmKind::Mobic);
        let clean = run_scenario(&cfg, 8).unwrap();
        let mut lossy_cfg = cfg;
        lossy_cfg.loss = LossKind::Bernoulli { p: 0.5 };
        let lossy = run_scenario(&lossy_cfg, 8).unwrap();
        let ratio = lossy.deliveries as f64 / clean.deliveries as f64;
        assert!((ratio - 0.5).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn collision_window_destroys_some_receptions() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.packet_time_s = 0.0;
        let clean = run_scenario(&cfg, 13).unwrap();
        assert_eq!(clean.mac_collisions, 0);
        cfg.packet_time_s = 0.02; // generous window to force collisions
        let noisy = run_scenario(&cfg, 13).unwrap();
        // A vulnerable-window overlap destroys BOTH packets, so
        // collisions always come in groups of at least two.
        assert!(noisy.mac_collisions >= 2, "no collisions observed");
        assert_eq!(
            noisy.deliveries + noisy.mac_collisions,
            clean.deliveries,
            "collisions must partition the same reception set"
        );
        assert!(noisy.deliveries < clean.deliveries);
    }

    #[test]
    fn extreme_collision_window_keeps_partition_invariant() {
        // A window as long as the broadcast interval makes nearly
        // every reception overlap another, exercising pending-chain
        // destruction and the end-of-run flush; the partition between
        // committed and destroyed receptions must never double-count.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.n_nodes = 3;
        cfg.sim_time_s = 30.0;
        cfg.packet_time_s = 0.0;
        let clean = run_scenario(&cfg, 5).unwrap();
        cfg.packet_time_s = 2.0; // window == BI: maximal overlap
        let noisy = run_scenario(&cfg, 5).unwrap();
        assert_eq!(noisy.deliveries + noisy.mac_collisions, clean.deliveries);
    }

    #[test]
    fn manhattan_mobility_runs() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.mobility = MobilityKind::Manhattan { block_m: 100.0, p_turn: 0.5 };
        cfg.sim_time_s = 40.0;
        let r = run_scenario(&cfg, 3).unwrap();
        assert!(r.hello_broadcasts > 0);
    }

    #[test]
    fn adaptive_bi_sends_more_hellos_in_mobile_networks() {
        let mut cfg = small(AlgorithmKind::Mobic);
        let fixed = run_scenario(&cfg, 21).unwrap();
        cfg.adaptive_bi_min_s = 0.5;
        let adaptive = run_scenario(&cfg, 21).unwrap();
        assert!(
            adaptive.hello_broadcasts > fixed.hello_broadcasts,
            "adaptive {} vs fixed {}",
            adaptive.hello_broadcasts,
            fixed.hello_broadcasts
        );
        // Static network: everyone's M stays 0 → base rate.
        let mut calm = small(AlgorithmKind::Mobic);
        calm.mobility = MobilityKind::Stationary;
        calm.adaptive_bi_min_s = 0.5;
        let calm_adaptive = run_scenario(&calm, 21).unwrap();
        let mut calm_fixed_cfg = small(AlgorithmKind::Mobic);
        calm_fixed_cfg.mobility = MobilityKind::Stationary;
        let calm_fixed = run_scenario(&calm_fixed_cfg, 21).unwrap();
        assert_eq!(calm_adaptive.hello_broadcasts, calm_fixed.hello_broadcasts);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.n_nodes = 0;
        assert!(run_scenario(&cfg, 0).is_err());
    }

    #[test]
    fn fairness_fields_are_consistent() {
        let r = run_scenario(&small(AlgorithmKind::Mobic), 31).unwrap();
        assert!((0.0..1.0).contains(&r.ch_time_gini), "{}", r.ch_time_gini);
        assert!(r.distinct_clusterheads >= 1);
        assert!(r.distinct_clusterheads <= 12);
        // The transition trace is complete: CS can be recomputed.
        let warmup = SimTime::from_secs_f64(small(AlgorithmKind::Mobic).warmup_s);
        let recount = r
            .role_transitions
            .iter()
            .filter(|t| t.at >= warmup && t.is_clusterhead_change())
            .count();
        assert_eq!(recount, r.clusterhead_changes);
    }

    #[test]
    fn fast_path_taken_by_default_for_deterministic_propagation() {
        let cfg = small(AlgorithmKind::Mobic);
        let r = run_scenario(&cfg, 3).unwrap();
        assert!(r.perf.indexed, "free space must take the indexed path");
        assert_eq!(r.perf.hello_events, r.hello_broadcasts);
        assert!(r.perf.events >= r.hello_broadcasts);
        assert!(r.perf.index_refreshes > 0);
        assert!(r.perf.mean_candidates > 0.0 && r.perf.mean_candidates <= 11.0);
    }

    #[test]
    fn stochastic_propagation_falls_back_to_brute_force() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.propagation = PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 };
        cfg.sim_time_s = 30.0;
        let r = run_scenario(&cfg, 3).unwrap();
        assert!(!r.perf.indexed);
        assert_eq!(r.perf.index_refreshes, 0);
        assert_eq!(r.perf.mean_candidates, 11.0); // always n − 1
    }

    #[test]
    fn fast_path_off_matches_on_exactly() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.fast_path = FastPath::Off;
        let brute = run_scenario(&cfg, 17).unwrap();
        assert!(!brute.perf.indexed);
        cfg.fast_path = FastPath::On;
        let fast = run_scenario(&cfg, 17).unwrap();
        assert!(fast.perf.indexed);
        assert_eq!(fast.deliveries, brute.deliveries);
        assert_eq!(fast.hello_broadcasts, brute.hello_broadcasts);
        assert_eq!(fast.final_roles, brute.final_roles);
        assert_eq!(fast.cluster_series, brute.cluster_series);
        assert_eq!(fast.role_transitions.len(), brute.role_transitions.len());
        assert_eq!(fast.mean_aggregate_metric, brute.mean_aggregate_metric);
        // The indexed path should actually prune work at this density.
        assert!(fast.perf.mean_candidates <= brute.perf.mean_candidates);
    }

    #[test]
    fn forced_fast_path_with_stochastic_propagation_is_rejected() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.fast_path = FastPath::On;
        cfg.propagation = PropagationKind::NakagamiFreeSpace { m: 3.0 };
        assert!(matches!(
            run_scenario(&cfg, 0),
            Err(ConfigError::FastPathUnsupported { .. })
        ));
    }

    #[test]
    fn result_serializes() {
        let r = run_scenario(&small(AlgorithmKind::Lcc), 1).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.clusterhead_changes, r.clusterhead_changes);
    }

    /// In-memory sink tallying events by kind, for counter identities.
    #[derive(Default)]
    struct CountingSink {
        tx: u64,
        rx: u64,
        lost: u64,
        collisions: u64,
        elected: u64,
        resigned: u64,
        merged: u64,
        refreshes: u64,
    }

    impl TraceSink for CountingSink {
        fn record(&mut self, _at: SimTime, event: &TraceEvent) {
            match event {
                TraceEvent::HelloTx { .. } => self.tx += 1,
                TraceEvent::HelloRx { .. } => self.rx += 1,
                TraceEvent::HelloLost { .. } => self.lost += 1,
                TraceEvent::MacCollision { .. } => self.collisions += 1,
                TraceEvent::HeadElected { .. } => self.elected += 1,
                TraceEvent::HeadResigned { .. } => self.resigned += 1,
                TraceEvent::ClusterMerge { .. } => self.merged += 1,
                TraceEvent::IndexRefresh { .. } => self.refreshes += 1,
            }
        }
    }

    #[test]
    fn traced_event_counts_match_result_counters() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.loss = LossKind::Bernoulli { p: 0.2 };
        cfg.packet_time_s = 0.005;
        let mut sink = CountingSink::default();
        let r = run_scenario_traced(&cfg, 19, &mut sink).unwrap();
        assert_eq!(sink.tx, r.hello_broadcasts);
        assert_eq!(sink.rx, r.deliveries);
        assert_eq!(sink.collisions, r.mac_collisions);
        assert_eq!(sink.refreshes, r.perf.index_refreshes);
        assert_eq!(
            sink.elected + sink.resigned + sink.merged,
            r.clusterhead_changes_total,
            "head elections + resignations + merges must equal total CH changes"
        );
        assert!(sink.lost > 0, "Bernoulli loss must surface hello_lost events");
    }

    #[test]
    fn lossless_runs_emit_no_loss_events() {
        let cfg = small(AlgorithmKind::Mobic);
        let mut sink = CountingSink::default();
        run_scenario_traced(&cfg, 19, &mut sink).unwrap();
        assert_eq!(sink.lost, 0);
        assert_eq!(sink.collisions, 0);
    }

    #[test]
    fn tracing_never_perturbs_the_run() {
        // The observational guarantee: serialized RunResult is
        // byte-identical whether the run is untraced, null-sinked,
        // or fully traced.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.loss = LossKind::Bernoulli { p: 0.3 };
        cfg.packet_time_s = 0.005;
        let plain = serde_json::to_string(&run_scenario(&cfg, 23).unwrap()).unwrap();
        let nulled =
            serde_json::to_string(&run_scenario_traced(&cfg, 23, &mut NullSink).unwrap()).unwrap();
        let mut sink = CountingSink::default();
        let traced = serde_json::to_string(&run_scenario_traced(&cfg, 23, &mut sink).unwrap())
            .unwrap();
        assert_eq!(plain, nulled);
        assert_eq!(plain, traced);
    }

    #[test]
    fn jsonl_traces_are_byte_identical_across_invocations() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.loss = LossKind::Bernoulli { p: 0.1 };
        let capture = |c: &ScenarioConfig| {
            let mut sink = mobic_trace::JsonlSink::new(Vec::new());
            run_scenario_traced(c, 29, &mut sink).unwrap();
            sink.finish().unwrap()
        };
        let a = capture(&cfg);
        let b = capture(&cfg);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same (cfg, seed) must yield identical traces");
    }

    #[test]
    fn phase_timings_are_populated_and_skipped_by_serde() {
        let r = run_scenario(&small(AlgorithmKind::Mobic), 3).unwrap();
        assert!(r.perf.phase_ms.total_ms() > 0.0);
        assert!(r.perf.phase_ms.event_loop_ms > 0.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("phase_ms"), "phase timings must not serialize");
        assert!(!json.contains("wall_clock_ms"));
    }

    #[test]
    fn incremental_reclustering_matches_full_exactly() {
        // The dirty-set skip must be invisible in every serialized
        // byte of the result, across algorithm families and with a
        // stateful loss model in play.
        for alg in [AlgorithmKind::Mobic, AlgorithmKind::LowestId, AlgorithmKind::Wca] {
            let mut cfg = small(alg);
            cfg.loss = LossKind::Bernoulli { p: 0.2 };
            cfg.recluster = Recluster::Full;
            let full = serde_json::to_string(&run_scenario(&cfg, 37).unwrap()).unwrap();
            cfg.recluster = Recluster::Incremental;
            let incr = serde_json::to_string(&run_scenario(&cfg, 37).unwrap()).unwrap();
            assert_eq!(full, incr, "{alg}");
        }
    }

    #[test]
    fn incremental_reclustering_actually_skips_on_calm_networks() {
        // A stationary network converges and then every election is a
        // provable no-op; under `Full` the counter must stay zero.
        let mut cfg = small(AlgorithmKind::Lcc);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        let incr = run_scenario(&cfg, 5).unwrap();
        assert!(
            incr.perf.phase_ms.elections_skipped > 0,
            "stationary run skipped nothing"
        );
        cfg.recluster = Recluster::Full;
        let full = run_scenario(&cfg, 5).unwrap();
        assert_eq!(full.perf.phase_ms.elections_skipped, 0);
        assert_eq!(full.final_roles, incr.final_roles);
    }

    #[test]
    fn manifest_is_deterministic_and_echoes_the_run() {
        let cfg = small(AlgorithmKind::Mobic);
        let r = run_scenario(&cfg, 41).unwrap();
        let a = manifest_for(&cfg, 41, &r);
        let b = manifest_for(&cfg, 41, &r);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert_eq!(a.schema, mobic_trace::MANIFEST_SCHEMA);
        assert_eq!(a.seed, 41);
        assert_eq!(a.algorithm, "mobic");
        assert!(a.config_hash.starts_with("fnv1a64:"));
        assert_eq!(a.counters.hello_broadcasts, r.hello_broadcasts);
        assert_eq!(a.counters.deliveries, r.deliveries);
        assert_eq!(a.counters.events, r.perf.events);
        // A different config must hash differently.
        let mut other = cfg;
        other.n_nodes += 1;
        let r2 = run_scenario(&other, 41).unwrap();
        assert_ne!(manifest_for(&other, 41, &r2).config_hash, a.config_hash);
    }
}
