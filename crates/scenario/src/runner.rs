//! The end-to-end simulation runner.
//!
//! `run_scenario` is this workspace's equivalent of an ns-2 run: it
//! wires mobility → radio → delivery → neighbor tables → clustering,
//! drives the discrete-event loop for the configured simulated time,
//! and returns every measurement the paper's figures need.
//!
//! # Protocol timeline (per node, mirroring §3.2 / §4.1)
//!
//! Each node broadcasts a hello every `BI` seconds, starting at a
//! random offset in `[0, BI)` (nodes are not synchronized, as in
//! ns-2). At each of its broadcast instants the node:
//!
//! 1. expires stale neighbors (`TP`),
//! 2. computes its aggregate mobility `M` from the stored `RxPr`
//!    pairs and stamps it (plus role) onto the hello,
//! 3. the delivery engine hands the hello to every in-range receiver
//!    with its measured `RxPr`, which the receivers store,
//! 4. the node runs one clustering evaluation and possibly changes
//!    role (recorded into the transition log).
//!
//! Once per `BI` a sampler records the number of clusterheads, the
//! gateway fraction and the population-mean metric.

use mobic_core::{ClusterConfig, ClusterNode, ClusterTable, Role};
use mobic_geom::{Rect, Vec2};
use mobic_metrics::{TimeSeries, TransitionLog};
use mobic_mobility::{
    ConferenceHall, ConferenceHallParams, GaussMarkov, GaussMarkovParams, Highway, HighwayParams,
    Manhattan, ManhattanParams, Mobility, RandomWalk, RandomWalkParams, RandomWaypoint,
    RandomWaypointParams, RpgmGroup, RpgmParams, Stationary,
};
use mobic_net::{loss, loss::LossModel, DeliveryEngine, NodeId};
use mobic_radio::{FreeSpace, LogDistance, Nakagami, Propagation, Radio, Shadowed, TwoRayGround};
use mobic_sim::{rng::SeedSplitter, SimTime, Simulation};
use serde::{Deserialize, Serialize};

use crate::{ConfigError, LossKind, MobilityKind, PropagationKind, ScenarioConfig};

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The algorithm that ran.
    pub algorithm: mobic_core::AlgorithmKind,
    /// The master seed of the run.
    pub seed: u64,
    /// The configured transmission range (echoed for sweep tables).
    pub tx_range_m: f64,
    /// `CS` over the whole run, including the initial election.
    pub clusterhead_changes_total: usize,
    /// `CS` counting only changes after the warmup — the headline
    /// steady-state stability number plotted in Figures 3/5/6.
    pub clusterhead_changes: usize,
    /// Cluster-membership changes after warmup (finer churn measure).
    pub affiliation_changes: usize,
    /// Mean number of clusters after warmup (Figure 4's quantity).
    pub avg_clusters: f64,
    /// Mean fraction of nodes that are gateways, after warmup.
    pub gateway_fraction: f64,
    /// Population mean of the aggregate mobility metric, after warmup.
    pub mean_aggregate_metric: f64,
    /// The sampled cluster-count series (one point per `BI`).
    pub cluster_series: TimeSeries,
    /// Total hello broadcasts sent.
    pub hello_broadcasts: u64,
    /// Total successful hello deliveries.
    pub deliveries: u64,
    /// Receptions destroyed by the vulnerable-window MAC collision
    /// model (0 when collisions are disabled).
    pub mac_collisions: u64,
    /// Every node's role at the end of the run.
    pub final_roles: Vec<Role>,
    /// Steady-state transitions broken down by `from->to` kind — the
    /// diagnostic behind the stability analyses ("where does the churn
    /// come from?").
    pub transitions_by_kind: std::collections::BTreeMap<String, usize>,
    /// Gini coefficient of per-node clusterhead *time shares* after
    /// warmup — the burden-fairness measure (0 = every node serves
    /// equally; → 1 = a few nodes carry all clusters). Stability and
    /// fairness trade off: see the `fairness` experiment.
    pub ch_time_gini: f64,
    /// How many distinct nodes ever held the clusterhead role.
    pub distinct_clusterheads: usize,
    /// Every role transition of the run, in time order — the full
    /// event trace for downstream analyses (serialized with results).
    pub role_transitions: Vec<mobic_core::RoleTransition>,
}

/// Simulation events.
enum Ev {
    /// Node `i` broadcasts its hello (and then evaluates clustering).
    Hello(NodeId),
    /// Periodic metric sampling.
    Sample,
}

/// Builds the per-node mobility models for a scenario.
fn build_mobility(
    cfg: &ScenarioConfig,
    field: Rect,
    splitter: &SeedSplitter,
) -> Vec<Box<dyn Mobility>> {
    let n = cfg.n_nodes as usize;
    let horizon = SimTime::from_secs_f64(cfg.sim_time_s + 2.0 * cfg.bi_s);
    match cfg.mobility {
        MobilityKind::RandomWaypoint => {
            let params = RandomWaypointParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                pause: SimTime::from_secs_f64(cfg.pause_s),
            };
            (0..n)
                .map(|i| {
                    Box::new(RandomWaypoint::new(params, splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::RandomWalk { epoch_s } => {
            let params = RandomWalkParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                epoch: SimTime::from_secs_f64(epoch_s),
            };
            (0..n)
                .map(|i| {
                    Box::new(RandomWalk::new(params, splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::GaussMarkov { alpha } => {
            let params = GaussMarkovParams {
                field,
                alpha,
                mean_speed_mps: 0.5 * cfg.max_speed_mps,
                speed_sigma: 0.25 * cfg.max_speed_mps,
                heading_sigma: 0.35,
                step: SimTime::from_secs(1),
            };
            (0..n)
                .map(|i| {
                    Box::new(GaussMarkov::new(params, splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Rpgm {
            groups,
            member_radius_m,
        } => {
            let params = RpgmParams {
                field,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                pause: SimTime::from_secs_f64(cfg.pause_s),
                member_radius_m,
                member_update: SimTime::from_secs(5),
            };
            let mut models: Vec<Box<dyn Mobility>> = Vec::with_capacity(n);
            let mut group_objs: Vec<RpgmGroup> = (0..groups)
                .map(|g| RpgmGroup::new(params, horizon, splitter.stream("rpgm-group", u64::from(g))))
                .collect();
            for i in 0..n {
                let g = i % groups as usize;
                models.push(Box::new(group_objs[g].spawn_member()));
            }
            models
        }
        MobilityKind::Highway { lanes, bidirectional } => {
            let params = HighwayParams {
                field,
                lanes,
                bidirectional,
                lane_speed_mps: cfg.max_speed_mps,
                speed_jitter: 0.1 * cfg.max_speed_mps,
                jitter_alpha: 0.9,
                step: SimTime::from_secs(1),
            };
            (0..n)
                .map(|i| {
                    Box::new(Highway::new(
                        params,
                        (i % lanes as usize) as u32,
                        splitter.stream("mobility", i as u64),
                    )) as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::ConferenceHall { booths } => {
            let params = ConferenceHallParams {
                field,
                booths,
                booth_radius_m: 0.06 * field.width().min(field.height()),
                min_speed_mps: 0.5,
                max_speed_mps: 1.5,
                min_pause: SimTime::from_secs(30),
                max_pause: SimTime::from_secs(120),
            };
            let hall = ConferenceHall::new(params, &mut splitter.stream("hall", 0));
            (0..n)
                .map(|i| {
                    Box::new(hall.spawn_attendee(splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Manhattan { block_m, p_turn } => {
            let params = ManhattanParams {
                field,
                block_m,
                min_speed_mps: cfg.min_speed_mps,
                max_speed_mps: cfg.max_speed_mps,
                p_turn,
            };
            (0..n)
                .map(|i| {
                    Box::new(Manhattan::new(params, splitter.stream("mobility", i as u64)))
                        as Box<dyn Mobility>
                })
                .collect()
        }
        MobilityKind::Stationary => {
            let mut rng = splitter.stream("placement", 0);
            (0..n)
                .map(|_| {
                    use rand::Rng;
                    let p = field.point_at(rng.gen::<f64>(), rng.gen::<f64>());
                    Box::new(Stationary::new(p)) as Box<dyn Mobility>
                })
                .collect()
        }
    }
}

/// Builds the propagation model.
fn build_propagation(cfg: &ScenarioConfig, splitter: &SeedSplitter) -> Box<dyn Propagation> {
    match cfg.propagation {
        PropagationKind::FreeSpace => Box::new(FreeSpace::at_frequency(914.0e6)),
        PropagationKind::TwoRayGround => Box::new(TwoRayGround::ns2_default()),
        PropagationKind::LogDistance { exponent } => {
            Box::new(LogDistance::calibrated_to_friis(914.0e6, exponent))
        }
        PropagationKind::ShadowedFreeSpace { sigma_db } => Box::new(Shadowed::new(
            FreeSpace::at_frequency(914.0e6),
            sigma_db,
            splitter.stream("shadowing", 0),
        )),
        PropagationKind::NakagamiFreeSpace { m } => Box::new(Nakagami::new(
            FreeSpace::at_frequency(914.0e6),
            m,
            splitter.stream("fading", 0),
        )),
    }
}

/// Builds the loss model.
fn build_loss(cfg: &ScenarioConfig, splitter: &SeedSplitter) -> Box<dyn LossModel> {
    match cfg.loss {
        LossKind::None => Box::new(loss::NoLoss),
        LossKind::Bernoulli { p } => Box::new(loss::Bernoulli::new(p, splitter.stream("loss", 0))),
        LossKind::BurstyPreset => {
            Box::new(loss::GilbertElliott::mildly_bursty(splitter.stream("loss", 0)))
        }
    }
}

/// A read-only view of the simulation state handed to observers at
/// every sampling instant (once per broadcast interval).
#[derive(Debug)]
pub struct SampleView<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Position of every node (indexed by `NodeId::index`).
    pub positions: &'a [Vec2],
    /// The clustering state machines.
    pub nodes: &'a [ClusterNode],
    /// The neighbor tables.
    pub tables: &'a [ClusterTable],
}

/// Runs one complete scenario with the given master seed.
///
/// The run is a pure function of `(cfg, seed)` — see the determinism
/// contract in [`mobic_sim`].
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is invalid.
pub fn run_scenario(cfg: &ScenarioConfig, seed: u64) -> Result<RunResult, ConfigError> {
    run_scenario_observed(cfg, seed, |_| {})
}

/// Like [`run_scenario`], but invokes `observer` at every sampling
/// instant with a [`SampleView`] of the live simulation state — the
/// hook higher layers (e.g. the `mobic-routing` experiments) use to
/// probe routes against the evolving cluster structure without
/// re-implementing the event loop.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the configuration is invalid.
pub fn run_scenario_observed(
    cfg: &ScenarioConfig,
    seed: u64,
    mut observer: impl FnMut(SampleView<'_>),
) -> Result<RunResult, ConfigError> {
    cfg.validate()?;
    let n = cfg.n_nodes as usize;
    let splitter = SeedSplitter::new(seed);
    let field = Rect::new(cfg.field_w_m, cfg.field_h_m);
    let bi = SimTime::from_secs_f64(cfg.bi_s);
    let sim_end = SimTime::from_secs_f64(cfg.sim_time_s);
    let warmup = SimTime::from_secs_f64(cfg.warmup_s);

    let mut mobility = build_mobility(cfg, field, &splitter);
    let radio = Radio::with_range(build_propagation(cfg, &splitter), cfg.tx_range_m);
    let mut engine = DeliveryEngine::new(radio, build_loss(cfg, &splitter));

    let ccfg = ClusterConfig {
        algorithm: cfg.algorithm,
        cci: SimTime::from_secs_f64(cfg.cci_s),
        metric_max_age: SimTime::from_secs_f64(cfg.tp_s),
        history_alpha: cfg.history_alpha,
        aggregation: cfg.metric_aggregation,
        metric_quantum: cfg.metric_quantum,
        undecided_patience: SimTime::from_secs_f64(cfg.undecided_patience_s),
    };
    let mut nodes: Vec<ClusterNode> = (0..n)
        .map(|i| ClusterNode::new(NodeId::new(i as u32), ccfg))
        .collect();
    let mut tables: Vec<ClusterTable> = (0..n)
        .map(|_| ClusterTable::new(SimTime::from_secs_f64(cfg.tp_s)))
        .collect();

    let mut log = TransitionLog::new();
    let mut cluster_series = TimeSeries::new("clusters");
    let mut gateway_series = TimeSeries::new("gateway-fraction");
    let mut metric_series = TimeSeries::new("mean-aggregate-metric");
    let mut hello_broadcasts: u64 = 0;
    let mut deliveries: u64 = 0;

    let mut sim: Simulation<Ev> = Simulation::new();
    {
        use rand::Rng;
        let mut off_rng = splitter.stream("hello-offset", 0);
        for i in 0..n {
            let offset = SimTime::from_secs_f64(off_rng.gen::<f64>() * cfg.bi_s);
            sim.schedule_at(offset, Ev::Hello(NodeId::new(i as u32)));
        }
    }
    sim.schedule_at(bi, Ev::Sample);

    let mut positions: Vec<Vec2> = vec![Vec2::ZERO; n];
    // Vulnerable-window MAC collision state: last arrival per receiver.
    let packet_time = SimTime::from_secs_f64(cfg.packet_time_s);
    let mut last_arrival: Vec<Option<SimTime>> = vec![None; n];
    let mut collisions: u64 = 0;
    sim.run_until(sim_end, |now, ev, sched| match ev {
        Ev::Hello(tx) => {
            for (j, m) in mobility.iter_mut().enumerate() {
                positions[j] = m.position_at(now);
            }
            let hello = nodes[tx.index()].prepare_broadcast(now, &mut tables[tx.index()]);
            hello_broadcasts += 1;
            for d in engine.broadcast(tx, &positions, now) {
                let r = d.receiver.index();
                if !packet_time.is_zero() {
                    let collided = last_arrival[r]
                        .is_some_and(|prev| now.saturating_sub(prev) < packet_time);
                    last_arrival[r] = Some(now);
                    if collided {
                        collisions += 1;
                        continue;
                    }
                }
                deliveries += 1;
                tables[r].record(now, d.rx_power, &hello);
            }
            // Listen-before-decide: the paper's nodes compare their M
            // "with those of its neighbors", so no role decision is
            // taken until every neighbor has had one full broadcast
            // interval to introduce itself.
            if now >= bi {
                if let Some(tr) = nodes[tx.index()].evaluate(now, &mut tables[tx.index()]) {
                    log.record(tr);
                }
            }
            // §5 extension: mobility-adaptive hello pacing — mobile
            // neighborhoods refresh faster (down to the configured
            // floor), calm ones keep the base interval.
            let next = if cfg.adaptive_bi_min_s > 0.0 {
                const PIVOT_DB2: f64 = 2.0;
                let m = nodes[tx.index()].metric();
                let secs = (cfg.bi_s * PIVOT_DB2 / (PIVOT_DB2 + m))
                    .clamp(cfg.adaptive_bi_min_s, cfg.bi_s);
                SimTime::from_secs_f64(secs)
            } else {
                bi
            };
            sched.schedule_in(next, Ev::Hello(tx));
        }
        Ev::Sample => {
            for (j, m) in mobility.iter_mut().enumerate() {
                positions[j] = m.position_at(now);
            }
            observer(SampleView {
                now,
                positions: &positions,
                nodes: &nodes,
                tables: &tables,
            });
            let clusters = nodes.iter().filter(|nd| nd.role().is_clusterhead()).count();
            cluster_series.push(now, clusters as f64);
            let gateways = nodes
                .iter()
                .zip(&tables)
                .filter(|(nd, t)| nd.is_gateway(t))
                .count();
            gateway_series.push(now, gateways as f64 / n as f64);
            let mean_metric = nodes.iter().map(ClusterNode::metric).sum::<f64>() / n as f64;
            metric_series.push(now, mean_metric);
            sched.schedule_in(bi, Ev::Sample);
        }
    });

    let shares = log.clusterhead_time_shares(n, warmup, sim_end.max(warmup + SimTime::SECOND));
    let ch_time_gini = mobic_metrics::gini(&shares);
    let distinct_clusterheads = log.distinct_clusterheads();
    let mut transitions_by_kind = std::collections::BTreeMap::new();
    for tr in log.transitions() {
        if tr.at >= warmup {
            let kind = format!("{}->{}", short_role(tr.from), short_role(tr.to));
            *transitions_by_kind.entry(kind).or_insert(0) += 1;
        }
    }

    Ok(RunResult {
        algorithm: cfg.algorithm,
        seed,
        tx_range_m: cfg.tx_range_m,
        clusterhead_changes_total: log.clusterhead_changes(),
        clusterhead_changes: log.clusterhead_changes_after(warmup),
        affiliation_changes: log.affiliation_changes_after(warmup),
        avg_clusters: cluster_series.mean_after(warmup),
        gateway_fraction: gateway_series.mean_after(warmup),
        mean_aggregate_metric: metric_series.mean_after(warmup),
        cluster_series,
        hello_broadcasts,
        deliveries,
        mac_collisions: collisions,
        final_roles: nodes.iter().map(ClusterNode::role).collect(),
        transitions_by_kind,
        ch_time_gini,
        distinct_clusterheads,
        role_transitions: log.transitions().to_vec(),
    })
}

/// Compact role label for transition-kind keys.
fn short_role(r: Role) -> &'static str {
    match r {
        Role::Undecided => "undecided",
        Role::Clusterhead => "ch",
        Role::Member { .. } => "member",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobic_core::AlgorithmKind;

    fn small(alg: AlgorithmKind) -> ScenarioConfig {
        let mut c = ScenarioConfig::paper_table1();
        c.n_nodes = 12;
        c.sim_time_s = 60.0;
        c.tx_range_m = 250.0;
        c.algorithm = alg;
        c
    }

    #[test]
    fn runs_and_produces_sane_counts() {
        let cfg = small(AlgorithmKind::Mobic);
        let r = run_scenario(&cfg, 3).unwrap();
        // 12 nodes × 60 s / 2 s = 360 broadcasts (±1 per node for the
        // initial offset round landing inside the horizon).
        assert!(r.hello_broadcasts >= 348 && r.hello_broadcasts <= 372, "{}", r.hello_broadcasts);
        assert!(r.deliveries > 0);
        assert!(r.avg_clusters >= 1.0 && r.avg_clusters <= 12.0);
        assert_eq!(r.final_roles.len(), 12);
        assert_eq!(r.algorithm, AlgorithmKind::Mobic);
        assert!((0.0..=1.0).contains(&r.gateway_fraction));
        assert!(r.mean_aggregate_metric >= 0.0);
    }

    #[test]
    fn deterministic_across_invocations() {
        let cfg = small(AlgorithmKind::Mobic);
        let a = run_scenario(&cfg, 7).unwrap();
        let b = run_scenario(&cfg, 7).unwrap();
        assert_eq!(a.clusterhead_changes_total, b.clusterhead_changes_total);
        assert_eq!(a.deliveries, b.deliveries);
        assert_eq!(a.final_roles, b.final_roles);
        assert_eq!(a.avg_clusters, b.avg_clusters);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small(AlgorithmKind::Mobic);
        let a = run_scenario(&cfg, 1).unwrap();
        let b = run_scenario(&cfg, 2).unwrap();
        // Different placements → different delivery counts with
        // overwhelming probability.
        assert_ne!(a.deliveries, b.deliveries);
    }

    #[test]
    fn stationary_network_converges_and_stays_stable() {
        let mut cfg = small(AlgorithmKind::Lcc);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        let r = run_scenario(&cfg, 5).unwrap();
        // No motion → no steady-state clusterhead changes at all.
        assert_eq!(r.clusterhead_changes, 0, "static network must be stable");
        // Everyone decided.
        assert!(r.final_roles.iter().all(|x| *x != Role::Undecided));
    }

    #[test]
    fn stationary_mobic_matches_lowest_id_fixed_point() {
        // With no motion every M stays 0, so MOBIC degenerates to
        // Lowest-ID — their converged clusterings must coincide.
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.mobility = MobilityKind::Stationary;
        cfg.sim_time_s = 120.0;
        let a = run_scenario(&cfg, 11).unwrap();
        let b = run_scenario(&cfg.with_algorithm(AlgorithmKind::Lcc), 11).unwrap();
        assert_eq!(a.final_roles, b.final_roles);
    }

    #[test]
    fn isolated_nodes_all_become_clusterheads() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.tx_range_m = 1.0; // nobody hears anybody
        let r = run_scenario(&cfg, 9).unwrap();
        assert_eq!(r.deliveries, 0);
        assert!(r
            .final_roles
            .iter()
            .all(|x| *x == Role::Clusterhead));
        assert_eq!(r.avg_clusters, 12.0);
    }

    #[test]
    fn all_algorithms_run() {
        for alg in AlgorithmKind::ALL {
            let r = run_scenario(&small(alg), 4).unwrap();
            assert!(r.avg_clusters >= 1.0, "{alg}");
        }
    }

    #[test]
    fn all_mobility_kinds_run() {
        let kinds = [
            MobilityKind::RandomWaypoint,
            MobilityKind::RandomWalk { epoch_s: 10.0 },
            MobilityKind::GaussMarkov { alpha: 0.8 },
            MobilityKind::Rpgm {
                groups: 3,
                member_radius_m: 40.0,
            },
            MobilityKind::Highway { lanes: 4, bidirectional: true },
            MobilityKind::ConferenceHall { booths: 5 },
            MobilityKind::Manhattan { block_m: 100.0, p_turn: 0.5 },
            MobilityKind::Stationary,
        ];
        for k in kinds {
            let mut cfg = small(AlgorithmKind::Mobic);
            cfg.mobility = k;
            cfg.sim_time_s = 30.0;
            let r = run_scenario(&cfg, 2).unwrap();
            assert!(r.hello_broadcasts > 0, "{k:?}");
        }
    }

    #[test]
    fn all_propagation_and_loss_kinds_run() {
        for prop in [
            PropagationKind::FreeSpace,
            PropagationKind::TwoRayGround,
            PropagationKind::LogDistance { exponent: 3.0 },
            PropagationKind::ShadowedFreeSpace { sigma_db: 4.0 },
            PropagationKind::NakagamiFreeSpace { m: 1.0 },
        ] {
            for l in [
                LossKind::None,
                LossKind::Bernoulli { p: 0.1 },
                LossKind::BurstyPreset,
            ] {
                let mut cfg = small(AlgorithmKind::Mobic);
                cfg.sim_time_s = 30.0;
                cfg.propagation = prop;
                cfg.loss = l;
                let r = run_scenario(&cfg, 6).unwrap();
                assert!(r.hello_broadcasts > 0, "{prop:?} {l:?}");
            }
        }
    }

    #[test]
    fn bernoulli_loss_reduces_deliveries() {
        let cfg = small(AlgorithmKind::Mobic);
        let clean = run_scenario(&cfg, 8).unwrap();
        let mut lossy_cfg = cfg;
        lossy_cfg.loss = LossKind::Bernoulli { p: 0.5 };
        let lossy = run_scenario(&lossy_cfg, 8).unwrap();
        let ratio = lossy.deliveries as f64 / clean.deliveries as f64;
        assert!((ratio - 0.5).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn collision_window_destroys_some_receptions() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.packet_time_s = 0.0;
        let clean = run_scenario(&cfg, 13).unwrap();
        assert_eq!(clean.mac_collisions, 0);
        cfg.packet_time_s = 0.02; // generous window to force collisions
        let noisy = run_scenario(&cfg, 13).unwrap();
        assert!(noisy.mac_collisions > 0, "no collisions observed");
        assert_eq!(
            noisy.deliveries + noisy.mac_collisions,
            clean.deliveries,
            "collisions must partition the same reception set"
        );
    }

    #[test]
    fn manhattan_mobility_runs() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.mobility = MobilityKind::Manhattan { block_m: 100.0, p_turn: 0.5 };
        cfg.sim_time_s = 40.0;
        let r = run_scenario(&cfg, 3).unwrap();
        assert!(r.hello_broadcasts > 0);
    }

    #[test]
    fn adaptive_bi_sends_more_hellos_in_mobile_networks() {
        let mut cfg = small(AlgorithmKind::Mobic);
        let fixed = run_scenario(&cfg, 21).unwrap();
        cfg.adaptive_bi_min_s = 0.5;
        let adaptive = run_scenario(&cfg, 21).unwrap();
        assert!(
            adaptive.hello_broadcasts > fixed.hello_broadcasts,
            "adaptive {} vs fixed {}",
            adaptive.hello_broadcasts,
            fixed.hello_broadcasts
        );
        // Static network: everyone's M stays 0 → base rate.
        let mut calm = small(AlgorithmKind::Mobic);
        calm.mobility = MobilityKind::Stationary;
        calm.adaptive_bi_min_s = 0.5;
        let calm_adaptive = run_scenario(&calm, 21).unwrap();
        let mut calm_fixed_cfg = small(AlgorithmKind::Mobic);
        calm_fixed_cfg.mobility = MobilityKind::Stationary;
        let calm_fixed = run_scenario(&calm_fixed_cfg, 21).unwrap();
        assert_eq!(calm_adaptive.hello_broadcasts, calm_fixed.hello_broadcasts);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = small(AlgorithmKind::Mobic);
        cfg.n_nodes = 0;
        assert!(run_scenario(&cfg, 0).is_err());
    }

    #[test]
    fn fairness_fields_are_consistent() {
        let r = run_scenario(&small(AlgorithmKind::Mobic), 31).unwrap();
        assert!((0.0..1.0).contains(&r.ch_time_gini), "{}", r.ch_time_gini);
        assert!(r.distinct_clusterheads >= 1);
        assert!(r.distinct_clusterheads <= 12);
        // The transition trace is complete: CS can be recomputed.
        let warmup = SimTime::from_secs_f64(small(AlgorithmKind::Mobic).warmup_s);
        let recount = r
            .role_transitions
            .iter()
            .filter(|t| t.at >= warmup && t.is_clusterhead_change())
            .count();
        assert_eq!(recount, r.clusterhead_changes);
    }

    #[test]
    fn result_serializes() {
        let r = run_scenario(&small(AlgorithmKind::Lcc), 1).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.clusterhead_changes, r.clusterhead_changes);
    }
}
